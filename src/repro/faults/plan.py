"""Declarative fault plans for the sharded serving stack.

A :class:`FaultPlan` is a frozen, JSON-serializable description of
*when* and *where* the simulated deployment misbehaves.  Two fault
models cover the failure modes a compute-in-SRAM serving rack actually
exhibits:

* :class:`StallFault` -- a transient device stall: every batch
  dispatched on the shard inside the window takes ``slowdown`` times
  its normal service time (DRAM-refresh storms and DMA retry loops,
  the Section 2 pathologies, seen from the host).
* :class:`OutageFault` -- the shard's device goes dark at ``start_s``.
  A finite ``duration_s`` models a crash-and-restart; an infinite one
  a hard failure.  After a finite outage the device may *slow-start*:
  for ``recovery_s`` seconds service times carry a multiplier that
  decays linearly from ``recovery_slowdown`` back to one (cold L1/L2,
  re-warming the embedding stream).

Plans are pure data: the same plan and request seed always replay to
bit-identical schedules.  :meth:`FaultPlan.random` derives a scripted
chaos plan deterministically from a seed, so randomized chaos runs are
exactly reproducible too.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "StallFault",
    "OutageFault",
    "FaultPlan",
    "FaultLogEntry",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _check_shard_id(shard_id: object) -> None:
    _require(
        isinstance(shard_id, (int, np.integer))
        and not isinstance(shard_id, bool) and shard_id >= 0,
        f"shard_id must be an integer >= 0, got {shard_id!r}")


@dataclass(frozen=True)
class StallFault:
    """Transient slowdown window on one shard's device."""

    shard_id: int
    start_s: float
    duration_s: float
    #: Service-time multiplier while the window is open (>= 1).
    slowdown: float

    def __post_init__(self) -> None:
        _check_shard_id(self.shard_id)
        _require(math.isfinite(self.start_s) and self.start_s >= 0,
                 f"start_s must be >= 0 and finite, got {self.start_s!r}")
        _require(math.isfinite(self.duration_s) and self.duration_s > 0,
                 f"duration_s must be positive and finite, "
                 f"got {self.duration_s!r}")
        _require(math.isfinite(self.slowdown) and self.slowdown >= 1.0,
                 f"slowdown must be >= 1, got {self.slowdown!r}")

    @property
    def end_s(self) -> float:
        """First instant the stall no longer applies."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class OutageFault:
    """The shard's device is unreachable in ``[start_s, end_s)``."""

    shard_id: int
    start_s: float
    #: ``inf`` (the default) is a hard failure with no restart.
    duration_s: float = math.inf
    #: Slow-start window after a finite outage ends.
    recovery_s: float = 0.0
    #: Initial service-time multiplier at the moment of recovery; decays
    #: linearly back to one over ``recovery_s``.
    recovery_slowdown: float = 1.0

    def __post_init__(self) -> None:
        _check_shard_id(self.shard_id)
        _require(math.isfinite(self.start_s) and self.start_s >= 0,
                 f"start_s must be >= 0 and finite, got {self.start_s!r}")
        _require(self.duration_s > 0,
                 f"duration_s must be positive, got {self.duration_s!r}")
        _require(math.isfinite(self.recovery_s) and self.recovery_s >= 0,
                 f"recovery_s must be >= 0 and finite, "
                 f"got {self.recovery_s!r}")
        _require(
            math.isfinite(self.recovery_slowdown)
            and self.recovery_slowdown >= 1.0,
            f"recovery_slowdown must be >= 1, "
            f"got {self.recovery_slowdown!r}")
        if self.permanent:
            _require(self.recovery_s == 0.0,
                     "a permanent outage cannot have a recovery window")

    @property
    def permanent(self) -> bool:
        """Hard failure: the device never comes back."""
        return math.isinf(self.duration_s)

    @property
    def end_s(self) -> float:
        """First instant the device is reachable again (``inf`` if never)."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class FaultLogEntry:
    """One dynamic fault-handling action taken during a run.

    ``kind`` is one of ``"timeout"`` (a batch hit the per-batch
    timeout), ``"interrupted"`` (an outage began under an in-flight
    batch), ``"backoff"`` (the shard is gated for ``duration_s`` before
    the next retry), or ``"dead"`` (retries exhausted or hard failure:
    the shard was declared dead and failed over).
    """

    kind: str
    shard_id: int
    t_s: float
    duration_s: float = 0.0
    attempt: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of faults for one simulation run."""

    stalls: Tuple[StallFault, ...] = ()
    outages: Tuple[OutageFault, ...] = ()

    def __post_init__(self) -> None:
        # Accept any iterable but store hashable tuples.
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "outages", tuple(self.outages))

    def __bool__(self) -> bool:
        return bool(self.stalls or self.outages)

    @property
    def n_faults(self) -> int:
        """Total scripted faults across both models."""
        return len(self.stalls) + len(self.outages)

    def shard_ids(self) -> Tuple[int, ...]:
        """Sorted distinct shard ids the plan touches."""
        return tuple(sorted({f.shard_id for f in self.stalls}
                            | {f.shard_id for f in self.outages}))

    def validate_for(self, n_shards: int) -> None:
        """Reject plans that reference shards outside ``0..n_shards-1``."""
        bad = [shard_id for shard_id in self.shard_ids()
               if shard_id >= n_shards]
        if bad:
            raise ValueError(
                f"fault plan references shard ids {bad} but the "
                f"deployment has only {n_shards} shard(s)")

    def for_shard(self, shard_id: int) -> "FaultPlan":
        """The sub-plan touching one shard."""
        return FaultPlan(
            stalls=tuple(f for f in self.stalls if f.shard_id == shard_id),
            outages=tuple(f for f in self.outages if f.shard_id == shard_id),
        )

    # ------------------------------------------------------------------
    # Serialization (``repro serve --fault-plan plan.json``)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, List[Dict[str, object]]]:
        """Plain-data form (JSON-ready; infinite durations become null)."""
        stalls = [
            {"shard_id": f.shard_id, "start_s": f.start_s,
             "duration_s": f.duration_s, "slowdown": f.slowdown}
            for f in self.stalls
        ]
        outages = [
            {"shard_id": f.shard_id, "start_s": f.start_s,
             "duration_s": None if f.permanent else f.duration_s,
             "recovery_s": f.recovery_s,
             "recovery_slowdown": f.recovery_slowdown}
            for f in self.outages
        ]
        return {"stalls": stalls, "outages": outages}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (null duration = permanent)."""
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, "
                             f"got {type(data).__name__}")
        unknown = set(data) - {"stalls", "outages"}
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")

        def _dur(raw: object) -> float:
            return math.inf if raw is None else float(raw)  # type: ignore[arg-type]

        stalls = tuple(
            StallFault(shard_id=int(entry["shard_id"]),
                       start_s=float(entry["start_s"]),
                       duration_s=float(entry["duration_s"]),
                       slowdown=float(entry["slowdown"]))
            for entry in data.get("stalls", ())  # type: ignore[union-attr]
        )
        outages = tuple(
            OutageFault(shard_id=int(entry["shard_id"]),
                        start_s=float(entry["start_s"]),
                        duration_s=_dur(entry.get("duration_s")),
                        recovery_s=float(entry.get("recovery_s", 0.0)),
                        recovery_slowdown=float(
                            entry.get("recovery_slowdown", 1.0)))
            for entry in data.get("outages", ())  # type: ignore[union-attr]
        )
        return cls(stalls=stalls, outages=outages)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The plan as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a JSON fault plan."""
        return cls.from_dict(json.loads(text))

    def save(self, path: object) -> str:
        """Write the JSON plan to ``path``; returns the path."""
        with open(path, "w") as handle:  # type: ignore[arg-type]
            handle.write(self.to_json() + "\n")
        return str(path)

    @classmethod
    def load(cls, path: object) -> "FaultPlan":
        """Read a JSON plan from ``path``."""
        with open(path) as handle:  # type: ignore[arg-type]
            return cls.from_json(handle.read())

    # ------------------------------------------------------------------
    # Seeded chaos generation
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, seed: int, n_shards: int, horizon_s: float,
               stall_rate: float = 1.0, outage_rate: float = 0.5,
               permanent_fraction: float = 0.25,
               max_slowdown: float = 8.0) -> "FaultPlan":
        """A deterministic chaos plan drawn from a seeded generator.

        ``stall_rate`` / ``outage_rate`` are expected fault counts per
        shard over the horizon; ``permanent_fraction`` of outages are
        hard failures.  The same arguments always produce the same
        plan, so chaos runs replay bit-identically.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        if not (math.isfinite(horizon_s) and horizon_s > 0):
            raise ValueError(f"horizon_s must be positive and finite, "
                             f"got {horizon_s!r}")
        rng = np.random.default_rng(seed)
        stalls: List[StallFault] = []
        outages: List[OutageFault] = []
        for shard_id in range(n_shards):
            for _ in range(rng.poisson(stall_rate)):
                start = float(rng.uniform(0.0, horizon_s))
                stalls.append(StallFault(
                    shard_id=shard_id, start_s=start,
                    duration_s=float(rng.uniform(0.05, 0.3) * horizon_s),
                    slowdown=float(rng.uniform(1.5, max_slowdown))))
            for _ in range(rng.poisson(outage_rate)):
                start = float(rng.uniform(0.0, horizon_s))
                if rng.uniform() < permanent_fraction:
                    outages.append(OutageFault(shard_id=shard_id,
                                               start_s=start))
                else:
                    outages.append(OutageFault(
                        shard_id=shard_id, start_s=start,
                        duration_s=float(rng.uniform(0.05, 0.2) * horizon_s),
                        recovery_s=float(rng.uniform(0.0, 0.1) * horizon_s),
                        recovery_slowdown=float(rng.uniform(1.0, 4.0))))
        return cls(stalls=tuple(stalls), outages=tuple(outages))
