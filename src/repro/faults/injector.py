"""Deterministic fault-state queries over a :class:`FaultPlan`.

The :class:`FaultInjector` is the runtime face of a plan: the scheduler
asks it three questions -- *is this shard reachable now*, *how much
slower is a batch dispatched now*, and *when does the next outage begin*
-- and every answer is a pure function of the plan, so a replay with the
same plan and request stream is bit-identical.

Per-shard outage windows are merged into disjoint sorted intervals at
construction, so overlapping scripted outages behave as their union and
the event-loop queries are simple scans over a handful of windows.
(Contradictory overlaps -- a restart after a permanent failure, or a
recovery ramp inside another outage -- are rejected by
:class:`~repro.faults.plan.FaultPlan` itself, so the union is always
well defined here.)

Bit-flip faults add two more queries: *which transient upsets strike
this shard inside a window* (:meth:`FaultInjector.flips_in`, consumed
once per batch dispatch) and *which stuck-at cells are wedged now*
(:meth:`FaultInjector.stuck_active`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from .plan import BitFlipFault, FaultPlan, OutageFault, StallFault

__all__ = ["FaultInjector"]


def _merged_windows(outages: Tuple[OutageFault, ...]
                    ) -> List[Tuple[float, float]]:
    """Disjoint, sorted ``[start, end)`` union of the outage windows."""
    spans = sorted((o.start_s, o.end_s) for o in outages)
    merged: List[Tuple[float, float]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class FaultInjector:
    """Answer fault-state queries for an ``n_shards`` deployment."""

    def __init__(self, plan: FaultPlan, n_shards: int):
        plan.validate_for(n_shards)
        self.plan = plan
        self.n_shards = n_shards
        self._stalls: Dict[int, List[StallFault]] = {}
        self._recoveries: Dict[int, List[OutageFault]] = {}
        self._windows: Dict[int, List[Tuple[float, float]]] = {}
        self._flips: Dict[int, List[BitFlipFault]] = {}
        self._stuck: Dict[int, List[BitFlipFault]] = {}
        for flip in plan.bit_flips:
            bucket = self._stuck if flip.persistent else self._flips
            bucket.setdefault(flip.shard_id, []).append(flip)
        for stall in plan.stalls:
            self._stalls.setdefault(stall.shard_id, []).append(stall)
        for outage in plan.outages:
            if outage.recovery_s > 0:
                self._recoveries.setdefault(outage.shard_id,
                                            []).append(outage)
        for shard_id in range(n_shards):
            shard_outages = tuple(o for o in plan.outages
                                  if o.shard_id == shard_id)
            if shard_outages:
                self._windows[shard_id] = _merged_windows(shard_outages)
        for stalls in self._stalls.values():
            stalls.sort(key=lambda f: (f.start_s, f.end_s))
        for recoveries in self._recoveries.values():
            recoveries.sort(key=lambda f: (f.start_s, f.end_s))
        for flips in self._flips.values():
            flips.sort(key=lambda f: f.t_s)
        for stuck in self._stuck.values():
            stuck.sort(key=lambda f: f.t_s)

    def __bool__(self) -> bool:
        return bool(self.plan)

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------
    def is_down(self, shard_id: int, t_s: float) -> bool:
        """Whether the shard's device is unreachable at ``t_s``."""
        return any(start <= t_s < end
                   for start, end in self._windows.get(shard_id, ()))

    def next_up(self, shard_id: int, t_s: float) -> float:
        """Earliest time ``>= t_s`` the device is reachable.

        ``inf`` when the covering outage (or an overlapping chain of
        outages) is permanent.
        """
        for start, end in self._windows.get(shard_id, ()):
            if start <= t_s < end:
                return end
        return t_s

    def next_outage_start(self, shard_id: int, t_s: float) -> float:
        """Start of the first outage strictly after ``t_s`` (or ``inf``)."""
        for start, _ in self._windows.get(shard_id, ()):
            if start > t_s:
                return start
        return math.inf

    def permanently_down_from(self, shard_id: int) -> float:
        """Time the shard goes dark forever (``inf`` if it never does)."""
        windows = self._windows.get(shard_id, ())
        if windows and math.isinf(windows[-1][1]):
            return windows[-1][0]
        return math.inf

    # ------------------------------------------------------------------
    # Silent data corruption
    # ------------------------------------------------------------------
    def flips_in(self, shard_id: int, t0_s: float,
                 t1_s: float) -> Tuple[BitFlipFault, ...]:
        """Transient upsets striking the shard with ``t0_s <= t_s < t1_s``.

        A pure time-window query (no consumption state); stuck-at
        faults are excluded -- they persist and are reported by
        :meth:`stuck_active` instead.
        """
        return tuple(f for f in self._flips.get(shard_id, ())
                     if t0_s <= f.t_s < t1_s)

    def transient_flips(self, shard_id: int) -> Tuple[BitFlipFault, ...]:
        """All scripted transient upsets for a shard, sorted by onset.

        The scheduler walks this list with a consume-once cursor: a
        flip corrupts the first completing batch whose service window
        *ends* after the flip landed (corrupted data stays resident
        until the next batch reloads it), and never corrupts a second
        one.
        """
        return tuple(self._flips.get(shard_id, ()))

    def stuck_active(self, shard_id: int, t_s: float
                     ) -> Tuple[BitFlipFault, ...]:
        """Stuck-at faults wedged on the shard at ``t_s`` (onset passed)."""
        return tuple(f for f in self._stuck.get(shard_id, ())
                     if f.t_s <= t_s)

    def has_bit_flips(self, shard_id: int) -> bool:
        """Whether the plan scripts any corruption for this shard."""
        return (shard_id in self._flips) or (shard_id in self._stuck)

    # ------------------------------------------------------------------
    # Service-time degradation
    # ------------------------------------------------------------------
    def multiplier(self, shard_id: int, t_s: float) -> float:
        """Service-time multiplier for a batch dispatched at ``t_s``.

        The product of every open stall window's slowdown and every
        active slow-start recovery factor; recovery decays linearly
        from ``recovery_slowdown`` to one over the recovery window.
        Always ``>= 1``; exactly ``1.0`` when no fault is active.
        """
        factor = 1.0
        for stall in self._stalls.get(shard_id, ()):
            if stall.start_s <= t_s < stall.end_s:
                factor *= stall.slowdown
        for outage in self._recoveries.get(shard_id, ()):
            if outage.end_s <= t_s < outage.end_s + outage.recovery_s:
                progress = (t_s - outage.end_s) / outage.recovery_s
                factor *= (outage.recovery_slowdown
                           - (outage.recovery_slowdown - 1.0) * progress)
        return factor

    def multiplier_sources(self, shard_id: int, t_s: float
                           ) -> Tuple[str, ...]:
        """Which fault kinds inflate the multiplier at ``t_s``.

        Returns any of ``"stall"`` (an open stall window) and
        ``"recovery"`` (a slow-start ramp after an outage), in that
        order; empty when :meth:`multiplier` would return exactly 1.
        The telemetry layer uses this to annotate ``slowdown`` spans
        with *why* the batch stretched.
        """
        sources: List[str] = []
        if any(stall.start_s <= t_s < stall.end_s
               for stall in self._stalls.get(shard_id, ())):
            sources.append("stall")
        if any(o.end_s <= t_s < o.end_s + o.recovery_s
               for o in self._recoveries.get(shard_id, ())):
            sources.append("recovery")
        return tuple(sources)
