"""Deterministic fault injection for the sharded serving stack.

``repro.faults`` scripts device misbehavior -- transient stalls, hard
and transient shard outages, slow-start recovery, and silent bit-level
corruption -- as pure data (:class:`~repro.faults.plan.FaultPlan`) and
answers runtime fault-state queries through
:class:`~repro.faults.injector.FaultInjector`.  The serving scheduler
(:mod:`repro.serve.scheduler`) consumes the injector to drive per-batch
timeouts, capped-exponential-backoff retries, and shard failover, and
the :mod:`repro.integrity` subsystem consumes the bit-flip queries to
corrupt (and then defend) real vector-register contents; everything is
a pure function of the plan and the request seed, so chaos runs replay
bit-identically and a zero-fault plan is indistinguishable from no plan
at all.
"""

from .injector import FaultInjector
from .plan import (
    BIT_FLIP_TARGETS,
    BitFlipFault,
    FaultLogEntry,
    FaultPlan,
    OutageFault,
    StallFault,
    check_outage_consistency,
)

__all__ = [
    "BIT_FLIP_TARGETS",
    "BitFlipFault",
    "FaultInjector",
    "FaultLogEntry",
    "FaultPlan",
    "OutageFault",
    "StallFault",
    "check_outage_consistency",
]
