"""Deterministic fault injection for the sharded serving stack.

``repro.faults`` scripts device misbehavior -- transient stalls, hard
and transient shard outages, slow-start recovery -- as pure data
(:class:`~repro.faults.plan.FaultPlan`) and answers runtime fault-state
queries through :class:`~repro.faults.injector.FaultInjector`.  The
serving scheduler (:mod:`repro.serve.scheduler`) consumes the injector
to drive per-batch timeouts, capped-exponential-backoff retries, and
shard failover; everything is a pure function of the plan and the
request seed, so chaos runs replay bit-identically and a zero-fault
plan is indistinguishable from no plan at all.
"""

from .injector import FaultInjector
from .plan import FaultLogEntry, FaultPlan, OutageFault, StallFault

__all__ = [
    "FaultInjector",
    "FaultLogEntry",
    "FaultPlan",
    "OutageFault",
    "StallFault",
]
