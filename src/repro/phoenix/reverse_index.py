"""Phoenix Reverse Index on the APU (Table 6: 100 MB input).

Extracts hyperlink targets from HTML and builds a link -> documents
index.  The vector engine finds the ``<a`` anchor signature with
shifted parallel compares; the control processor walks the matches,
parses the targets and maintains the index -- the "fine-grained element
access" that keeps reverse index from large APU gains (Section 5.2.1).
"""

from __future__ import annotations

import numpy as np

from ..apu.device import APUDevice
from .base import OptFlags, PhoenixApp

__all__ = ["ReverseIndex"]

_ANCHOR = b"<a href="


class ReverseIndex(PhoenixApp):
    """Hyperlink extraction + inverted index over 100 MB of HTML."""

    name = "reverse_index"
    input_size = "100MB"
    cores_used = 1

    TOTAL_BYTES = 100 * 1024 ** 2
    FUNC_CHARS = 32768
    #: Average anchors per 64 KB chunk at paper scale.
    MATCHES_PER_VECTOR = 20

    # ------------------------------------------------------------------
    # Functional kernel
    # ------------------------------------------------------------------
    def _functional_input(self) -> bytes:
        rng = np.random.default_rng(17)
        links = [b"a.html", b"b.html", b"c.html"]
        parts = []
        size = 0
        while size < self.FUNC_CHARS - 64:
            filler = bytes(rng.integers(97, 123, rng.integers(5, 40)).astype(np.uint8))
            link = links[rng.integers(0, len(links))]
            chunk = b"<p>" + filler + b'</p><a href="' + link + b'">x</a>'
            parts.append(chunk)
            size += len(chunk)
        return b"".join(parts)[: self.FUNC_CHARS]

    def reference(self) -> list:
        """Byte offsets of every anchor signature."""
        text = self._functional_input()
        offsets = []
        pos = text.find(_ANCHOR)
        while pos != -1:
            offsets.append(pos)
            pos = text.find(_ANCHOR, pos + 1)
        return offsets

    def _functional_kernel(self, device: APUDevice) -> list:
        text = self._functional_input()
        chars = np.frombuffer(text, dtype=np.uint8).astype(np.uint16)
        chars = np.pad(chars, (0, self.params.vr_length - chars.size))
        core = device.core
        g = core.gvml
        core.l1.store(0, chars)
        g.load_16(0, 0)
        # Shifted compares: position i matches if char[i+k] == sig[k]
        # for all k.  Each shift uses the intra-VR element shift.
        g.eq_imm_16(0, 0, _ANCHOR[0])
        g.cpy_16(1, 0)
        for k, byte in enumerate(_ANCHOR[1:], start=1):
            g.load_16(1, 0)
            g.shift_e(1, k, toward="head")
            g.eq_imm_16(1, 1, byte)
            g.and_mrk(0, 0, 1)
        matches = np.flatnonzero(core.marker_read(0))
        return [int(m) for m in matches if m + len(_ANCHOR) <= len(text)]

    # ------------------------------------------------------------------
    # Paper-scale latency program
    # ------------------------------------------------------------------
    def _latency_program(self, device: APUDevice, opts: OptFlags) -> None:
        core = device.core
        g = core.gvml
        vectors = -(-self.TOTAL_BYTES // self.params.vr_bytes)  # 1600
        signature = len(_ANCHOR)

        with core.section("LD"):
            if opts.dma_coalescing:
                core.dma.l4_to_l1_32k(0, count=vectors)
            else:
                core.dma.l4_to_l2(None, 8192, count=vectors * 8)
                core.dma.l2_to_l1(0, count=vectors)
            g.load_16(0, 0, count=vectors)
        with core.section("Scan"):
            g.eq_imm_16(0, 0, 0, count=vectors)
            # Seven shifted compares refine the match marker.
            for k in range(1, signature):
                g.load_16(1, 0, count=vectors)
                if opts.broadcast_layout and k % 4 == 0:
                    g.shift_e4(1, k // 4, toward="head", count=vectors)
                else:
                    g.shift_e(1, k, toward="head", count=vectors)
                g.eq_imm_16(1, 1, 0, count=vectors)
                g.and_mrk(0, 0, 1, count=vectors)
            g.count_m(0, count=vectors)
        with core.section("Extract"):
            if opts.reduction_mapping:
                core.dma.pio_st(None, 0, n=self.MATCHES_PER_VECTOR, count=vectors
                )
            else:
                g.first_marked_index(
                    0, count=vectors * self.MATCHES_PER_VECTOR
                )
            # CP-side parsing and index maintenance per anchor.
            core.charge_raw(
                "cp_parse", 900.0, count=vectors * self.MATCHES_PER_VECTOR
            )
        with core.section("ST"):
            core.dma.pio_st(None, 0, n=1024, count=1)
