"""The Phoenix benchmark suite on the APU (paper Section 5.2).

Eight applications, each with a functional kernel validated against a
NumPy/Python reference, a paper-scale latency program, per-optimization
variants (Fig. 13), and the measured-vs-predicted validation pair
(Table 7).
"""

from .base import ALL_OPTS, AppResult, NO_OPTS, OptFlags, PhoenixApp
from .histogram import Histogram
from .kmeans import KMeans
from .linear_regression import LinearRegression
from .matrix_multiply import MatrixMultiply
from .pca import PCA
from .reverse_index import ReverseIndex
from .string_match import StringMatch
from .suite import Fig13Row, PhoenixSuite, TABLE6_APPS, Table7Row
from .word_count import WordCount

__all__ = [
    "ALL_OPTS",
    "AppResult",
    "Fig13Row",
    "Histogram",
    "KMeans",
    "LinearRegression",
    "MatrixMultiply",
    "NO_OPTS",
    "OptFlags",
    "PCA",
    "PhoenixApp",
    "PhoenixSuite",
    "ReverseIndex",
    "StringMatch",
    "TABLE6_APPS",
    "Table7Row",
    "WordCount",
]
