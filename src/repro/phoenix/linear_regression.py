"""Phoenix Linear Regression on the APU (Table 6: 512 MB input).

Fits ``y = a*x + b`` by accumulating the sums ``Sx, Sy, Sxx, Sxy`` over
256 M packed (x, y) byte pairs.  With the optimizations applied, the
sums accumulate temporally as inter-VR adds (opt1), the input streams as
full-vector DMA bursts split across both engines (opt2), and only one
final subgroup reduction per core collapses the partial vectors.

Without opt1, every chunk ends in four full intra-VR reductions -- the
spatial mapping the paper's communication-aware analysis replaces.
"""

from __future__ import annotations

import numpy as np

from ..apu.device import APUDevice
from .base import OptFlags, PhoenixApp

__all__ = ["LinearRegression"]


class LinearRegression(PhoenixApp):
    """Least-squares line fit over 512 MB of (x, y) byte pairs."""

    name = "linear_regression"
    input_size = "512MB"
    cores_used = 4

    TOTAL_BYTES = 512 * 1024 ** 2
    FUNCTIONAL_POINTS = 32768

    # ------------------------------------------------------------------
    # Functional kernel
    # ------------------------------------------------------------------
    def _functional_input(self) -> np.ndarray:
        rng = np.random.default_rng(12)
        x = rng.integers(0, 256, self.FUNCTIONAL_POINTS)
        noise = rng.integers(-8, 9, self.FUNCTIONAL_POINTS)
        y = np.clip((x * 0.75 + 20 + noise), 0, 255).astype(np.int64)
        return (x.astype(np.uint16) | (y.astype(np.uint16) << 8))

    def reference(self) -> tuple:
        """Closed-form least-squares (slope, intercept) on the input."""
        packed = self._functional_input()
        x = (packed & 0xFF).astype(np.float64)
        y = (packed >> 8).astype(np.float64)
        n = x.size
        sx, sy = x.sum(), y.sum()
        sxx, sxy = (x * x).sum(), (x * y).sum()
        slope = (n * sxy - sx * sy) / (n * sxx - sx * sx)
        intercept = (sy - slope * sx) / n
        return slope, intercept

    def _functional_kernel(self, device: APUDevice) -> tuple:
        packed = self._functional_input()
        core = device.core
        g = core.gvml
        core.l1.store(0, packed.astype(np.uint16))
        g.load_16(0, 0)
        # Unpack x (low byte) and y (high byte) on the vector engine.
        g.cpy_imm_16(1, 0x00FF)
        g.and_16(2, 0, 1)          # x
        g.sr_imm_16(3, 0, 8)       # y
        # Split each product into low/high halves so the 16-bit lanes
        # never lose bits: lo = (x*y) mod 2^16 on the VXU, hi on the CP
        # from the byte-sized operands (x, y < 256 so x*y < 2^16 and
        # the low half is already exact; x*x likewise).
        g.mul_u16(4, 2, 2)         # xx, exact for byte inputs
        g.mul_u16(5, 2, 3)         # xy, exact for byte inputs
        x = core.vr_read(2).astype(np.int64)
        y = core.vr_read(3).astype(np.int64)
        xx = core.vr_read(4).astype(np.int64)
        xy = core.vr_read(5).astype(np.int64)
        # The wide accumulation happens on the control processor by
        # draining the partial vectors (RSP FIFO path).
        n = x.size
        sx, sy = int(x.sum()), int(y.sum())
        sxx, sxy = int(xx.sum()), int(xy.sum())
        slope = (n * sxy - sx * sy) / (n * sxx - sx * sx)
        intercept = (sy - slope * sx) / n
        return slope, intercept

    # ------------------------------------------------------------------
    # Paper-scale latency program
    # ------------------------------------------------------------------
    def _latency_program(self, device: APUDevice, opts: OptFlags) -> None:
        per_core = self.TOTAL_BYTES // self.params.num_cores
        vectors = -(-per_core // self.params.vr_bytes)  # 1953 per core

        for core in device.cores:
            g = core.gvml
            with core.section("LD"):
                if opts.dma_coalescing:
                    # Coalesced: one direct full-vector DMA per chunk.
                    core.dma.l4_to_l1_32k(0, count=vectors)
                else:
                    # Uncoalesced: 8 KB descriptors staged through L2.
                    core.dma.l4_to_l2(None, 8192, count=vectors * 8)
                    core.dma.l2_to_l1(0, count=vectors)
                g.load_16(0, 0, count=vectors)
            with core.section("Compute"):
                # Unpack + four multiply-accumulate chains per vector.
                g.and_16(2, 0, 1, count=vectors)
                g.sr_imm_16(3, 0, 8, count=vectors)
                g.mul_u16(4, 2, 2, count=vectors)
                g.mul_u16(5, 2, 3, count=vectors)
                if opts.reduction_mapping:
                    # Temporal: partial sums stay element-wise per VR.
                    g.add_u16(6, 6, 2, count=vectors)
                    g.add_u16(7, 7, 3, count=vectors)
                    g.add_u16(8, 8, 4, count=vectors)
                    g.add_u16(9, 9, 5, count=vectors)
                    # One final intra-VR collapse per accumulator.
                    g.add_subgrp_s16(10, 6, self.params.vr_length, 1, count=4)
                else:
                    # Spatial: every chunk reduces inside the VR.
                    g.add_subgrp_s16(10, 2, self.params.vr_length, 1,
                                     count=vectors * 4)
            with core.section("ST"):
                core.dma.pio_st(None, 0, n=4, count=1)
