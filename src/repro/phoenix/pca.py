"""Phoenix PCA on the APU (the suite's eighth application).

Computes the column means and covariance matrix of a dense matrix --
the preprocessing half of principal component analysis that the Phoenix
suite implements.  The covariance rows map naturally onto the temporal
reduction scheme: each (i, j) accumulation is an element-wise
multiply-add over row tiles.

The paper's Table 6/7 omit PCA's statistics, so this application
carries no paper anchor; it completes the suite and exercises the
framework on a dense-linear-algebra shape distinct from matmul.
"""

from __future__ import annotations

import numpy as np

from ..apu.device import APUDevice
from .base import OptFlags, PhoenixApp

__all__ = ["PCA"]


class PCA(PhoenixApp):
    """Column means + covariance of a 4096 x 256 byte matrix."""

    name = "pca"
    input_size = "4,096 x 256"
    cores_used = 1

    ROWS, COLS = 4096, 256
    FUNC_ROWS, FUNC_COLS = 128, 16

    # ------------------------------------------------------------------
    # Functional kernel
    # ------------------------------------------------------------------
    def _functional_input(self) -> np.ndarray:
        rng = np.random.default_rng(18)
        return rng.integers(0, 64, (self.FUNC_ROWS, self.FUNC_COLS)).astype(np.uint16)

    def reference(self):
        data = self._functional_input().astype(np.float64)
        means = data.mean(axis=0)
        centered = data - means
        cov = centered.T @ centered / (data.shape[0] - 1)
        return means, cov

    def _functional_kernel(self, device: APUDevice):
        data = self._functional_input()
        core = device.core
        g = core.gvml
        vlen = self.params.vr_length
        n, d = data.shape

        # Column-major tiles: column j occupies a contiguous run.
        flat = data.T.reshape(-1)
        core.l1.store(0, np.pad(flat, (0, vlen - flat.size)))
        g.load_16(0, 0)
        # Column sums via one subgroup reduction per column run.
        g.add_subgrp_s16(1, 0, n, 1)
        sums = core.vr_read(1)[:: n][:d].astype(np.float64)
        means = sums / n

        # Covariance: products accumulated on the VXU (exact for 6-bit
        # inputs), wide sums drained by the CP.
        cov = np.zeros((d, d))
        for j in range(d):
            g.cpy_subgrp_16_grp(2, 0, n, subgroup_index=j)
            g.mul_u16(3, 0, 2)
            products = core.vr_read(3)[: n * d].astype(np.float64)
            sums_ij = products.reshape(d, n).sum(axis=1)
            cov[:, j] = (sums_ij - n * means * means[j]) / (n - 1)
        return means, cov

    # ------------------------------------------------------------------
    # Paper-scale latency program
    # ------------------------------------------------------------------
    def _latency_program(self, device: APUDevice, opts: OptFlags) -> None:
        core = device.core
        g = core.gvml
        vlen = self.params.vr_length
        rows_per_vr = vlen // self.ROWS if self.ROWS <= vlen else 1
        del rows_per_vr
        tiles = -(-self.ROWS * self.COLS * 2 // self.params.vr_bytes)  # 32

        with core.section("LD"):
            if opts.dma_coalescing:
                core.dma.l4_to_l1_32k(0, count=tiles)
            else:
                core.dma.l4_to_l2(None, 8192, count=tiles * 8)
                core.dma.l2_to_l1(0, count=tiles)
            g.load_16(0, 0, count=tiles)
        with core.section("Means"):
            g.add_subgrp_s16(1, 0, 4096, 1, count=tiles)
            core.dma.pio_st(None, 0, n=8, count=tiles)
        with core.section("Covariance"):
            # cov(i, j) accumulations over column tiles.
            pair_tiles = self.COLS * tiles
            if opts.broadcast_layout:
                g.cpy_subgrp_16_grp(2, 0, 4096, 0, count=pair_tiles)
            else:
                core.dma.lookup_16(2, None, self.COLS, count=pair_tiles)
            g.mul_u16(3, 0, 2, count=pair_tiles)
            if opts.reduction_mapping:
                g.add_u16(4, 4, 3, count=pair_tiles)
                g.add_subgrp_s16(5, 4, 4096, 1, count=self.COLS)
            else:
                g.add_subgrp_s16(5, 3, 4096, 1, count=pair_tiles)
        with core.section("ST"):
            core.dma.pio_st(None, 0, n=self.COLS, count=self.COLS)
