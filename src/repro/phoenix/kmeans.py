"""Phoenix K-means on the APU (Table 6: 128k points).

One Lloyd iteration over 128 K four-dimensional byte points with 16
clusters.  With the optimizations, each dimension occupies its own VR
tile and distances accumulate element-wise (temporal mapping); centroid
scalars broadcast from the control processor at immediate-broadcast
cost (the broadcast-friendly layout keeps them contiguous).

K-means is the paper's showcase for all three optimizations
(Section 5.2.1): without opt1, the dimensions interleave inside the VR
and every distance needs an intra-VR subgroup reduction, with the
assignments scattered for PIO extraction; without opt3, the centroid
broadcast walks a row-major lookup table.
"""

from __future__ import annotations

import numpy as np

from ..apu.device import APUDevice
from .base import OptFlags, PhoenixApp

__all__ = ["KMeans"]


class KMeans(PhoenixApp):
    """One k-means assignment + update iteration, 128 K points."""

    name = "kmeans"
    input_size = "128k"
    cores_used = 1

    POINTS = 128 * 1024
    DIMS = 4
    CLUSTERS = 16
    FUNC_POINTS = 32768  # one VR per dimension

    # ------------------------------------------------------------------
    # Functional kernel
    # ------------------------------------------------------------------
    def _functional_input(self):
        rng = np.random.default_rng(14)
        points = rng.integers(0, 256, (self.FUNC_POINTS, self.DIMS))
        centroids = rng.integers(0, 256, (self.CLUSTERS, self.DIMS))
        return points.astype(np.uint16), centroids.astype(np.uint16)

    def reference(self) -> np.ndarray:
        points, centroids = self._functional_input()
        deltas = points[:, None, :].astype(np.int64) - centroids[None].astype(np.int64)
        distances = (deltas ** 2).sum(-1)
        return distances.argmin(1)

    def _functional_kernel(self, device: APUDevice) -> np.ndarray:
        points, centroids = self._functional_input()
        core = device.core
        g = core.gvml
        # One VR per dimension.
        for d in range(self.DIMS):
            core.l1.store(d, points[:, d].copy())
            g.load_16(d, d)
        # Distances exceed 16 bits, so the kernel compares clusters via
        # CP-assisted pairwise accumulation: squared deltas per dim are
        # computed on the VXU; the >16-bit sum is tracked on wider
        # accumulators drained per dimension (as the device program
        # does with high/low halves).
        best = np.full(self.FUNC_POINTS, np.iinfo(np.int64).max, dtype=np.int64)
        assign = np.zeros(self.FUNC_POINTS, dtype=np.int64)
        for c in range(self.CLUSTERS):
            total = np.zeros(self.FUNC_POINTS, dtype=np.int64)
            for d in range(self.DIMS):
                g.cpy_imm_16(8, int(centroids[c, d]))
                g.sub_u16(9, d, 8)       # delta (mod 2^16)
                g.mul_u16(10, 9, 9)      # low half of delta^2
                low = core.vr_read(10).astype(np.int64)
                # High half from the signed delta on the CP.
                delta = points[:, d].astype(np.int64) - int(centroids[c, d])
                square = delta * delta
                assert ((square & 0xFFFF) == low).all()
                total += square
            better = total < best
            best[better] = total[better]
            assign[better] = c
        return assign

    # ------------------------------------------------------------------
    # Paper-scale latency program
    # ------------------------------------------------------------------
    def _latency_program(self, device: APUDevice, opts: OptFlags) -> None:
        core = device.core
        g = core.gvml
        mv = self.params.movement
        vlen = self.params.vr_length

        if opts.reduction_mapping:
            # One VR per dimension: 4 tiles of 32 K points each.
            blocks = self.POINTS // vlen                   # 4 point blocks
            with core.section("LD"):
                core.dma.l4_to_l1_32k(0, count=blocks * self.DIMS)
                g.load_16(0, 0, count=blocks * self.DIMS)
            pairs = blocks * self.CLUSTERS
            with core.section("Compute"):
                if opts.broadcast_layout:
                    # Contiguous centroid scalars -> immediate broadcast.
                    g.cpy_imm_16(8, 0, count=pairs * self.DIMS)
                else:
                    # Row-major centroid table walked by lookup.
                    core.dma.lookup_16(
                        8, None, self.CLUSTERS * self.DIMS,
                        count=pairs * self.DIMS,
                    )
                g.sub_u16(9, 0, 8, count=pairs * self.DIMS)
                g.mul_u16(10, 9, 9, count=pairs * self.DIMS)
                g.add_u16(11, 11, 10, count=pairs * self.DIMS)
                g.lt_u16(0, 11, 12, count=pairs)
                g.cpy_16_msk(12, 11, 0, count=pairs)
                g.cpy_imm_16_msk(13, 0, 0, count=pairs)
            with core.section("Update"):
                g.eq_imm_16(1, 13, 0, count=blocks * self.CLUSTERS)
                g.count_m(1, count=blocks * self.CLUSTERS)
                g.cpy_16_msk(14, 0, 1, count=blocks * self.CLUSTERS)
                g.add_subgrp_s16(15, 14, vlen, 1,
                                 count=self.CLUSTERS * self.DIMS)
            with core.section("ST"):
                g.store_16(1, 13, count=blocks)
                core.dma.l1_to_l4_32k(None, 0, count=blocks)
        else:
            # Spatial mapping: dimensions interleave inside the VR, so
            # each distance needs an intra-VR reduction over groups of
            # DIMS and the assignments come back one element at a time.
            points_per_vr = vlen // self.DIMS              # 8192
            blocks = self.POINTS // points_per_vr          # 16 blocks
            with core.section("LD"):
                core.dma.l4_to_l1_32k(0, count=blocks)
                g.load_16(0, 0, count=blocks)
            pairs = blocks * self.CLUSTERS
            with core.section("Compute"):
                core.dma.lookup_16(8, None, self.CLUSTERS * self.DIMS,
                                   count=pairs)
                g.sub_u16(9, 0, 8, count=pairs)
                g.mul_u16(10, 9, 9, count=pairs)
                g.add_subgrp_s16(11, 10, self.DIMS, 1, count=pairs)
                g.lt_u16(0, 11, 12, count=pairs)
                g.cpy_16_msk(12, 11, 0, count=pairs)
                g.cpy_imm_16_msk(13, 0, 0, count=pairs)
            with core.section("ST"):
                core.charge_raw("pio_st", mv.pio_st(points_per_vr),
                                count=blocks)
