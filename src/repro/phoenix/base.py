"""Common machinery for the Phoenix benchmark applications (Section 5.2).

Each application provides:

* a **workload description** (the Table 6 row: input size and the CPU
  instruction count used by the Xeon baseline model);
* a **functional kernel** that computes real results on the simulator at
  a reduced scale and is validated against a NumPy reference;
* a **latency program**: the paper-scale APU program, written once
  against the simulator's timing-only mode with loops folded into
  ``count=`` arguments.

The latency program yields both sides of the Table 7 validation:

* **measured** -- the program on the default simulator, whose DMA and
  command costs include the second-order effects (VCU issue, DRAM
  refresh, lookup cache behaviour);
* **predicted** -- the *same* program on a simulator with those effects
  zeroed, which is exactly the closed-form analytical framework (pure
  Table 4/5 + Eq. 1 costs).

Optimization variants for Fig. 13 are expressed through
:class:`OptFlags`; each program changes structure (not fudge factors)
based on which optimizations are enabled.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from ..apu.device import APUDevice
from ..baselines.cpu import CPUModel
from ..core.params import APUParams, DEFAULT_PARAMS, SecondOrderEffects

__all__ = ["OptFlags", "AppResult", "PhoenixApp", "ALL_OPTS", "NO_OPTS"]


@dataclass(frozen=True)
class OptFlags:
    """Which of the paper's three optimizations a variant applies."""

    reduction_mapping: bool = False  # opt1
    dma_coalescing: bool = False     # opt2
    broadcast_layout: bool = False   # opt3

    @property
    def label(self) -> str:
        """Fig. 13 legend label for this variant."""
        if not any(dataclasses.astuple(self)):
            return "baseline"
        parts = []
        if self.reduction_mapping:
            parts.append("opt1")
        if self.dma_coalescing:
            parts.append("opt2")
        if self.broadcast_layout:
            parts.append("opt3")
        return "+".join(parts)


NO_OPTS = OptFlags()
ALL_OPTS = OptFlags(True, True, True)

#: The Fig. 13 variant family.
VARIANTS = {
    "baseline": NO_OPTS,
    "opt1": OptFlags(reduction_mapping=True),
    "opt2": OptFlags(dma_coalescing=True),
    "opt3": OptFlags(broadcast_layout=True),
    "all opts": ALL_OPTS,
}


@dataclass
class AppResult:
    """Functional-run outcome: the computed value plus simulator cycles."""

    value: object
    cycles: float
    latency_us: float


def _zero_effects(params: APUParams) -> APUParams:
    """The analytical-framework view: no second-order effects."""
    return params.evolve(effects=SecondOrderEffects(0.0, 0.0, 0.0, 0.0))


class PhoenixApp:
    """Base class for one Phoenix application."""

    #: Registry key; must match the CPU calibration table.
    name: str = "abstract"
    #: Table 6 input-size label.
    input_size: str = ""
    #: How many cores the paper-scale program spreads across.
    cores_used: int = 1

    def __init__(self, params: APUParams = DEFAULT_PARAMS):
        self.params = params
        self.cpu = CPUModel()

    @classmethod
    def with_input_scale(cls, factor: float,
                         params: APUParams = DEFAULT_PARAMS) -> "PhoenixApp":
        """An instance whose input is scaled by ``factor``.

        Streaming applications define their workload through
        ``TOTAL_BYTES``; scaling it supports input-size sweeps (the
        scaling ablation).  Apps with structural inputs (matmul, kmeans,
        pca) do not support scaling and raise.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        if not hasattr(cls, "TOTAL_BYTES"):
            raise TypeError(f"{cls.name} has no byte-stream input to scale")
        app = cls(params)
        app.TOTAL_BYTES = int(cls.TOTAL_BYTES * factor)
        return app

    # ------------------------------------------------------------------
    # Workload statistics (Table 6)
    # ------------------------------------------------------------------
    def cpu_instructions(self) -> float:
        """Valgrind instruction count of the CPU implementation."""
        return self.cpu.phoenix_instruction_count(self.name)

    def apu_microcode_instructions(self, opts: OptFlags = ALL_OPTS) -> int:
        """Microcode instructions issued by the paper-scale APU program."""
        device = APUDevice(self.params, functional=False)
        self._latency_program(device, opts)
        return device.micro_instructions

    # ------------------------------------------------------------------
    # Latency (Table 7 / Fig. 13)
    # ------------------------------------------------------------------
    def measured_latency_ms(self, opts: OptFlags = ALL_OPTS) -> float:
        """Simulator latency including second-order effects."""
        device = APUDevice(self.params, functional=False)
        self._latency_program(device, opts)
        return self.params.cycles_to_ms(device.makespan_cycles)

    def predicted_latency_ms(self, opts: OptFlags = ALL_OPTS) -> float:
        """Closed-form analytical-framework latency (Table 7 'Predicted')."""
        params = _zero_effects(self.params)
        device = APUDevice(params, functional=False)
        self._latency_program(device, opts)
        return params.cycles_to_ms(device.makespan_cycles)

    def variant_latencies_ms(self) -> Dict[str, float]:
        """Measured latency of every Fig. 13 optimization variant."""
        return {
            label: self.measured_latency_ms(flags)
            for label, flags in VARIANTS.items()
        }

    def cpu_latency_ms(self, threads: int = 1) -> float:
        """Baseline Xeon latency at the Table 6 scale."""
        return self.cpu.phoenix_seconds(self.name, threads) * 1e3

    def speedup_vs_cpu(self, threads: int = 1,
                       opts: OptFlags = ALL_OPTS) -> float:
        """APU speedup over the CPU baseline (Fig. 13 bars)."""
        return self.cpu_latency_ms(threads) / self.measured_latency_ms(opts)

    # ------------------------------------------------------------------
    # Functional execution (correctness)
    # ------------------------------------------------------------------
    def run_functional(self, device: Optional[APUDevice] = None) -> AppResult:
        """Run the reduced-scale functional kernel and time it."""
        device = device or APUDevice(self.params)
        if not device.functional:
            raise ValueError("functional runs need a functional device")
        device.reset_traces()
        value = self._functional_kernel(device)
        cycles = device.makespan_cycles
        return AppResult(
            value=value,
            cycles=cycles,
            latency_us=self.params.cycles_to_us(cycles),
        )

    def reference(self):
        """NumPy/pure-Python reference result for the functional input."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _functional_kernel(self, device: APUDevice):
        raise NotImplementedError

    def _latency_program(self, device: APUDevice, opts: OptFlags) -> None:
        raise NotImplementedError
