"""Phoenix Word Count on the APU (Table 6: 10 MB input).

Counts word occurrences in a text: the vector engine marks delimiter
positions and word starts in parallel; the control processor drains the
per-chunk word boundaries and maintains the hash table.  A small input
with highly parallel marking work -- one of the apps where the
optimized APU clearly beats the multi-threaded CPU (Section 5.2.1).
"""

from __future__ import annotations

import numpy as np

from ..apu.device import APUDevice
from .base import OptFlags, PhoenixApp

__all__ = ["WordCount"]

_SPACE, _NEWLINE = 0x20, 0x0A


class WordCount(PhoenixApp):
    """Word counting over 10 MB of text."""

    name = "word_count"
    input_size = "10MB"
    cores_used = 4

    TOTAL_BYTES = 10 * 1024 ** 2
    FUNC_CHARS = 32768

    # ------------------------------------------------------------------
    # Functional kernel
    # ------------------------------------------------------------------
    def _functional_input(self) -> bytes:
        rng = np.random.default_rng(16)
        words = [b"apu", b"sram", b"vector", b"dma", b"lookup", b"bit"]
        parts = []
        size = 0
        while size < self.FUNC_CHARS - 8:
            word = words[rng.integers(0, len(words))]
            parts.append(word)
            size += len(word) + 1
        return b" ".join(parts)[: self.FUNC_CHARS]

    def reference(self) -> dict:
        counts: dict = {}
        for word in self._functional_input().split():
            key = word.decode()
            counts[key] = counts.get(key, 0) + 1
        return counts

    def _functional_kernel(self, device: APUDevice) -> dict:
        text = self._functional_input()
        chars = np.frombuffer(text, dtype=np.uint8).astype(np.uint16)
        chars = np.pad(chars, (0, self.params.vr_length - chars.size),
                       constant_values=_SPACE)
        core = device.core
        g = core.gvml
        core.l1.store(0, chars)
        g.load_16(0, 0)
        # Mark delimiters on the vector engine.
        g.eq_imm_16(0, 0, _SPACE)
        g.eq_imm_16(1, 0, _NEWLINE)
        g.or_mrk(2, 0, 1)          # delimiter positions
        # Word starts: non-delimiter whose left neighbor is a delimiter.
        g.cpy_from_mrk_16(1, 2)    # 0/1 delimiter vector
        g.shift_e(1, 1, toward="tail")  # delimiter flags move right
        g.set_element(1, 0, 1)     # position 0 starts a word if non-delim
        g.not_mrk(3, 2)
        g.gt_imm_u16(4, 1, 0)      # left neighbor was delimiter
        g.and_mrk(5, 3, 4)         # word-start marker
        starts = np.flatnonzero(core.marker_read(5))
        delims = core.marker_read(2)
        # CP drains word boundaries and hashes (host-side table).
        counts: dict = {}
        for start in starts:
            end = start
            while end < chars.size and not delims[end]:
                end += 1
            word = bytes(chars[start:end].astype(np.uint8)).decode()
            if word:
                counts[word] = counts.get(word, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Paper-scale latency program
    # ------------------------------------------------------------------
    def _latency_program(self, device: APUDevice, opts: OptFlags) -> None:
        per_core = self.TOTAL_BYTES // self.params.num_cores
        vectors = -(-per_core // self.params.vr_bytes)  # 40 per core
        words_per_vector = 220  # distinct boundary extractions per chunk

        for core in device.cores:
            g = core.gvml
            with core.section("LD"):
                if opts.dma_coalescing:
                    core.dma.l4_to_l1_32k(0, count=vectors)
                else:
                    core.dma.l4_to_l2(None, 8192, count=vectors * 8)
                    core.dma.l2_to_l1(0, count=vectors)
                g.load_16(0, 0, count=vectors)
            with core.section("Compute"):
                g.eq_imm_16(0, 0, _SPACE, count=vectors)
                g.eq_imm_16(1, 0, _NEWLINE, count=vectors)
                g.or_mrk(2, 0, 1, count=vectors)
                g.cpy_from_mrk_16(1, 2, count=vectors)
                g.shift_e(1, 1, toward="tail", count=vectors)
                g.not_mrk(3, 2, count=vectors)
                g.gt_imm_u16(4, 1, 0, count=vectors)
                g.and_mrk(5, 3, 4, count=vectors)
                g.count_m(5, count=vectors)
            with core.section("Extract"):
                if opts.reduction_mapping:
                    # Boundary offsets drained via the RSP FIFO.
                    core.dma.pio_st(None, 0, n=words_per_vector, count=vectors
                    )
                else:
                    # Per-word spatial scan: first_marked + re-mask.
                    g.first_marked_index(5, count=vectors * words_per_vector)
            with core.section("ST"):
                core.dma.pio_st(None, 0, n=64, count=1)
