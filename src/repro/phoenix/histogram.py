"""Phoenix Histogram on the APU (Table 6: 1.5 GB input, Fig. 6 program).

Computes a 256-bin histogram of 8-bit pixel values.  The paper-scale
program streams the input across all four cores; each 64 KB chunk is
unpacked into two vector registers and every bin is counted with an
immediate-compare plus ``count_m`` -- the "fine-grained element access"
that keeps histogram from profiting much from the optimizations
(Section 5.2.1).

Optimization variants:

* without **opt1** the per-chunk partial counts are written back with
  per-bin PIO stores instead of accumulating in the control processor;
* without **opt2** the input streams in 8 KB DMA chunks (eight times
  the initiation overhead);
* without **opt3** the bin-group masks are rebuilt with subgroup copies
  each chunk instead of being broadcast from a lookup table.
"""

from __future__ import annotations

import numpy as np

from ..apu.device import APUDevice
from .base import OptFlags, PhoenixApp

__all__ = ["Histogram"]

#: Number of histogram bins (8-bit pixels).
BINS = 256


class Histogram(PhoenixApp):
    """256-bin histogram over 1.5 GB of pixels."""

    name = "histogram"
    input_size = "1.5GB"
    cores_used = 4

    #: Paper-scale input bytes (u8 pixels).
    TOTAL_BYTES = int(1.5 * 1024 ** 3)
    #: Functional-scale pixel count (two full VRs).
    FUNCTIONAL_PIXELS = 65536

    # ------------------------------------------------------------------
    # Functional kernel
    # ------------------------------------------------------------------
    def _functional_input(self) -> np.ndarray:
        rng = np.random.default_rng(11)
        return rng.integers(0, 256, self.FUNCTIONAL_PIXELS).astype(np.uint8)

    def reference(self) -> np.ndarray:
        """NumPy bincount of the functional input."""
        return np.bincount(self._functional_input(), minlength=BINS)

    def _functional_kernel(self, device: APUDevice) -> np.ndarray:
        pixels = self._functional_input()
        core = device.core
        g = core.gvml
        counts = np.zeros(BINS, dtype=np.int64)
        vlen = self.params.vr_length
        for start in range(0, pixels.size, vlen):
            chunk = pixels[start: start + vlen].astype(np.uint16)
            core.l1.store(0, np.pad(chunk, (0, vlen - chunk.size)))
            g.load_16(0, 0)
            # Mask off the padding so it cannot pollute bin 0.
            if chunk.size < vlen:
                g.cpy_imm_16(1, BINS)  # sentinel outside any bin
                g.create_grp_index_u16(2, vlen)
                g.gt_imm_u16(1, 2, chunk.size - 1)
                g.cpy_16_msk(0, 1, 1)
            for bin_value in range(BINS):
                g.eq_imm_16(0, 0, bin_value)
                counts[bin_value] += g.count_m(0)
        return counts

    # ------------------------------------------------------------------
    # Paper-scale latency program
    # ------------------------------------------------------------------
    def _latency_program(self, device: APUDevice, opts: OptFlags) -> None:
        per_core = self.TOTAL_BYTES // self.params.num_cores
        chunk_bytes = self.params.vr_bytes  # 64 KB = 65536 pixels
        chunks = -(-per_core // chunk_bytes)

        for core in device.cores:
            dma = core.dma
            g = core.gvml
            with core.section("LD"):
                if opts.dma_coalescing:
                    # The Fig. 6 program issues two transfers per tile,
                    # one per DMA engine: the L4->L2 stream overlaps.
                    with core.parallel() as par:
                        with par.track():
                            dma.l4_to_l2(None, chunk_bytes // 2,
                                         count=chunks)
                        with par.track():
                            dma.l4_to_l2(None, chunk_bytes // 2,
                                         count=chunks)
                else:
                    # Uncoalesced single-engine 8 KB descriptors.
                    dma.l4_to_l2(None, 8192, count=chunks * 8)
                dma.l2_to_l1(0, count=chunks)
                g.load_16(0, 0, count=chunks)
            with core.section("Compute"):
                # Unpack u8 pixel pairs into two u16 VRs.
                g.and_16(1, 0, 0, count=chunks)
                g.sr_imm_16(2, 0, 8, count=chunks)
                if opts.broadcast_layout:
                    # Bin-group masks broadcast once from an L3 table.
                    dma.lookup_16(3, None, BINS, count=1)
                else:
                    g.cpy_subgrp_16_grp(3, 3, 4096, 0, count=chunks * 8)
                # Count each bin on both unpacked VRs.
                g.eq_imm_16(0, 1, 0, count=chunks * BINS * 2)
                g.count_m(0, count=chunks * BINS * 2)
            with core.section("ST"):
                if opts.reduction_mapping:
                    # Partial counts accumulate in CP registers; one
                    # final vector of totals goes back over DMA.
                    g.store_16(1, 4, count=1)
                    dma.l1_to_l4_32k(None, 1, count=1)
                else:
                    # Per-chunk per-bin partials PIO'd to device DRAM.
                    core.dma.pio_st(None, 0, n=BINS, count=chunks
                    )
