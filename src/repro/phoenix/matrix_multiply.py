"""Phoenix Matrix Multiply on the APU (Table 6: 1024 x 1024).

Integer (u16, mod 2^16) matrix multiplication implemented as the
inner-product algorithm: loop j unrolls across the VR so each group of
K elements reduces spatially with ``add_subgrp``.  As Section 5.2.1
notes, matmul "still involve[s] frequent intra-VR operations and
fine-grained element access" even when optimized -- outputs land at
group heads and return over PIO -- which is why it stays behind the
multi-threaded CPU in Fig. 13.

Variant structure:

* **opt1** narrows the spatial reduction from the full VR to one
  K-sized group (fewer halving stages per block);
* **opt2** stages matrix B in L1 once instead of re-fetching each
  column block per row;
* **opt3** prepares the row-duplication index pattern from a lookup
  table instead of rebuilding it per row (a small win here; its real
  beneficiary is kmeans).
"""

from __future__ import annotations

import numpy as np

from ..apu.device import APUDevice
from .base import OptFlags, PhoenixApp

__all__ = ["MatrixMultiply"]


class MatrixMultiply(PhoenixApp):
    """1024 x 1024 u16 matrix multiply (inner-product mapping)."""

    name = "matrix_multiply"
    input_size = "1,024 x 1,024"
    cores_used = 1

    M = N = K = 1024
    #: Functional scale: 4 x 1024 x 32 (one VR of column blocks).
    FUNC_M, FUNC_K, FUNC_N = 4, 1024, 32

    # ------------------------------------------------------------------
    # Functional kernel
    # ------------------------------------------------------------------
    def _functional_input(self):
        rng = np.random.default_rng(13)
        a = rng.integers(0, 256, (self.FUNC_M, self.FUNC_K)).astype(np.uint16)
        b = rng.integers(0, 256, (self.FUNC_K, self.FUNC_N)).astype(np.uint16)
        return a, b

    def reference(self) -> np.ndarray:
        a, b = self._functional_input()
        return (a.astype(np.uint32) @ b.astype(np.uint32)).astype(np.uint16)

    def _functional_kernel(self, device: APUDevice) -> np.ndarray:
        a, b = self._functional_input()
        core = device.core
        g = core.gvml
        vlen = self.params.vr_length
        dup = vlen // self.FUNC_K  # 32 columns per VR pass
        c = np.zeros((self.FUNC_M, self.FUNC_N), dtype=np.uint16)

        # RHS: the 32 columns of B laid group-per-column.
        rhs = b.T.reshape(-1).astype(np.uint16)
        core.l1.store(0, np.pad(rhs, (0, vlen - rhs.size)))
        for i in range(self.FUNC_M):
            lhs = np.tile(a[i], dup)
            core.l1.store(1, lhs)
            g.load_16(0, 1)
            g.load_16(1, 0)
            g.mul_u16(2, 0, 1)
            g.add_subgrp_s16(3, 2, self.FUNC_K, 1)
            out = core.vr_read(3)
            c[i] = out[:: self.FUNC_K][: self.FUNC_N]
        return c

    # ------------------------------------------------------------------
    # Paper-scale latency program
    # ------------------------------------------------------------------
    def _latency_program(self, device: APUDevice, opts: OptFlags) -> None:
        core = device.core
        g = core.gvml
        mv = self.params.movement
        dup = self.params.vr_length // self.K        # 32 columns per pass
        blocks = self.N // dup                       # 32 passes per row
        pairs = self.M * blocks                      # (i, block) iterations

        with core.section("LD RHS"):
            if opts.dma_coalescing:
                bulk = -(-self.K * self.N * 2 // self.params.vr_bytes)
                core.dma.l4_to_l1_32k(0, count=bulk)
            else:
                # Column block re-fetched on every (row, block) pass.
                core.dma.l4_to_l1_32k(0, count=pairs)
            g.load_16(1, 0, count=pairs)
        with core.section("LD LHS"):
            # Row i duplicated across the VR by a chained DMA.
            core.charge_raw(
                "dma_l4_l2", mv.dma_l4_l2(self.params.vr_bytes), count=self.M
            )
            core.dma.l2_to_l1(0, count=self.M)
            g.load_16(0, 1, count=self.M)
            if opts.broadcast_layout:
                core.dma.lookup_16(5, None, dup, count=1)
            else:
                g.create_grp_index_u16(5, self.K, count=self.M)
        with core.section("Compute"):
            # Full-width products: u16 x u16 needs low and high halves
            # plus carry folding to accumulate without overflow.
            g.mul_u16(2, 0, 1, count=pairs)   # low half
            g.mul_u16(3, 0, 1, count=pairs)   # high half (mulh)
            g.add_u16(4, 4, 2, count=pairs)
            g.add_u16(5, 5, 3, count=pairs)
            if opts.reduction_mapping:
                g.add_subgrp_s16(6, 4, self.K, 1, count=pairs)
                g.add_subgrp_s16(7, 5, self.K, 1, count=pairs)
            else:
                g.add_subgrp_s16(6, 4, self.params.vr_length, 1, count=pairs)
                g.add_subgrp_s16(7, 5, self.params.vr_length, 1, count=pairs)
        with core.section("ST"):
            # Results sit at group heads: PIO extraction (Section 5.2.1).
            core.dma.pio_st(None, 0, n=dup, count=pairs)
