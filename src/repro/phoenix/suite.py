"""Suite-level aggregation: Tables 6 and 7 and the Fig. 13 comparison.

``PhoenixSuite`` instantiates every application and produces:

* :meth:`table6_stats` -- input size, CPU instructions, APU microcode
  instructions per app;
* :meth:`table7_validation` -- measured (simulator) vs predicted
  (analytical framework) latency with per-app error and mean accuracy;
* :meth:`fig13_comparison` -- per-variant APU speedups normalized to
  the single-threaded CPU, plus the aggregate statistics the paper
  quotes (mean / geometric-mean / peak speedup vs 1T and 16T CPU).

Aggregates follow the paper's scope: the seven applications with
Table 6 statistics (PCA carries no paper anchor and is excluded from
the headline numbers, though it is reported alongside).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..core.params import APUParams, DEFAULT_PARAMS
from .base import ALL_OPTS, PhoenixApp, VARIANTS
from .histogram import Histogram
from .kmeans import KMeans
from .linear_regression import LinearRegression
from .matrix_multiply import MatrixMultiply
from .pca import PCA
from .reverse_index import ReverseIndex
from .string_match import StringMatch
from .word_count import WordCount

__all__ = ["PhoenixSuite", "Table7Row", "Fig13Row", "TABLE6_APPS"]

#: Applications with paper-anchored statistics (Table 6 order).
TABLE6_APPS = (
    "histogram",
    "linear_regression",
    "matrix_multiply",
    "kmeans",
    "reverse_index",
    "string_match",
    "word_count",
)

_APP_CLASSES = (
    Histogram,
    LinearRegression,
    MatrixMultiply,
    KMeans,
    ReverseIndex,
    StringMatch,
    WordCount,
    PCA,
)


@dataclass(frozen=True)
class Table7Row:
    """One row of the framework-validation table."""

    app: str
    measured_ms: float
    predicted_ms: float

    @property
    def error(self) -> float:
        """Signed relative error of the prediction."""
        return (self.predicted_ms - self.measured_ms) / self.measured_ms


@dataclass(frozen=True)
class Fig13Row:
    """One application's bar group in the Fig. 13 comparison."""

    app: str
    cpu_1t_ms: float
    cpu_16t_ms: float
    apu_variant_ms: Dict[str, float]

    def speedup_1t(self, variant: str = "all opts") -> float:
        """APU speedup over the single-threaded CPU."""
        return self.cpu_1t_ms / self.apu_variant_ms[variant]

    def speedup_16t(self, variant: str = "all opts") -> float:
        """APU speedup over the 16-thread CPU."""
        return self.cpu_16t_ms / self.apu_variant_ms[variant]


class PhoenixSuite:
    """All eight Phoenix applications under one roof."""

    def __init__(self, params: APUParams = DEFAULT_PARAMS):
        self.params = params
        self.apps: Dict[str, PhoenixApp] = {
            cls.name: cls(params) for cls in _APP_CLASSES
        }

    # ------------------------------------------------------------------
    # Table 6
    # ------------------------------------------------------------------
    def table6_stats(self) -> List[dict]:
        """Per-app workload statistics."""
        rows = []
        for name in TABLE6_APPS + ("pca",):
            app = self.apps[name]
            rows.append({
                "app": name,
                "input_size": app.input_size,
                "cpu_instructions": (
                    app.cpu_instructions() if name in TABLE6_APPS else None
                ),
                "apu_ucode_instructions": app.apu_microcode_instructions(),
            })
        return rows

    # ------------------------------------------------------------------
    # Table 7
    # ------------------------------------------------------------------
    def table7_validation(self) -> List[Table7Row]:
        """Measured (simulator) vs predicted (analytical) latency."""
        return [
            Table7Row(
                app=name,
                measured_ms=self.apps[name].measured_latency_ms(ALL_OPTS),
                predicted_ms=self.apps[name].predicted_latency_ms(ALL_OPTS),
            )
            for name in TABLE6_APPS
        ]

    def mean_accuracy(self) -> float:
        """The paper's headline 97.3% mean framework accuracy."""
        rows = self.table7_validation()
        return 1.0 - sum(abs(r.error) for r in rows) / len(rows)

    # ------------------------------------------------------------------
    # Fig. 13
    # ------------------------------------------------------------------
    def fig13_comparison(self) -> List[Fig13Row]:
        """Per-app CPU baselines and APU variant latencies."""
        rows = []
        for name in TABLE6_APPS:
            app = self.apps[name]
            rows.append(Fig13Row(
                app=name,
                cpu_1t_ms=app.cpu_latency_ms(threads=1),
                cpu_16t_ms=app.cpu_latency_ms(threads=16),
                apu_variant_ms=app.variant_latencies_ms(),
            ))
        return rows

    def aggregate_speedups(self) -> Dict[str, float]:
        """The Section 5.2 headline statistics."""
        rows = self.fig13_comparison()
        s1 = [row.speedup_1t() for row in rows]
        s16 = [row.speedup_16t() for row in rows]
        return {
            "mean_vs_1t": sum(s1) / len(s1),
            "geomean_vs_1t": math.exp(sum(math.log(s) for s in s1) / len(s1)),
            "peak_vs_1t": max(s1),
            "mean_vs_16t": sum(s16) / len(s16),
            "geomean_vs_16t": math.exp(sum(math.log(s) for s in s16) / len(s16)),
            "peak_vs_16t": max(s16),
        }

    def variant_labels(self) -> List[str]:
        """The Fig. 13 legend, in order."""
        return list(VARIANTS)
