"""Phoenix String Match on the APU (Table 6: 512 MB input).

Searches an encrypted word list for a small set of keys: every 16-bit
chunk of the stream is XOR-"encrypted" and compared against each key's
signature, with matches counted per key.  This is the suite's best case
for the APU (peak speedup in Fig. 13): the whole inner loop is
inter-VR element-wise work over a bulk-DMA'd stream.

Without opt1, per-key match counts reduce spatially inside the VR;
without opt2, the stream arrives in 8 KB descriptors through L2.
"""

from __future__ import annotations

import numpy as np

from ..apu.device import APUDevice
from .base import OptFlags, PhoenixApp

__all__ = ["StringMatch"]

#: The four search keys of the Phoenix workload.
DEFAULT_KEYS = (0x6B65, 0x7933, 0x616C, 0x7A7A)


class StringMatch(PhoenixApp):
    """Key search over 512 MB of encrypted words."""

    name = "string_match"
    input_size = "512MB"
    cores_used = 4

    TOTAL_BYTES = 512 * 1024 ** 2
    FUNC_WORDS = 32768

    # ------------------------------------------------------------------
    # Functional kernel
    # ------------------------------------------------------------------
    def _functional_input(self) -> np.ndarray:
        rng = np.random.default_rng(15)
        words = rng.integers(0, 65536, self.FUNC_WORDS).astype(np.uint16)
        # Plant known keys so counts are non-trivial.
        for i, key in enumerate(DEFAULT_KEYS):
            words[i * 100: i * 100 + 7 + i] = key
        return words

    def reference(self) -> dict:
        words = self._functional_input()
        return {key: int((words == key).sum()) for key in DEFAULT_KEYS}

    def _functional_kernel(self, device: APUDevice) -> dict:
        words = self._functional_input()
        core = device.core
        g = core.gvml
        encrypt_mask = 0x5A5A
        core.l1.store(0, words ^ encrypt_mask)  # "encrypted" input file
        g.load_16(0, 0)
        g.cpy_imm_16(1, encrypt_mask)
        g.xor_16(2, 0, 1)  # decrypt on the vector engine
        counts = {}
        for key in DEFAULT_KEYS:
            g.eq_imm_16(0, 2, key)
            counts[key] = g.count_m(0)
        return counts

    # ------------------------------------------------------------------
    # Paper-scale latency program
    # ------------------------------------------------------------------
    def _latency_program(self, device: APUDevice, opts: OptFlags) -> None:
        per_core = self.TOTAL_BYTES // self.params.num_cores
        vectors = -(-per_core // self.params.vr_bytes)  # 2048 per core
        keys = len(DEFAULT_KEYS)
        mv = self.params.movement

        for core in device.cores:
            g = core.gvml
            with core.section("LD"):
                if opts.dma_coalescing:
                    core.dma.l4_to_l1_32k(0, count=vectors)
                else:
                    core.dma.l4_to_l2(None, 8192, count=vectors * 8)
                    core.dma.l2_to_l1(0, count=vectors)
                g.load_16(0, 0, count=vectors)
            with core.section("Compute"):
                g.xor_16(2, 0, 1, count=vectors)  # decrypt
                g.eq_imm_16(0, 2, 0, count=vectors * keys)
                if opts.reduction_mapping:
                    g.count_m(0, count=vectors * keys)
                else:
                    g.cpy_from_mrk_16(3, 0, count=vectors * keys)
                    g.add_subgrp_s16(4, 3, self.params.vr_length, 1,
                                     count=vectors * keys)
                    core.charge_raw("pio_st", mv.pio_st(1),
                                    count=vectors * keys)
            with core.section("ST"):
                core.dma.pio_st(None, 0, n=keys, count=1)
