"""Fixed-format text rendering of span trees and critical paths.

Every formatter here is deterministic down to the byte -- the golden
files under ``tests/goldens/`` pin the output, so formats use explicit
precision (never ``%g`` on computed floats) and sorted label order.
Times print as absolute simulated seconds at nanosecond precision and
durations as milliseconds at microsecond-and-three precision; both are
exact prints of bit-deterministic model outputs.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .critical import CriticalPath, conservation_error_cycles, \
    p99_contributors, stage_attribution
from .spans import SPAN_SHARD, QueryTrace, Span

__all__ = [
    "render_query_trace",
    "render_spans_report",
    "render_critical_path",
    "render_attribution",
]


def _span_label(span: Span) -> str:
    if span.name == SPAN_SHARD and span.shard_id is not None:
        return f"shard{span.shard_id}"
    return span.name


def _labels_suffix(span: Span) -> str:
    if not span.labels:
        return ""
    inner = " ".join(f"{key}={span.labels[key]}"
                     for key in sorted(span.labels))
    return f"  [{inner}]"


def render_query_trace(trace: QueryTrace) -> str:
    """One query's span tree as an indented block."""
    determining = ("none" if trace.determining_shard is None
                   else f"shard{trace.determining_shard}")
    lines = [
        f"query {trace.req_id}: arrival {trace.arrival_s:.9f} s, "
        f"retrieval {trace.retrieval_latency_s * 1e3:.6f} ms, "
        f"tti {trace.tti_s * 1e3:.6f} ms, determining {determining}"
    ]
    for depth, span in trace.root.walk():
        if depth == 0:
            continue  # the header already states the root
        lines.append(
            f"  {'  ' * (depth - 1)}{_span_label(span):<13s} "
            f"{span.duration_s * 1e3:12.6f} ms  "
            f"[{span.start_s:.9f}, {span.end_s:.9f}]"
            f"{_labels_suffix(span)}")
    return "\n".join(lines)


def render_spans_report(traces: Sequence[QueryTrace],
                        limit: Optional[int] = None) -> str:
    """Span trees for a whole run (optionally only the first ``limit``)."""
    total_spans = sum(trace.n_spans() for trace in traces)
    shown = traces if limit is None else traces[:limit]
    lines = [f"span trees: {len(traces)} queries, {total_spans} spans"]
    for trace in shown:
        lines.append("")
        lines.append(render_query_trace(trace))
    if len(shown) < len(traces):
        lines.append("")
        lines.append(f"... {len(traces) - len(shown)} more "
                     f"quer{'y' if len(traces) - len(shown) == 1 else 'ies'} "
                     f"elided")
    return "\n".join(lines)


def render_critical_path(path: CriticalPath, clock_hz: float) -> str:
    """One request's blocking chain plus its conservation check."""
    determining = ("none" if path.determining_shard < 0
                   else f"shard{path.determining_shard}")
    lines = [f"critical path for query {path.req_id} "
             f"(determining {determining}, {len(path.segments)} segments):"]
    for segment in path.segments:
        where = "host" if segment.shard_id < 0 \
            else f"shard{segment.shard_id}"
        lines.append(
            f"  {segment.stage:<18s} {where:<7s} "
            f"{segment.duration_s * 1e3:12.6f} ms  "
            f"[{segment.start_s:.9f}, {segment.end_s:.9f}]")
    error = conservation_error_cycles(path, clock_hz)
    lines.append(
        f"  total {path.total_s * 1e3:.6f} ms vs reported tti "
        f"{path.tti_s * 1e3:.6f} ms -> {error:.3e} cycle error")
    return "\n".join(lines)


def render_attribution(paths: Sequence[CriticalPath],
                       clock_hz: float,
                       reconcile: Optional[Any] = None) -> str:
    """Run-level critical-path attribution + p99 tail contributors."""
    totals = stage_attribution(paths)
    grand = sum(totals.values())
    worst = max((conservation_error_cycles(path, clock_hz)
                 for path in paths), default=0.0)
    lines = [f"critical-path attribution over {len(paths)} queries "
             f"(worst conservation error {worst:.3e} cycles):"]
    lines.append(f"  {'stage':<18s} {'seconds':>14s} {'share':>8s}")
    for stage in sorted(totals, key=lambda s: (-totals[s], s)):
        share = totals[stage] / grand if grand > 0 else 0.0
        lines.append(f"  {stage:<18s} {totals[stage]:14.9f} "
                     f"{share * 100:7.2f}%")
    p99, shares = p99_contributors(paths)
    lines.append(f"  p99 tti {p99 * 1e3:.6f} ms; tail stage shares:")
    for stage in sorted(shares, key=lambda s: (-shares[s], s)):
        lines.append(f"    {stage:<18s} {shares[stage] * 100:7.2f}%")
    if reconcile is not None:
        lines.append(f"  {reconcile.summary()}")
    return "\n".join(lines)
