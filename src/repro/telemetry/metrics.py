"""Deterministic metrics: counters, gauges, exact histograms, SLO burn.

A :class:`MetricsRegistry` is the run-scoped sink the telemetry
pipeline populates.  Everything is exact and bit-deterministic -- the
simulators are seeded discrete-event models, so metrics are model
outputs, not samples -- which lets the Prometheus exposition be pinned
as a golden file.

Histograms use **fixed boundaries** and an exact quantile rule chosen
to agree with :func:`repro.serve.metrics.nearest_rank_percentile`:
``quantile(p)`` returns the smallest bucket boundary at or above the
nearest-rank p-th percentile of the observed samples (``inf`` when it
falls in the overflow bucket).  That is the tightest statement a
fixed-boundary histogram can make, and the property suite pins it.

SLO **burn rate** follows the SRE convention: over a window, the
fraction of requests violating the SLO divided by the error budget
(``1 - target``).  A burn rate of 1 means the deployment spends budget
exactly as fast as it accrues; above 1 it is burning toward violation.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistrationError",
    "MetricsRegistry",
    "BurnWindow",
    "slo_burn_windows",
    "DEFAULT_LATENCY_BOUNDS_S",
]

#: Fixed latency-histogram boundaries (seconds): 1-2-5 ladder from
#: 100 us to 5 s, wide enough for every paper corpus and fault plan.
DEFAULT_LATENCY_BOUNDS_S = (
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1, 1.0, 2.0, 5.0,
)

#: Canonical label-set key: sorted (name, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _fmt_value(value: float) -> str:
    """Deterministic exposition formatting (ints bare, floats repr)."""
    if isinstance(value, bool):  # pragma: no cover - never stored
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class _Metric:
    """Shared name/help plumbing for the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text

    def header_lines(self) -> List[str]:
        return [f"# HELP {self.name} {self.help_text}",
                f"# TYPE {self.name} {self.kind}"]


class Counter(_Metric):
    """Monotonically accumulated totals, keyed by label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._samples: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: str) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {value!r})")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + value

    def value(self, **labels: str) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def expose_lines(self) -> List[str]:
        lines = self.header_lines()
        for key in sorted(self._samples):
            lines.append(f"{self.name}{_fmt_labels(key)} "
                         f"{_fmt_value(self._samples[key])}")
        return lines

    def snapshot(self) -> List[Dict[str, object]]:
        return [{"labels": dict(key), "value": self._samples[key]}
                for key in sorted(self._samples)]


class Gauge(_Metric):
    """Last-written point-in-time values, keyed by label set."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._samples: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._samples[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> Optional[float]:
        return self._samples.get(_label_key(labels))

    def expose_lines(self) -> List[str]:
        lines = self.header_lines()
        for key in sorted(self._samples):
            lines.append(f"{self.name}{_fmt_labels(key)} "
                         f"{_fmt_value(self._samples[key])}")
        return lines

    def snapshot(self) -> List[Dict[str, object]]:
        return [{"labels": dict(key), "value": self._samples[key]}
                for key in sorted(self._samples)]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets   # per-bucket, not cumulative
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Exact fixed-boundary histogram with nearest-rank quantiles."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 boundaries: Sequence[float] = DEFAULT_LATENCY_BOUNDS_S):
        super().__init__(name, help_text)
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one boundary")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("histogram boundaries must be finite")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"boundaries must be strictly increasing, got {bounds!r}")
        self.boundaries = bounds
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        if math.isnan(value):
            raise ValueError(f"histogram {self.name}: NaN observation")
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                len(self.boundaries) + 1)
        index = len(self.boundaries)          # overflow bucket
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                index = i
                break
        series.bucket_counts[index] += 1
        series.total += value
        series.count += 1

    def count(self, **labels: str) -> int:
        series = self._series.get(_label_key(labels))
        return 0 if series is None else series.count

    def quantile(self, pct: float, **labels: str) -> float:
        """Smallest boundary at/above the nearest-rank percentile.

        ``inf`` when the rank falls in the overflow bucket; raises on
        an empty series, matching ``nearest_rank_percentile``.
        """
        if not 0 < pct <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {pct!r}")
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            raise ValueError(
                f"quantile of empty histogram series {self.name}")
        rank = max(1, math.ceil(pct / 100.0 * series.count))
        cumulative = 0
        for i, bound in enumerate(self.boundaries):
            cumulative += series.bucket_counts[i]
            if cumulative >= rank:
                return bound
        return math.inf

    def expose_lines(self) -> List[str]:
        lines = self.header_lines()
        for key in sorted(self._series):
            series = self._series[key]
            cumulative = 0
            for i, bound in enumerate(self.boundaries):
                cumulative += series.bucket_counts[i]
                le_key = key + (("le", _fmt_value(bound)),)
                lines.append(f"{self.name}_bucket{_fmt_labels(le_key)} "
                             f"{cumulative}")
            inf_key = key + (("le", "+Inf"),)
            lines.append(f"{self.name}_bucket{_fmt_labels(inf_key)} "
                         f"{series.count}")
            lines.append(f"{self.name}_sum{_fmt_labels(key)} "
                         f"{_fmt_value(series.total)}")
            lines.append(f"{self.name}_count{_fmt_labels(key)} "
                         f"{series.count}")
        return lines

    def snapshot(self) -> List[Dict[str, object]]:
        rows = []
        for key in sorted(self._series):
            series = self._series[key]
            rows.append({
                "labels": dict(key),
                "buckets": dict(zip(
                    [_fmt_value(b) for b in self.boundaries] + ["+Inf"],
                    series.bucket_counts)),
                "sum": series.total,
                "count": series.count,
            })
        return rows


class MetricRegistrationError(ValueError):
    """A metric name was re-registered with conflicting identity.

    Raised when one registry sees the same name twice with a different
    metric kind **or a different non-empty help text**: two call sites
    silently sharing one counter under divergent descriptions is a
    telemetry bug, not a merge.  Re-registering with identical kind and
    help returns the existing metric; an empty help makes no claim (it
    is a plain lookup, and the first non-empty help backfills it).
    """


class MetricsRegistry:
    """Ordered collection of metrics with text + JSON exposition."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise MetricRegistrationError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}")
            if metric.help_text and existing.help_text \
                    and existing.help_text != metric.help_text:
                raise MetricRegistrationError(
                    f"metric {metric.name!r} already registered with "
                    f"help {existing.help_text!r}, re-registered with "
                    f"{metric.help_text!r}")
            if metric.help_text and not existing.help_text:
                existing.help_text = metric.help_text
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._register(Counter(name, help_text))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._register(Gauge(name, help_text))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help_text: str = "",
                  boundaries: Sequence[float] = DEFAULT_LATENCY_BOUNDS_S,
                  ) -> Histogram:
        metric = self._register(Histogram(name, help_text, boundaries))
        assert isinstance(metric, Histogram)
        return metric

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def expose(self) -> str:
        """Prometheus text exposition format (deterministic order)."""
        lines: List[str] = []
        for metric in self._metrics.values():
            lines.extend(metric.expose_lines())  # type: ignore[attr-defined]
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """JSON-able dict of every metric's samples."""
        return {
            name: {"kind": metric.kind,
                   "help": metric.help_text,
                   "samples": metric.snapshot()}  # type: ignore[attr-defined]
            for name, metric in self._metrics.items()
        }

    def snapshot_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)


@dataclass(frozen=True)
class BurnWindow:
    """SLO error-budget burn over one fixed window of simulated time."""

    index: int
    start_s: float
    end_s: float
    n_requests: int
    n_violations: int

    def error_rate(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.n_violations / self.n_requests

    def burn_rate(self, budget: float) -> float:
        """Error rate over budget (1.0 = burning exactly at budget)."""
        if budget <= 0:
            raise ValueError(f"error budget must be positive, "
                             f"got {budget!r}")
        return self.error_rate() / budget


def slo_burn_windows(arrivals_s: Sequence[float],
                     latencies_s: Sequence[float],
                     slo_s: float,
                     horizon_s: float,
                     n_windows: int = 4) -> List[BurnWindow]:
    """Partition the run into fixed windows and count SLO violations.

    Requests are assigned to windows by *arrival* time (the offered
    load is what burns budget).  A zero-length horizon degenerates to
    one window holding every request.
    """
    if len(arrivals_s) != len(latencies_s):
        raise ValueError("arrival/latency length mismatch")
    if slo_s <= 0:
        raise ValueError(f"SLO must be positive, got {slo_s!r}")
    if n_windows < 1:
        raise ValueError(f"need at least one window, got {n_windows!r}")
    if horizon_s < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon_s!r}")
    if horizon_s == 0:
        windows = [BurnWindow(
            index=0, start_s=0.0, end_s=0.0,
            n_requests=len(arrivals_s),
            n_violations=sum(1 for lat in latencies_s if lat > slo_s))]
        return windows
    width = horizon_s / n_windows
    counts = [0] * n_windows
    violations = [0] * n_windows
    for arrival, latency in zip(arrivals_s, latencies_s):
        index = min(n_windows - 1, max(0, int(arrival / width)))
        counts[index] += 1
        if latency > slo_s:
            violations[index] += 1
    return [BurnWindow(index=i, start_s=i * width, end_s=(i + 1) * width,
                       n_requests=counts[i], n_violations=violations[i])
            for i in range(n_windows)]
