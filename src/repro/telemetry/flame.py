"""Folded-stack flamegraph export of span trees.

Emits the classic ``stack;frames;leaf <count>`` collapse format that
``flamegraph.pl``, speedscope, and the pprof web UI all ingest.  Counts
are **device cycles of self time**: each span contributes its duration
minus its children's (so stacks sum exactly to the traced wall time),
rounded to whole cycles.  Output order is sorted, so the export is
byte-deterministic and golden-pinnable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .spans import SPAN_BATCH, SPAN_SHARD, QueryTrace, Span

__all__ = ["folded_stacks", "write_flamegraph"]

#: Root frame of every stack.
FLAME_ROOT = "serve"


def _frame(span: Span, per_query: bool, req_id: int) -> str:
    if span.name == SPAN_SHARD and span.shard_id is not None:
        return f"shard{span.shard_id}"
    if span.name == SPAN_BATCH:
        outcome = span.labels.get("outcome", "")
        return f"batch:{outcome}" if outcome else "batch"
    if span.name == "query":
        return f"query{req_id}" if per_query else "query"
    return span.name


def _collect(span: Span, stack: str, counts: Dict[str, int],
             clock_hz: float, per_query: bool, req_id: int) -> None:
    frame = _frame(span, per_query, req_id)
    path = f"{stack};{frame}"
    child_seconds = 0.0
    for child in span.children:
        child_seconds += child.duration_s
        _collect(child, path, counts, clock_hz, per_query, req_id)
    self_cycles = int(round((span.duration_s - child_seconds) * clock_hz))
    if self_cycles > 0:
        counts[path] = counts.get(path, 0) + self_cycles


def folded_stacks(traces: Sequence[QueryTrace], clock_hz: float,
                  per_query: bool = False) -> List[str]:
    """The run's span trees as sorted folded-stack lines.

    ``per_query=False`` (the default) merges all queries into one
    aggregate flamegraph; ``True`` keeps a ``query<id>`` frame so each
    request gets its own subtree.
    """
    counts: Dict[str, int] = {}
    for trace in traces:
        _collect(trace.root, FLAME_ROOT, counts, clock_hz, per_query,
                 trace.req_id)
    return [f"{stack} {counts[stack]}" for stack in sorted(counts)]


def write_flamegraph(path, traces: Sequence[QueryTrace], clock_hz: float,
                     per_query: bool = False) -> str:
    """Write the folded stacks to ``path``; returns the path."""
    lines = folded_stacks(traces, clock_hz, per_query=per_query)
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + ("\n" if lines else ""))
    return str(path)
