"""Request-level causal telemetry over the serving simulator.

Layered on :mod:`repro.obs` (which answers "what did the devices do"),
this package answers "*why was this request slow*": per-query span
trees (:mod:`.spans`), exact critical-path latency attribution
(:mod:`.critical`), and a deterministic SLO metrics pipeline with
Prometheus exposition (:mod:`.metrics`).  Everything is derived
post-hoc from the scheduler's causal record
(:mod:`.build`), so enabling telemetry never changes a simulated
result -- the bit-identity property the test suite pins.

Entry points: ``ServingSimulator.run_with_telemetry()`` returns the
usual report plus a :class:`~repro.telemetry.build.RunTelemetry`
bundle; ``python -m repro.cli spans <workload>`` and
``python -m repro.cli metrics <workload>`` render it from the
command line, with folded-stack flamegraph (:mod:`.flame`) and
Perfetto span-overlay (:mod:`.export`) file outputs.
"""

from .build import (
    ReconcileReport,
    RunTelemetry,
    StageTable,
    build_query_traces,
    build_run_telemetry,
    build_serve_metrics,
    reconcile_with_trace,
)
from .critical import (
    CriticalPath,
    Segment,
    conservation_error_cycles,
    critical_path,
    p99_contributors,
    stage_attribution,
)
from .export import (
    span_trace_events,
    telemetry_chrome_trace,
    write_telemetry_trace,
)
from .flame import folded_stacks, write_flamegraph
from .metrics import (
    DEFAULT_LATENCY_BOUNDS_S,
    BurnWindow,
    Counter,
    Gauge,
    Histogram,
    MetricRegistrationError,
    MetricsRegistry,
    slo_burn_windows,
)
from .render import (
    render_attribution,
    render_critical_path,
    render_query_trace,
    render_spans_report,
)
from .spans import (
    SPAN_BACKOFF,
    SPAN_BATCH,
    SPAN_FAILOVER_WAIT,
    SPAN_MERGE,
    SPAN_PREFILL,
    SPAN_QUERY,
    SPAN_QUEUE_WAIT,
    SPAN_SHARD,
    STAGE_SPANS,
    QueryTrace,
    Span,
)

__all__ = [
    "Span",
    "QueryTrace",
    "SPAN_QUERY",
    "SPAN_SHARD",
    "SPAN_QUEUE_WAIT",
    "SPAN_BATCH",
    "SPAN_BACKOFF",
    "SPAN_FAILOVER_WAIT",
    "SPAN_MERGE",
    "SPAN_PREFILL",
    "STAGE_SPANS",
    "Segment",
    "CriticalPath",
    "critical_path",
    "conservation_error_cycles",
    "stage_attribution",
    "p99_contributors",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistrationError",
    "MetricsRegistry",
    "BurnWindow",
    "slo_burn_windows",
    "DEFAULT_LATENCY_BOUNDS_S",
    "StageTable",
    "RunTelemetry",
    "ReconcileReport",
    "build_query_traces",
    "build_run_telemetry",
    "build_serve_metrics",
    "reconcile_with_trace",
    "render_query_trace",
    "render_spans_report",
    "render_critical_path",
    "render_attribution",
    "folded_stacks",
    "write_flamegraph",
    "span_trace_events",
    "telemetry_chrome_trace",
    "write_telemetry_trace",
]
