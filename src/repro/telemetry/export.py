"""Chrome-trace span overlay: request rows + flow arrows to devices.

Extends the ``repro.obs`` Chrome export with one Perfetto process named
``requests`` holding one thread row per query; each span in the query's
tree becomes a complete ("X") slice on that row, and every ``batch``
span additionally emits a flow-event pair ("s"/"f") linking the request
row to the matching ``serve_batch`` slice on the shard-device row -- so
Perfetto draws an arrow from the request's timeline to the device work
it blocked on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..obs.export import DEFAULT_CLOCK_HZ, chrome_trace
from .spans import SPAN_BATCH, SPAN_SHARD, QueryTrace

__all__ = [
    "REQUESTS_PID",
    "span_trace_events",
    "telemetry_chrome_trace",
    "write_telemetry_trace",
]

#: Perfetto process id of the synthetic "requests" process (far above
#: any shard-device core id).
REQUESTS_PID = 1000

#: Thread id of the VCU lane on device rows (``LANES[0]`` in the obs
#: export's lane -> tid mapping), where ``serve_batch`` slices live.
_VCU_TID = 0


def span_trace_events(traces: Sequence[QueryTrace],
                      clock_hz: float = DEFAULT_CLOCK_HZ,
                      ) -> List[Dict[str, object]]:
    """Chrome trace events for the span overlay (metadata + X + flows)."""
    us_per_s = 1e6
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": REQUESTS_PID, "tid": 0,
        "args": {"name": "requests"},
    }]
    flow_id = 0
    for trace in traces:
        tid = trace.req_id
        events.append({
            "name": "thread_name", "ph": "M", "pid": REQUESTS_PID,
            "tid": tid, "args": {"name": f"query {trace.req_id}"},
        })
        for _, span in trace.root.walk():
            name = span.name
            if name == SPAN_SHARD and span.shard_id is not None:
                name = f"shard{span.shard_id}"
            args: Dict[str, object] = {
                key: span.labels[key] for key in sorted(span.labels)}
            if span.shard_id is not None:
                args["shard"] = span.shard_id
            events.append({
                "name": name,
                "cat": "span",
                "ph": "X",
                "ts": span.start_s * us_per_s,
                "dur": span.duration_s * us_per_s,
                "pid": REQUESTS_PID,
                "tid": tid,
                "args": args,
            })
            if span.name == SPAN_BATCH and span.shard_id is not None:
                flow_id += 1
                ts = span.start_s * us_per_s
                events.append({
                    "name": "dispatch", "cat": "flow", "ph": "s",
                    "id": flow_id, "ts": ts,
                    "pid": REQUESTS_PID, "tid": tid,
                })
                events.append({
                    "name": "dispatch", "cat": "flow", "ph": "f",
                    "bp": "e", "id": flow_id, "ts": ts,
                    "pid": span.shard_id, "tid": _VCU_TID,
                })
    return events


def telemetry_chrome_trace(collector_or_events,
                           traces: Sequence[QueryTrace],
                           clock_hz: float = DEFAULT_CLOCK_HZ,
                           metadata: Optional[Dict[str, object]] = None,
                           process_names: Optional[Dict[int, str]] = None,
                           ) -> Dict[str, object]:
    """The obs Chrome trace with the request-span overlay merged in."""
    trace = chrome_trace(collector_or_events, clock_hz, metadata,
                         process_names)
    events = list(trace["traceEvents"])  # type: ignore[arg-type]
    events.extend(span_trace_events(traces, clock_hz))
    trace["traceEvents"] = events
    other = trace.get("otherData")
    if isinstance(other, dict):
        other["n_query_traces"] = len(traces)
    return trace


def write_telemetry_trace(path, collector_or_events,
                          traces: Sequence[QueryTrace],
                          clock_hz: float = DEFAULT_CLOCK_HZ,
                          metadata: Optional[Dict[str, object]] = None,
                          process_names: Optional[Dict[int, str]] = None,
                          ) -> str:
    """Write the merged trace JSON to ``path``; returns the path."""
    import json

    trace = telemetry_chrome_trace(collector_or_events, traces, clock_hz,
                                   metadata, process_names)
    with open(path, "w") as handle:
        handle.write(json.dumps(trace, indent=1))
    return str(path)
