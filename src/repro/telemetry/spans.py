"""Request-scoped causal spans: the telemetry tree vocabulary.

A :class:`Span` is one contiguous interval of simulated time attributed
to a named stage of a request's life, with parent/child causality.  The
taxonomy mirrors the serving stack::

    query                      the request, arrival -> first token
      shard<k>                 the scatter leg on one shard device
        queue_wait             batch formation / device busy
        batch                  one executed attempt (outcome label)
          dma / mac / topk / return      Table 8 stage decomposition
          checksum / scrub               ABFT protection tax
          slowdown                       fault-injected stretch
        backoff                retry gate after a failed attempt
        failover_wait          queued on a shard that then died
      merge                    host top-k merge
      prefill                  generator prefill (TTI tail)

Spans are plain data: the builder (:mod:`repro.telemetry.build`)
derives them from the scheduler's causal record, so constructing them
never perturbs the simulation.  Sibling spans under one ``shard<k>``
parent partition the parent's interval *bitwise* -- every boundary is
the same float the discrete-event loop used -- which is what makes the
critical path cycle-conserving by construction
(:mod:`repro.telemetry.critical`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "QueryTrace",
    "SPAN_QUERY",
    "SPAN_SHARD",
    "SPAN_QUEUE_WAIT",
    "SPAN_BATCH",
    "SPAN_BACKOFF",
    "SPAN_FAILOVER_WAIT",
    "SPAN_MERGE",
    "SPAN_PREFILL",
    "STAGE_SPANS",
]

#: Span stage names (the closed vocabulary the renderers rely on).
SPAN_QUERY = "query"
SPAN_SHARD = "shard"          # rendered as shard<k>
SPAN_QUEUE_WAIT = "queue_wait"
SPAN_BATCH = "batch"
SPAN_BACKOFF = "backoff"
SPAN_FAILOVER_WAIT = "failover_wait"
SPAN_MERGE = "merge"
SPAN_PREFILL = "prefill"

#: Leaf stages a ``batch`` span decomposes into (display order).
STAGE_SPANS = ("dma", "mac", "topk", "return", "checksum", "scrub",
               "slowdown")


@dataclass
class Span:
    """One attributed interval of simulated time in a request's life."""

    name: str
    start_s: float
    end_s: float
    #: Shard device the interval occupied; ``None`` for host-side spans
    #: (query root, merge, prefill).
    shard_id: Optional[int] = None
    #: Small string-valued annotations (outcome, batch size, ...).
    labels: Dict[str, str] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError(
                f"span {self.name!r} ends before it starts: "
                f"[{self.start_s!r}, {self.end_s!r}]")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def walk(self) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (depth, span) traversal, children in order."""
        stack: List[Tuple[int, Span]] = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def n_spans(self) -> int:
        """Size of the subtree rooted here (this span included)."""
        return sum(1 for _ in self.walk())

    def find_all(self, name: str) -> List["Span"]:
        """Every span in the subtree with the given stage name."""
        return [span for _, span in self.walk() if span.name == name]


@dataclass
class QueryTrace:
    """One request's span tree plus the scalars the tree must conserve.

    ``tti_s`` is computed with exactly the association the simulator
    uses for its latency samples (``((done - arrival) + merge) +
    prefill``), so telemetry totals can be compared bitwise against the
    report.
    """

    req_id: int
    arrival_s: float
    retrieval_done_s: float
    merge_s: float
    prefill_s: float
    root: Span
    #: Shard whose completion (or death) resolved the scatter-gather;
    #: ``None`` when the request resolved empty-handed (no live shards).
    determining_shard: Optional[int]
    n_required: int
    failed_shards: Tuple[int, ...] = ()
    corrupted_shards: Tuple[int, ...] = ()

    @property
    def retrieval_latency_s(self) -> float:
        return self.retrieval_done_s - self.arrival_s

    @property
    def tti_s(self) -> float:
        """Reported time-to-interactive (simulator association)."""
        return (self.retrieval_latency_s + self.merge_s) + self.prefill_s

    @property
    def shard_spans(self) -> Dict[int, Span]:
        """Shard id -> that shard's scatter-leg span."""
        spans: Dict[int, Span] = {}
        for child in self.root.children:
            if child.name == SPAN_SHARD and child.shard_id is not None:
                spans[child.shard_id] = child
        return spans

    def n_spans(self) -> int:
        return self.root.n_spans()
