"""Critical-path extraction and latency attribution over span trees.

For one request, the **critical path** is the blocking chain that
produced its reported TTI: the segment chain of the *determining* shard
(the shard whose completion or death resolved the scatter-gather),
followed by the host merge and the generator prefill.  The chain's
segments partition ``[arrival, retrieval_done]`` bitwise -- adjacent
segments share the exact floats the discrete-event loop used -- so the
path is cycle-conserving by construction: the scalar sum of segment
durations agrees with the reported TTI to float associativity (orders
of magnitude below one device cycle; see
:func:`conservation_error_cycles`).

Aggregation answers "which stage is guilty": :func:`stage_attribution`
sums critical time per stage over a run, and :func:`p99_contributors`
restricts that to the requests at or above the p99 TTI, so a tail
regression names the stage that grew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .spans import (
    SPAN_BATCH,
    SPAN_MERGE,
    SPAN_PREFILL,
    QueryTrace,
    Span,
)

__all__ = [
    "Segment",
    "CriticalPath",
    "critical_path",
    "conservation_error_cycles",
    "stage_attribution",
    "p99_contributors",
]


@dataclass(frozen=True)
class Segment:
    """One link of a critical path (a leaf interval, never nested)."""

    name: str
    start_s: float
    end_s: float
    shard_id: int = -1          # -1 = host side (merge, prefill)
    #: For ``batch`` segments: the attempt's outcome label.
    detail: str = ""

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def stage(self) -> str:
        """Attribution key (`batch` refined by its outcome detail)."""
        if self.name == SPAN_BATCH and self.detail:
            return f"{SPAN_BATCH}:{self.detail}"
        return self.name


@dataclass(frozen=True)
class CriticalPath:
    """The exact blocking chain behind one request's TTI."""

    req_id: int
    segments: Tuple[Segment, ...]
    #: The reported TTI this chain must conserve (simulator association).
    tti_s: float
    determining_shard: int = -1

    @property
    def total_s(self) -> float:
        """Left-to-right sum of segment durations."""
        total = 0.0
        for segment in self.segments:
            total += segment.duration_s
        return total

    def stage_totals(self) -> Dict[str, float]:
        """Critical seconds per stage key for this one request."""
        totals: Dict[str, float] = {}
        for segment in self.segments:
            key = segment.stage
            totals[key] = totals.get(key, 0.0) + segment.duration_s
        return totals


def _chain_segments(shard_span: Span) -> List[Segment]:
    """The shard span's child chain as critical-path segments."""
    segments: List[Segment] = []
    for child in shard_span.children:
        segments.append(Segment(
            name=child.name,
            start_s=child.start_s,
            end_s=child.end_s,
            shard_id=shard_span.shard_id
            if shard_span.shard_id is not None else -1,
            detail=child.labels.get("outcome", ""),
        ))
    return segments


def critical_path(trace: QueryTrace) -> CriticalPath:
    """Extract the blocking chain for one request.

    The chain is the determining shard's child spans (they partition
    ``[arrival, retrieval_done]`` bitwise by construction) plus the
    merge and prefill spans from the query root.
    """
    segments: List[Segment] = []
    if trace.determining_shard is not None:
        shard_span = trace.shard_spans.get(trace.determining_shard)
        if shard_span is None:  # pragma: no cover - builder invariant
            raise ValueError(
                f"request {trace.req_id}: determining shard "
                f"{trace.determining_shard} has no span")
        segments.extend(_chain_segments(shard_span))
    for child in trace.root.children:
        if child.name in (SPAN_MERGE, SPAN_PREFILL):
            segments.append(Segment(
                name=child.name, start_s=child.start_s,
                end_s=child.end_s))
    return CriticalPath(
        req_id=trace.req_id,
        segments=tuple(segments),
        tti_s=trace.tti_s,
        determining_shard=-1 if trace.determining_shard is None
        else trace.determining_shard,
    )


def conservation_error_cycles(path: CriticalPath,
                              clock_hz: float) -> float:
    """|sum of segment durations - reported TTI| in device cycles.

    Zero up to float associativity; the regression suites assert this
    stays far below one cycle for every request.
    """
    return abs(path.total_s - path.tti_s) * clock_hz


def stage_attribution(paths: Sequence[CriticalPath]) -> Dict[str, float]:
    """Total critical seconds per stage key across a run."""
    totals: Dict[str, float] = {}
    for path in paths:
        for key, value in path.stage_totals().items():
            totals[key] = totals.get(key, 0.0) + value
    return totals


def p99_contributors(paths: Sequence[CriticalPath]
                     ) -> Tuple[float, Dict[str, float]]:
    """(p99 TTI, stage shares among requests at or above it).

    Uses the same nearest-rank percentile as the serving report, so
    "p99" here selects exactly the requests behind the reported p99.
    Shares sum to 1 over the selected requests' critical time.
    """
    if not paths:
        raise ValueError("p99 attribution of an empty run")
    from ..serve.metrics import nearest_rank_percentile

    p99 = nearest_rank_percentile([p.tti_s for p in paths], 99)
    tail = [p for p in paths if p.tti_s >= p99]
    totals = stage_attribution(tail)
    grand = sum(totals.values())
    if grand <= 0:  # pragma: no cover - TTI always positive
        return p99, {}
    return p99, {key: value / grand for key, value in totals.items()}
