"""Build span trees, critical paths, and metrics from a schedule.

The builder is strictly *derivational*: it consumes the scheduler's
causal record (:class:`~repro.serve.scheduler.ScheduleResult` --
executed batch attempts, per-request scatter-gather progress, death
times) plus the per-dispatch stage tables the simulator captured, and
reconstructs every request's span tree after the fact.  Nothing here
runs during the event loop, so telemetry-on and telemetry-off
simulations are bit-identical by construction (and the property suite
proves it).

Every boundary in a tree is a float the event loop itself produced
(arrival times, dispatch times, ``dispatch + service`` completions,
death times), so sibling spans partition their parent bitwise and the
critical path conserves the reported TTI
(:mod:`repro.telemetry.critical`).

:func:`reconcile_with_trace` cross-checks the trees against the
``repro.obs`` TraceEvents the simulator emits -- spans are an *account*
of the same cycles, not a parallel accounting, and the reconciliation
proves it event by event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .critical import CriticalPath, critical_path, stage_attribution
from .metrics import (
    DEFAULT_LATENCY_BOUNDS_S,
    MetricsRegistry,
    slo_burn_windows,
)
from .spans import (
    SPAN_BACKOFF,
    SPAN_BATCH,
    SPAN_FAILOVER_WAIT,
    SPAN_MERGE,
    SPAN_PREFILL,
    SPAN_QUERY,
    SPAN_QUEUE_WAIT,
    SPAN_SHARD,
    QueryTrace,
    Span,
)

__all__ = [
    "StageTable",
    "RunTelemetry",
    "ReconcileReport",
    "build_query_traces",
    "build_run_telemetry",
    "build_serve_metrics",
    "reconcile_with_trace",
]

#: Batch-size histogram boundaries (dynamic batches cap at powers of 2).
BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class StageTable:
    """One dispatch's stage decomposition, captured at dispatch time.

    ``stages`` sums (to float associativity) to the service model's
    un-multiplied batch seconds; the fault multiplier's stretch is
    attributed separately as ``slowdown`` when the tree is built.
    """

    shard_id: int
    batch_size: int
    stages: Tuple[Tuple[str, float], ...]

    def base_seconds(self) -> float:
        total = 0.0
        for _, seconds in self.stages:
            total += seconds
        return total


def _batch_span(batch: Any, stage_table: Optional[StageTable]) -> Span:
    """The span of one executed attempt, with stage children when the
    attempt ran to completion (truncated attempts stay leaves)."""
    end_s = batch.dispatch_s + batch.service_s
    outcome = batch.outcome
    if batch.recompute and outcome == "ok":
        outcome = "recompute"
    labels = {
        "outcome": outcome,
        "batch_size": str(batch.batch_size),
        "attempt": str(batch.attempt),
    }
    if batch.corrupted:
        labels["corrupted"] = "1"
    span = Span(name=SPAN_BATCH, start_s=batch.dispatch_s, end_s=end_s,
                shard_id=batch.shard_id, labels=labels)
    full_service = batch.outcome in ("ok", "corrupted")
    if stage_table is None or not full_service:
        return span
    cursor = batch.dispatch_s
    for stage_name, seconds in stage_table.stages:
        if seconds <= 0:
            continue
        span.children.append(Span(
            name=stage_name, start_s=cursor, end_s=cursor + seconds,
            shard_id=batch.shard_id))
        cursor += seconds
    # A fold of the stage seconds can miss the exact service time by an
    # ulp; only a genuinely fault-stretched batch (multiplier != 1)
    # carries a slowdown span, so residue never masquerades as a fault.
    slowdown = end_s - cursor
    if slowdown > 0 and float(batch.multiplier) != 1.0:
        span.children.append(Span(
            name="slowdown", start_s=cursor, end_s=end_s,
            shard_id=batch.shard_id,
            labels={"multiplier": repr(float(batch.multiplier))}))
    return span


def _shard_chain(record: Any, shard_id: int,
                 attempts: Sequence[Any],
                 stage_tables: Mapping[Tuple[int, int], StageTable],
                 death_time: Optional[float]) -> Span:
    """One shard leg: spans that partition [arrival, leg end] bitwise."""
    failed = shard_id in record.failed_shards
    if failed:
        if death_time is None:  # pragma: no cover - scheduler invariant
            raise ValueError(
                f"request {record.req_id}: shard {shard_id} failed "
                f"without a recorded death time")
        leg_end = death_time
    else:
        leg_end = record.shard_done_s[shard_id]
    shard_span = Span(name=SPAN_SHARD, start_s=record.arrival_s,
                      end_s=leg_end, shard_id=shard_id,
                      labels={"failed": "1"} if failed else {})
    cursor = record.arrival_s
    previous_failed = False
    for batch in attempts:
        if batch.dispatch_s > cursor:
            gap_name = SPAN_BACKOFF if previous_failed else SPAN_QUEUE_WAIT
            shard_span.children.append(Span(
                name=gap_name, start_s=cursor, end_s=batch.dispatch_s,
                shard_id=shard_id))
        table = stage_tables.get((batch.shard_id, batch.seq))
        span = _batch_span(batch, table)
        shard_span.children.append(span)
        cursor = span.end_s
        previous_failed = not batch.succeeded
    if failed and leg_end > cursor:
        shard_span.children.append(Span(
            name=SPAN_FAILOVER_WAIT, start_s=cursor, end_s=leg_end,
            shard_id=shard_id))
    return shard_span


def build_query_traces(result: Any, merge_s: float, prefill_s: float,
                       stage_tables: Optional[Sequence[StageTable]] = None,
                       ) -> List[QueryTrace]:
    """One :class:`QueryTrace` per completed request, in req-id order.

    ``stage_tables`` is the dispatch-ordered capture from
    ``ServingSimulator.run_with_telemetry`` (one entry per executed
    batch); omitted, batch spans stay leaves.
    """
    tables: Dict[Tuple[int, int], StageTable] = {}
    if stage_tables is not None:
        if len(stage_tables) != len(result.batches):
            raise ValueError(
                f"{len(stage_tables)} stage tables for "
                f"{len(result.batches)} executed batches")
        for batch, table in zip(result.batches, stage_tables):
            if table.shard_id != batch.shard_id \
                    or table.batch_size != batch.batch_size:
                raise ValueError(
                    f"stage table ({table.shard_id}, {table.batch_size}) "
                    f"does not match batch ({batch.shard_id}, "
                    f"{batch.batch_size})")
            tables[(batch.shard_id, batch.seq)] = table

    by_request: Dict[int, Dict[int, List[Any]]] = {}
    for batch in result.batches:
        for req_id in batch.request_ids:
            by_request.setdefault(req_id, {}).setdefault(
                batch.shard_id, []).append(batch)

    traces: List[QueryTrace] = []
    for record in result.records:
        done = record.retrieval_done_s
        if done is None:  # pragma: no cover - scheduler invariant
            raise ValueError(f"request {record.req_id} never resolved")
        tti_end = (done + merge_s) + prefill_s
        root = Span(name=SPAN_QUERY, start_s=record.arrival_s,
                    end_s=tti_end,
                    labels={"n_required": str(record.n_required)})
        shard_ids = sorted(set(record.shard_done_s)
                           | set(record.failed_shards))
        leg_ends: Dict[int, float] = {}
        for shard_id in shard_ids:
            attempts = sorted(
                by_request.get(record.req_id, {}).get(shard_id, []),
                key=lambda b: b.dispatch_s)
            leg = _shard_chain(record, shard_id, attempts, tables,
                               result.death_times.get(shard_id))
            leg_ends[shard_id] = leg.end_s
            root.children.append(leg)
        determining: Optional[int] = None
        for shard_id in shard_ids:
            if leg_ends[shard_id] == done:
                determining = shard_id
                break
        if determining is None and shard_ids:
            # pragma: no cover - every resolution is a shard event
            raise ValueError(
                f"request {record.req_id}: no shard leg ends at the "
                f"recorded resolution time {done!r}")
        merge_end = done + merge_s
        root.children.append(Span(name=SPAN_MERGE, start_s=done,
                                  end_s=merge_end))
        root.children.append(Span(name=SPAN_PREFILL, start_s=merge_end,
                                  end_s=merge_end + prefill_s))
        traces.append(QueryTrace(
            req_id=record.req_id,
            arrival_s=record.arrival_s,
            retrieval_done_s=done,
            merge_s=merge_s,
            prefill_s=prefill_s,
            root=root,
            determining_shard=determining,
            n_required=record.n_required,
            failed_shards=tuple(sorted(record.failed_shards)),
            corrupted_shards=tuple(sorted(record.corrupted_shards)),
        ))
    return traces


# ----------------------------------------------------------------------
# Metrics pipeline
# ----------------------------------------------------------------------
def build_serve_metrics(report: Any, result: Any,
                        paths: Sequence[CriticalPath],
                        traces: Sequence[QueryTrace],
                        n_burn_windows: int = 4,
                        slo_target: float = 0.99) -> MetricsRegistry:
    """Populate a registry from one serving run.

    The same derivational hooks as the span trees: everything comes
    from the schedule record and the report, so the registry is
    bit-deterministic and golden-pinnable.
    """
    registry = MetricsRegistry()
    cfg = report.config

    requests = registry.counter(
        "repro_requests_total", "Completed requests")
    requests.inc(report.n_completed)
    degraded = registry.counter(
        "repro_requests_degraded_total",
        "Requests answered with less than full corpus coverage")
    degraded.inc(report.degraded_requests)

    batches = registry.counter(
        "repro_batches_total", "Executed batch attempts by outcome")
    retries = registry.counter(
        "repro_retries_total", "Backoff-gated retry rounds")
    deaths = registry.counter(
        "repro_shard_deaths_total", "Shards declared dead")
    detected = registry.counter(
        "repro_integrity_detected_total",
        "Corrupted batches caught by ABFT verification")
    recomputes = registry.counter(
        "repro_integrity_recomputes_total",
        "Recompute attempts dispatched to heal detections")
    escapes = registry.counter(
        "repro_sdc_escapes_total",
        "Corrupted batches shipped undetected")
    # Registered only when protection is on: a registered counter
    # exposes HELP/TYPE headers even at zero, and ECC-off runs must
    # stay byte-identical to the pre-ECC registry.
    ecc_corrected = ecc_detected = ecc_miscorrected = None
    if cfg.ecc.enabled:
        ecc_corrected = registry.counter(
            "repro_ecc_corrected_total",
            "Codewords the ECC decoder corrected in place")
        ecc_detected = registry.counter(
            "repro_ecc_detected_total",
            "Codewords the ECC decoder flagged detected-uncorrectable")
        ecc_miscorrected = registry.counter(
            "repro_ecc_miscorrections_total",
            "Codewords the ECC decoder silently miscorrected")
    for batch in result.batches:
        batches.inc(shard=str(batch.shard_id), outcome=batch.outcome)
    for entry in result.fault_log:
        shard = str(entry.shard_id)
        if entry.kind == "backoff":
            retries.inc(shard=shard)
        elif entry.kind == "dead":
            deaths.inc(shard=shard)
        elif entry.kind == "corrupted":
            detected.inc(shard=shard)
        elif entry.kind == "recompute":
            recomputes.inc(shard=shard)
        elif entry.kind == "sdc":
            escapes.inc(shard=shard)
        elif entry.kind == "ecc_corrected" and ecc_corrected is not None:
            ecc_corrected.inc(shard=shard)
        elif entry.kind == "ecc_detected" and ecc_detected is not None:
            ecc_detected.inc(shard=shard)
        elif entry.kind == "ecc_miscorrect" \
                and ecc_miscorrected is not None:
            ecc_miscorrected.inc(shard=shard)

    critical = registry.counter(
        "repro_critical_path_seconds_total",
        "Critical-path seconds attributed per stage")
    for stage, seconds in sorted(stage_attribution(paths).items()):
        critical.inc(seconds, stage=stage)

    throughput = registry.gauge(
        "repro_throughput_qps", "Sustained queries per second")
    throughput.set(report.throughput_qps)
    makespan = registry.gauge(
        "repro_makespan_seconds", "Simulated makespan")
    makespan.set(report.makespan_s)
    attainment = registry.gauge(
        "repro_slo_attainment_ratio",
        "Fraction of requests at or under the TTI SLO")
    attainment.set(report.slo_attainment)
    utilization = registry.gauge(
        "repro_shard_utilization_ratio",
        "Per-shard busy fraction of the simulated horizon")
    for shard_id, value in enumerate(report.shard_utilization):
        utilization.set(value, shard=str(shard_id))
    coverage = registry.gauge(
        "repro_coverage_mean_ratio",
        "Mean fraction of corpus chunks scanned per request")
    coverage.set(report.mean_coverage)
    intact = registry.gauge(
        "repro_intact_coverage_mean_ratio",
        "Mean fraction of shard answers neither lost nor corrupted")
    intact.set(report.mean_intact_coverage)

    tti_hist = registry.histogram(
        "repro_tti_seconds", "Time-to-interactive distribution",
        DEFAULT_LATENCY_BOUNDS_S)
    retrieval_hist = registry.histogram(
        "repro_retrieval_seconds",
        "Arrival-to-merged-top-k latency distribution",
        DEFAULT_LATENCY_BOUNDS_S)
    queue_hist = registry.histogram(
        "repro_queue_wait_seconds",
        "Per-request queue-wait on the critical path",
        DEFAULT_LATENCY_BOUNDS_S)
    size_hist = registry.histogram(
        "repro_batch_size", "Executed batch sizes", BATCH_SIZE_BOUNDS)
    for trace in traces:
        tti_hist.observe(trace.tti_s)
        retrieval_hist.observe(trace.retrieval_latency_s + trace.merge_s)
    for path in paths:
        waited = path.stage_totals().get(SPAN_QUEUE_WAIT, 0.0)
        queue_hist.observe(waited)
    for batch in result.batches:
        size_hist.observe(batch.batch_size, shard=str(batch.shard_id))

    burn = registry.gauge(
        "repro_slo_burn_rate",
        f"SLO error-budget burn rate per window "
        f"(target {slo_target:g})")
    budget = 1.0 - slo_target
    windows = slo_burn_windows(
        [t.arrival_s for t in traces], [t.tti_s for t in traces],
        cfg.slo_s, report.makespan_s, n_burn_windows)
    for window in windows:
        burn.set(window.burn_rate(budget), window=str(window.index))
    return registry


# ----------------------------------------------------------------------
# Reconciliation against the obs TraceEvents
# ----------------------------------------------------------------------
@dataclass
class ReconcileReport:
    """Span-vs-TraceEvent cross-check results."""

    n_batch_spans: int = 0
    n_batch_matched: int = 0
    n_merge_spans: int = 0
    n_merge_events: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"
        return (f"reconciliation: {self.n_batch_matched}/"
                f"{self.n_batch_spans} batch spans matched trace events, "
                f"{self.n_merge_spans} merge spans vs "
                f"{self.n_merge_events} merge events -> {status}")


def reconcile_with_trace(traces: Sequence[QueryTrace], collector: Any,
                         clock_hz: float,
                         rel_tol: float = 1e-9) -> ReconcileReport:
    """Verify spans are an account of the emitted TraceEvents.

    Every ``batch`` span must coincide (start and duration, within
    ``rel_tol`` relative cycles) with a ``serve_batch`` event on the
    same shard, and the per-request merge spans must agree in number
    with the ``serve_merge`` events.  ``collector`` is a
    :class:`~repro.obs.collector.TraceCollector` (its ring must have
    retained the run -- use a capacity above the event count) or any
    iterable of :class:`~repro.obs.events.TraceEvent`.
    """
    report = ReconcileReport()
    batch_events: Dict[int, List[Tuple[float, float]]] = {}
    n_merge_events = 0
    events = collector.events if hasattr(collector, "events") \
        else collector
    for event in events:
        if event.name == "serve_batch":
            batch_events.setdefault(event.core_id, []).append(
                (event.start_cycle, event.total_cycles))
        elif event.name == "serve_merge":
            n_merge_events += 1
    report.n_merge_events = n_merge_events

    def close(a: float, b: float, scale: float) -> bool:
        return abs(a - b) <= rel_tol * max(1.0, abs(scale))

    for trace in traces:
        for shard_id, leg in sorted(trace.shard_spans.items()):
            for span in leg.children:
                if span.name != SPAN_BATCH:
                    continue
                report.n_batch_spans += 1
                start = span.start_s * clock_hz
                cycles = span.duration_s * clock_hz
                candidates = batch_events.get(shard_id, ())
                if any(close(start, s, s) and close(cycles, c, c)
                       for s, c in candidates):
                    report.n_batch_matched += 1
                else:
                    report.mismatches.append(
                        f"req {trace.req_id} shard {shard_id}: batch span "
                        f"at cycle {start:.0f} ({cycles:.0f} cycles) has "
                        f"no serve_batch event")
        report.n_merge_spans += sum(
            1 for child in trace.root.children
            if child.name == SPAN_MERGE)
    if n_merge_events and report.n_merge_spans != n_merge_events:
        report.mismatches.append(
            f"{report.n_merge_spans} merge spans vs "
            f"{n_merge_events} serve_merge events")
    return report


# ----------------------------------------------------------------------
# The run-level bundle
# ----------------------------------------------------------------------
@dataclass
class RunTelemetry:
    """Everything one telemetry-enabled serving run derived."""

    traces: Tuple[QueryTrace, ...]
    critical_paths: Tuple[CriticalPath, ...]
    registry: MetricsRegistry
    clock_hz: float

    def path_for(self, req_id: int) -> CriticalPath:
        for path in self.critical_paths:
            if path.req_id == req_id:
                return path
        raise KeyError(f"no critical path for request {req_id}")

    def trace_for(self, req_id: int) -> QueryTrace:
        for trace in self.traces:
            if trace.req_id == req_id:
                return trace
        raise KeyError(f"no query trace for request {req_id}")

    @property
    def n_spans(self) -> int:
        return sum(trace.n_spans() for trace in self.traces)


def build_run_telemetry(report: Any, result: Any, merge_s: float,
                        prefill_s: float,
                        stage_tables: Optional[Sequence[StageTable]],
                        clock_hz: float) -> RunTelemetry:
    """Derive the full telemetry bundle from one completed run."""
    traces = build_query_traces(result, merge_s, prefill_s, stage_tables)
    paths = tuple(critical_path(trace) for trace in traces)
    registry = build_serve_metrics(report, result, paths, traces)
    return RunTelemetry(
        traces=tuple(traces),
        critical_paths=paths,
        registry=registry,
        clock_hz=clock_hz,
    )
