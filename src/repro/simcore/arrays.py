"""Array-native schedule record for million-query runs.

The vectorized core keeps its hot path entirely in NumPy; materializing
one :class:`~repro.serve.scheduler.ExecutedBatch` and
:class:`~repro.serve.scheduler.RequestRecord` per event would dominate
the runtime at 1M queries.  :class:`ArraySchedule` is the columnar
answer: per-batch and per-request arrays plus the summary statistics
benchmarks and autoscalers actually consume.  ``to_schedule_result()``
materializes the full object form on demand (differential tests do
this; benchmarks never do).

Only the fault-free path is available in columnar form -- fault runs
carry per-event structure (logs, retries, deaths) that the object
materialization in :class:`~repro.simcore.vectorized.VectorizedScheduler`
handles directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..serve.scheduler import (
    BatchPolicy,
    ExecutedBatch,
    RequestRecord,
    ScheduleResult,
)

__all__ = ["ArraySchedule"]


@dataclass(frozen=True)
class ArraySchedule:
    """Columnar result of a fault-free vectorized run.

    Batch arrays are in global dispatch order (the scalar scheduler's
    event order); request arrays are indexed by position in the sorted
    request stream (ascending ``arrival_s`` then ``req_id``).
    """

    n_shards: int
    policy: BatchPolicy
    #: Request ids, sorted to match the per-request arrays.
    req_ids: np.ndarray
    #: Arrival time per request.
    arrival_s: np.ndarray
    #: Scatter-gather resolution time per request (max over shards).
    retrieval_done_s: np.ndarray
    #: Per-batch shard id, in global event order.
    batch_shard: np.ndarray
    #: Per-batch dispatch time.
    batch_dispatch_s: np.ndarray
    #: Per-batch device-occupied seconds.
    batch_service_s: np.ndarray
    #: Per-batch first request index (into the sorted stream) and size:
    #: each batch serves ``req_ids[start:start+size]`` on its shard.
    batch_start: np.ndarray
    batch_size: np.ndarray
    #: Per-batch oldest-member enqueue time.
    batch_head_enqueue_s: np.ndarray
    #: Per-shard total occupied seconds.
    busy_seconds: np.ndarray

    @property
    def n_requests(self) -> int:
        return int(self.req_ids.size)

    @property
    def n_batches(self) -> int:
        return int(self.batch_shard.size)

    @property
    def n_events(self) -> int:
        """Simulated events: one arrival fan-out per shard per request,
        plus one dispatch and one completion per batch -- the unit the
        events/sec benchmark rates."""
        return self.n_requests * self.n_shards + 2 * self.n_batches

    @property
    def horizon_s(self) -> float:
        """Last retrieval completion (the simulated makespan)."""
        return float(self.retrieval_done_s.max())

    def latency_s(self) -> np.ndarray:
        """Arrival -> scatter-gather resolution, per request."""
        return self.retrieval_done_s - self.arrival_s

    # ------------------------------------------------------------------
    def to_schedule_result(self) -> ScheduleResult:
        """Materialize the object form (bit-identical to the scalar run).

        Linear in requests + batches; used by the differential harness
        and anywhere downstream code wants ``ScheduleResult`` semantics.
        """
        n = self.n_requests
        shard_done = [dict() for _ in range(n)]  # type: list
        order = np.argsort(self.batch_start, kind="stable")
        done = self.batch_dispatch_s + self.batch_service_s
        for shard in range(self.n_shards):
            mask = self.batch_shard[order] == shard
            for b in order[mask]:
                start = int(self.batch_start[b])
                t = float(done[b])
                for idx in range(start, start + int(self.batch_size[b])):
                    shard_done[idx][shard] = t
        records = [
            RequestRecord(
                req_id=int(self.req_ids[idx]),
                arrival_s=float(self.arrival_s[idx]),
                shard_done_s=shard_done[idx],
                n_required=self.n_shards,
                retrieval_done_s=float(self.retrieval_done_s[idx]),
            )
            for idx in range(n)
        ]
        records.sort(key=lambda r: r.req_id)
        seq = np.zeros(self.n_shards, dtype=np.int64)
        batches = []
        for b in range(self.n_batches):
            shard = int(self.batch_shard[b])
            start = int(self.batch_start[b])
            size = int(self.batch_size[b])
            batches.append(ExecutedBatch(
                shard_id=shard,
                seq=int(seq[shard]),
                dispatch_s=float(self.batch_dispatch_s[b]),
                service_s=float(self.batch_service_s[b]),
                request_ids=tuple(
                    int(r) for r in self.req_ids[start:start + size]),
                head_enqueue_s=float(self.batch_head_enqueue_s[b]),
            ))
            seq[shard] += 1
        return ScheduleResult(
            n_shards=self.n_shards,
            policy=self.policy,
            batches=tuple(batches),
            records=tuple(records),
            busy_seconds=tuple(float(s) for s in self.busy_seconds),
        )
