"""Vectorized simulation core (``repro.simcore``).

A NumPy execution backend for the serving simulator that reproduces
the scalar :class:`~repro.serve.scheduler.DiscreteEventScheduler`
bit-identically (``tests/simcore`` is the proof) at two-plus orders of
magnitude more simulated queries per wall-second.  Select it with
``ServeConfig(engine="vectorized")`` or ``repro serve --engine``.
"""

from .arrays import ArraySchedule
from .engine import DEFAULT_ENGINE, ENGINES, UnknownEngineError, \
    validate_engine
from .vectorized import VectorizedScheduler

__all__ = [
    "ArraySchedule",
    "DEFAULT_ENGINE",
    "ENGINES",
    "UnknownEngineError",
    "validate_engine",
    "VectorizedScheduler",
]
