"""Vectorized execution core, bit-identical to the scalar event loop.

The scalar :class:`~repro.serve.scheduler.DiscreteEventScheduler` pays
Python-level heap traffic for every arrival, timer, wake, dispatch and
completion.  This core exploits the structure of the problem instead:

* **Shard timelines are independent between shard deaths.**  Every
  admitted request fans out to all live shards, so with no injector the
  per-shard schedule is a pure function of the arrival array and the
  batching policy.  Each shard is evaluated by a closed-form scan
  (:func:`_scan_fault_free`) whose saturated stretches -- runs of
  consecutive full batches launching the instant the device frees --
  collapse into NumPy ``cumsum`` chunks.
* **Global event order is reconstructible.**  The scalar heap orders
  ties by push sequence; pushes happen at known times (arrivals at
  setup in request order, timers/wakes/completions at derivable
  instants).  The fault path attaches a recursive *lineage token* to
  every emitted row (see ``_Token`` below): the token encodes the full
  chain of triggering events back to an arrival, and comparing tokens
  lexicographically reproduces the heap's push-sequence tie-breaking
  exactly.  The fault-free path keeps a flatter per-batch key
  ``(dispatch, tier, push_value, shard)`` suited to a NumPy lexsort;
  tier 0 is arrival-triggered work (push value = arrival index; setup
  pushes outrank every runtime push at equal times), tier 1 is
  everything else (push value = the time the triggering event was
  pushed).
* **Fault runs couple shards only through deaths.**  With an injector
  attached, shards are scanned optimistically to completion; the
  earliest death ``T*`` is committed, survivors are re-scanned up to
  the barrier ``T*``, failover (``on_death``) re-anchors the service
  model, and the next epoch resumes the survivors -- exactly the order
  the scalar loop interleaves death and takeover.

Cross-shard heap ties are resolved exactly in both paths.  The fault
path keys every row by its lineage token directly.  The fault-free
lexsort orders by the flat key and then *repairs* the rare groups it
cannot see (:meth:`VectorizedScheduler._repair_heap_ties`): two shards
dispatching at the same float instant with equal push values -- which
genuinely happens when different service-time sums round to the same
double -- are re-ordered by walking their lineage levels
(:func:`_lineage_levels`), reproducing the scalar heap's push-sequence
recursion.  Shards with identical service values scan in lockstep, so
their ties resolve to ascending shard id (the fan-out loop's order)
without any walk; the saturated million-query path never pays more
than the adjacency scan that proves no repair is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cmp_to_key
from typing import Callable, Dict, Iterator, List, Optional, Sequence, \
    Set, Tuple

import numpy as np

from ..ecc import ECCModel
from ..faults import FaultInjector, FaultLogEntry
from ..serve.scheduler import (
    OUTCOME_CORRUPTED,
    OUTCOME_INTERRUPTED,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    BatchPolicy,
    ExecutedBatch,
    RequestRecord,
    RetryPolicy,
    ScheduleResult,
)
from ..serve.workload import Request
from .arrays import ArraySchedule

__all__ = ["VectorizedScheduler"]

#: Chunk size for the saturated bulk path (bounds temporary arrays).
_BULK = 4096

#: Push-key tiers (see module docstring).
_TIER_ARRIVAL = 0
_TIER_RUNTIME = 1

#: Heap-lineage token: ``(fire_time, tier, sub)`` where ``sub`` is the
#: arrival index (tier 0) or the parent event's token (tier 1).  Two
#: scalar heap events at the same fire time pop in push-sequence
#: order; pushes happen in their parents' pop order, so comparing
#: lineage tokens lexicographically (and recursively) reproduces the
#: heap's exact interleaving.  Chains bottom out at arrivals, whose
#: setup pushes (tier 0) outrank every runtime push at equal times and
#: order by index; two events with fully identical chains were pushed
#: by one shared processing event, which iterates shards in ascending
#: order -- hence the shard id that follows the token in a row key.
_Token = Tuple[float, int, object]

#: Sort key of one emitted row: (lineage token, shard id, step seq).
_RowKey = Tuple[_Token, int, int]

#: Optional per-batch capture hook: ``(shard_id, batch_size) -> table``.
CaptureFn = Callable[[int, int], object]


def _searchsorted(a: np.ndarray, v: float, side: str) -> int:
    return int(np.searchsorted(a, v, side=side))


# ----------------------------------------------------------------------
# Fault-free per-shard scan
# ----------------------------------------------------------------------
def _scan_fault_free(
    arrivals: np.ndarray,
    max_batch: int,
    max_wait: float,
    svc: Callable[[int], float],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
           np.ndarray]:
    """One shard's full schedule: arrays of (dispatch, start, size,
    tier, push value, occupied seconds), in dispatch order.

    Bit-identical to the scalar loop on a single shard: dispatch times
    are produced by the same sequence of float additions, and the
    (tier, push value) pair encodes which heap event triggered each
    batch so the global merge can reproduce tie order.
    """
    n = int(arrivals.size)
    b = max_batch
    # Scalar emissions buffer + bulk chunks, concatenated at the end.
    disp_l: List[float] = []
    start_l: List[int] = []
    size_l: List[int] = []
    tier_l: List[int] = []
    val_l: List[float] = []
    chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    i = 0
    t_free = 0.0
    last_dispatch = 0.0
    has_prev = False

    def emit(at: float, start: int, size: int, tier: int, val: float
             ) -> None:
        disp_l.append(at)
        start_l.append(start)
        size_l.append(size)
        tier_l.append(tier)
        val_l.append(val)

    while i < n:
        head = float(arrivals[i])
        if has_prev and t_free >= head:
            # Device-free step with queued work: the scalar dispatches
            # here if the queue is full or the head is past deadline.
            cnt = _searchsorted(arrivals, t_free, "right") - i
            if cnt >= b or head + max_wait <= t_free:
                m = b if cnt >= b else cnt
                emit(t_free, i, m, _TIER_RUNTIME, last_dispatch)
                last_dispatch = t_free
                t_free = t_free + svc(m)
                i += m
                if m == b:
                    # Saturated run: consecutive full batches, each
                    # launching the instant the previous completes.
                    s_full = svc(b)
                    while n - i >= b:
                        k = min(_BULK, (n - i) // b)
                        launch = np.empty(k, dtype=np.float64)
                        launch[0] = t_free
                        if k > 1:
                            launch[1:] = s_full
                        np.cumsum(launch, out=launch)
                        fill = arrivals[i + b - 1:i + b - 1 + k * b:b]
                        ok = fill <= launch
                        mm = k if bool(ok.all()) else int(np.argmin(ok))
                        if mm == 0:
                            break
                        vals = np.empty(mm, dtype=np.float64)
                        vals[0] = last_dispatch
                        if mm > 1:
                            vals[1:] = launch[:mm - 1]
                        starts = np.arange(i, i + mm * b, b,
                                           dtype=np.int64)
                        chunks.append((launch[:mm].copy(), starts, vals))
                        # Flush position: scalar buffers stay aligned
                        # because chunks record their own offsets.
                        last_dispatch = float(launch[mm - 1])
                        t_free = last_dispatch + s_full
                        i += mm * b
                        if mm < k:
                            break
                continue
        # Idle dispatch: queue under-full when the device freed (or the
        # device idles ahead of the head arrival).
        deadline = head + max_wait
        jf = i + b - 1
        fill_t = float(arrivals[jf]) if jf < n else math.inf
        if fill_t < deadline:
            emit(fill_t, i, b, _TIER_ARRIVAL, float(jf))
            last_dispatch = fill_t
            t_free = fill_t + svc(b)
            i += b
        else:
            lo = _searchsorted(arrivals, deadline, "left")
            hi = _searchsorted(arrivals, deadline, "right")
            if hi > lo and hi > i:
                # An arrival lands exactly on the deadline: it pops
                # before the timer and triggers the dispatch itself.
                j0 = max(i, lo)
                m = min(b, j0 + 1 - i)
                emit(deadline, i, m, _TIER_ARRIVAL, float(j0))
            else:
                # Max-wait timer fires; it was armed at the first
                # eligible evaluation of this idle period.
                m = min(b, hi - i)
                armed = t_free if (has_prev and t_free >= head) else head
                emit(deadline, i, m, _TIER_RUNTIME, armed)
            last_dispatch = deadline
            t_free = deadline + svc(m)
            i += m
        has_prev = True

    # Assemble: scalar emissions first, then splice bulk chunks at
    # their recorded offsets.  Both are already in dispatch order per
    # shard; merge by start index (strictly increasing in both).
    disp = np.asarray(disp_l, dtype=np.float64)
    start = np.asarray(start_l, dtype=np.int64)
    size = np.asarray(size_l, dtype=np.int64)
    tier = np.asarray(tier_l, dtype=np.int64)
    val = np.asarray(val_l, dtype=np.float64)
    if chunks:
        c_disp = np.concatenate([c[0] for c in chunks])
        c_start = np.concatenate([c[1] for c in chunks])
        c_size = np.full(c_start.size, b, dtype=np.int64)
        c_tier = np.full(c_start.size, _TIER_RUNTIME, dtype=np.int64)
        c_val = np.concatenate([c[2] for c in chunks])
        order = np.argsort(
            np.concatenate([start, c_start]), kind="stable")
        disp = np.concatenate([disp, c_disp])[order]
        start = np.concatenate([start, c_start])[order]
        size = np.concatenate([size, c_size])[order]
        tier = np.concatenate([tier, c_tier])[order]
        val = np.concatenate([val, c_val])[order]
    occ = np.empty(disp.size, dtype=np.float64)
    for batch_size in np.unique(size):
        occ[size == batch_size] = svc(int(batch_size))
    return disp, start, size, tier, val, occ


def _lineage_levels(
    per: Tuple[np.ndarray, ...], k: int
) -> Iterator[Tuple[float, int, float]]:
    """Yield batch ``k``'s trigger lineage as (fire time, tier, arrival
    index) levels, outermost first.

    Each level's fire time is the *push instant* of the level above it
    (a completion is pushed while the previous batch dispatches; a
    timer is pushed by the evaluation that armed it), so comparing two
    rows' level streams lexicographically reproduces the scalar heap's
    push-sequence tie-breaking: the first differing level decides, and
    fully identical streams mean both events were pushed by one shared
    arrival's fan-out loop, which runs in ascending shard order.
    """
    disp, start, _size, tier, val, occ = per
    while True:
        t = float(disp[k])
        if int(tier[k]) == _TIER_ARRIVAL:
            yield (t, _TIER_ARRIVAL, float(val[k]))
            return
        yield (t, _TIER_RUNTIME, -1.0)
        v = float(val[k])
        if k > 0:
            prev_disp = float(disp[k - 1])
            if v == prev_disp:
                # Completion event, pushed while batch k-1 dispatched.
                k -= 1
                continue
            if v == prev_disp + float(occ[k - 1]):
                # Max-wait timer armed by batch k-1's completion.
                yield (v, _TIER_RUNTIME, -1.0)
                k -= 1
                continue
        # Max-wait timer armed by the head arrival itself.
        yield (v, _TIER_ARRIVAL, float(start[k]))
        return


# ----------------------------------------------------------------------
# Fault-path per-shard scan
# ----------------------------------------------------------------------
@dataclass
class _InFlight:
    """A dispatched batch whose completion has not been processed."""

    dispatch_s: float
    occupied_s: float
    outcome: str
    corrupted: bool
    recompute: bool
    multiplier: float
    seq: int
    attempt: int
    head_enqueue_s: float
    taken: List[Tuple[int, float]]  # (request index, enqueue time)
    token: _Token  # lineage token of the event that triggered dispatch


@dataclass
class _ShardState:
    """Resumable per-shard scan state (cloneable for tentative scans)."""

    i: int = 0  # next arrival index not yet taken into a batch
    retry: List[Tuple[int, float]] = field(default_factory=list)
    busy: Optional[_InFlight] = None
    t_free: float = 0.0
    last_token: Optional[_Token] = None  # trigger of the last dispatch
    has_prev: bool = False
    failures: int = 0
    blocked_until: float = 0.0
    last_corrupted: bool = False
    flip_cursor: int = 0
    busy_s: float = 0.0
    batch_seq: int = 0
    log_seq: int = 0
    dead: bool = False
    death_s: float = math.inf
    death_token: Optional[_Token] = None  # trigger that declared death

    def clone(self) -> "_ShardState":
        twin = _ShardState(**{name: getattr(self, name)
                              for name in self.__dataclass_fields__
                              if name not in ("retry", "busy")})
        twin.retry = list(self.retry)
        twin.busy = self.busy  # _InFlight is never mutated once built
        return twin


@dataclass
class _ShardOutput:
    """Rows one shard produced during one scan (keys included)."""

    # (lineage token, shard, step seq): key; then row payload.
    batches: List[Tuple[_RowKey, int, _InFlight]] = \
        field(default_factory=list)
    logs: List[Tuple[_RowKey, FaultLogEntry]] = field(default_factory=list)
    #: (request index, time) completions.
    done: List[Tuple[int, float]] = field(default_factory=list)
    #: Request indices answered with silent corruption.
    corrupt: List[int] = field(default_factory=list)
    #: (request index, time) failover losses.
    failed: List[Tuple[int, float]] = field(default_factory=list)
    #: Request indices enqueued at the instant of death (required).
    drained: List[int] = field(default_factory=list)


class _FaultScan:
    """Replays the scalar loop's fault semantics shard by shard."""

    def __init__(self, shard: int, arrivals: np.ndarray,
                 policy: BatchPolicy, retry: RetryPolicy,
                 injector: FaultInjector, protected: bool,
                 svc: Callable[[int], float],
                 ecc: Optional[ECCModel] = None):
        self.shard = shard
        self.arrivals = arrivals
        self.n = int(arrivals.size)
        self.b = policy.max_batch
        self.wait = policy.max_wait_s
        self.retry_policy = retry
        self.injector = injector
        self.protected = protected
        self.svc = svc
        self.ecc = ecc

    # -- idle chain ----------------------------------------------------
    def _next_idle_action(
        self, st: _ShardState
    ) -> Optional[Tuple[str, float, _Token, int, int]]:
        """Next dispatch or death for an idle shard.

        Returns ``(kind, t, token, size, consumed)`` where ``token`` is
        the lineage token of the triggering event and ``consumed``
        bounds the arrival indices that have popped by it -- or ``None``
        when no work remains.  Pure: the chain re-derives identically
        after an epoch barrier.
        """
        arr, n, b = self.arrivals, self.n, self.b
        r = len(st.retry)
        if r == 0 and st.i >= n:
            return None
        if st.has_prev and (
                r > 0 or (st.i < n and float(arr[st.i]) <= st.t_free)):
            # The completion event: pushed while its batch dispatched.
            t = st.t_free
            trig: _Token = (t, _TIER_RUNTIME, st.last_token)
            consumed = max(st.i, _searchsorted(arr, t, "right"))
        else:
            t = float(arr[st.i])
            trig = (t, _TIER_ARRIVAL, float(st.i))
            consumed = st.i + 1
        timer_token: Optional[_Token] = None
        while True:
            if self.injector.is_down(self.shard, t):
                up = self.injector.next_up(self.shard, t)
                if math.isinf(up):
                    return ("die", t, trig, 0, consumed)
                trig = (up, _TIER_RUNTIME, trig)  # wake armed now
                t = up
                consumed = max(consumed, _searchsorted(arr, t, "right"))
                continue
            if t < st.blocked_until:
                # The scalar loop re-evaluates on every arrival inside
                # the backoff window, and its down-check precedes the
                # blocked-check: an arrival during a *permanent* outage
                # declares death at the arrival instant, not at the
                # backoff wake.  (A finite outage observed mid-backoff
                # only arms a wake; the chain below already converges
                # to the same dispatch time.)
                o = self.injector.next_outage_start(self.shard, t)
                ja = max(consumed, _searchsorted(arr, max(t, o), "left"))
                while ja < n and float(arr[ja]) < st.blocked_until:
                    ta = float(arr[ja])
                    if self.injector.is_down(self.shard, ta) and \
                            math.isinf(self.injector.next_up(
                                self.shard, ta)):
                        return ("die", ta,
                                (ta, _TIER_ARRIVAL, float(ja)),
                                0, ja + 1)
                    ja += 1
                trig = (st.blocked_until, _TIER_RUNTIME, trig)  # wake
                t = st.blocked_until
                consumed = max(consumed, _searchsorted(arr, t, "right"))
                continue
            qlen = r + (consumed - st.i)
            if qlen >= b:
                return ("dispatch", t, trig, b, consumed)
            head_enq = st.retry[0][1] if r else float(arr[st.i])
            deadline = head_enq + self.wait
            if t >= deadline:
                return ("dispatch", t, trig, qlen, consumed)
            if timer_token is None:
                timer_token = trig  # first eligible-not-ready evaluation
            # Next evaluation: the queue-filling arrival, an arrival
            # exactly on the deadline, or the max-wait timer itself.
            jf = st.i + b - r - 1
            fill_t = float(arr[jf]) if jf < n else math.inf
            if fill_t < deadline:
                nxt, ntrig, ncons = fill_t, \
                    (fill_t, _TIER_ARRIVAL, float(jf)), jf + 1
            else:
                lo = _searchsorted(arr, deadline, "left")
                hi = _searchsorted(arr, deadline, "right")
                j0 = max(consumed, lo)
                if j0 < hi:
                    nxt, ntrig, ncons = deadline, \
                        (deadline, _TIER_ARRIVAL, float(j0)), j0 + 1
                else:
                    nxt, ntrig, ncons = deadline, \
                        (deadline, _TIER_RUNTIME, timer_token), \
                        max(consumed,
                            _searchsorted(arr, deadline, "right"))
            # An outage opening before that evaluation is observed by
            # the first arrival inside it (that arrival arms the wake).
            o = self.injector.next_outage_start(self.shard, t)
            if o < nxt:
                ja = max(consumed, _searchsorted(arr, o, "left"))
                if ja < n and float(arr[ja]) < nxt:
                    nxt, ntrig, ncons = float(arr[ja]), \
                        (float(arr[ja]), _TIER_ARRIVAL, float(ja)), ja + 1
            t, trig, consumed = nxt, ntrig, ncons
            continue

    # -- step handlers ---------------------------------------------------
    def _log(self, st: _ShardState, out: _ShardOutput,
             trig: _Token, entry: FaultLogEntry) -> None:
        out.logs.append(((trig, self.shard, st.log_seq), entry))
        st.log_seq += 1

    def _dispatch(self, st: _ShardState, out: _ShardOutput, now: float,
                  trig: _Token, size: int) -> None:
        k_r = min(len(st.retry), size)
        k_a = size - k_r
        taken = st.retry[:k_r] + [
            (idx, float(self.arrivals[idx]))
            for idx in range(st.i, st.i + k_a)]
        head_enqueue = taken[0][1]
        st.retry = st.retry[k_r:]
        st.i += k_a
        base = self.svc(size)
        inj = self.injector
        multiplier = inj.multiplier(self.shard, now)
        service = base * multiplier
        outcome = OUTCOME_OK
        fail_at = math.inf
        if self.retry_policy.timeout_s < service:
            fail_at = now + self.retry_policy.timeout_s
            outcome = OUTCOME_TIMEOUT
        next_outage = inj.next_outage_start(self.shard, now)
        if next_outage < min(now + service, fail_at):
            fail_at = next_outage
            outcome = OUTCOME_INTERRUPTED
        corrupted = False
        recompute = False
        if outcome == OUTCOME_OK and inj.has_bit_flips(self.shard):
            flips = inj.transient_flips(self.shard)
            cursor = st.flip_cursor
            while cursor < len(flips) and flips[cursor].t_s < now + service:
                cursor += 1
            consumed_flips = flips[st.flip_cursor:cursor]
            stuck = inj.stuck_active(self.shard, now + service)
            st.flip_cursor = cursor
            detected = False
            if self.ecc is None:
                corrupted = bool(consumed_flips) or bool(stuck)
            elif consumed_flips or stuck:
                # Mirrors the scalar scheduler's ECC classification:
                # corrected windows stay clean, decoder-flagged
                # uncorrectables fail even unprotected, miscorrections
                # ride the sdc path unless ABFT is also on.
                corrupted, detected, ecc_kinds = \
                    self.ecc.judge(consumed_flips, stuck)
                for ecc_kind in ecc_kinds:
                    self._log(st, out, trig, FaultLogEntry(
                        kind=ecc_kind, shard_id=self.shard,
                        t_s=now, attempt=st.failures))
            if corrupted and (self.protected or detected):
                outcome = OUTCOME_CORRUPTED
            if st.last_corrupted:
                st.last_corrupted = False
                recompute = True
                self._log(st, out, trig, FaultLogEntry(
                    kind="recompute", shard_id=self.shard, t_s=now,
                    duration_s=service, attempt=st.failures))
        occupied = service if outcome in (OUTCOME_OK, OUTCOME_CORRUPTED) \
            else fail_at - now
        st.busy = _InFlight(
            dispatch_s=now, occupied_s=occupied, outcome=outcome,
            corrupted=corrupted, recompute=recompute,
            multiplier=multiplier, seq=st.batch_seq,
            attempt=st.failures, head_enqueue_s=head_enqueue, taken=taken,
            token=trig)
        out.batches.append(((trig, self.shard, st.batch_seq),
                            size, st.busy))
        st.batch_seq += 1
        st.last_token = trig
        st.has_prev = True
        st.t_free = now + occupied

    def _die(self, st: _ShardState, out: _ShardOutput, now: float,
             trig: _Token, consumed: int) -> None:
        st.dead = True
        st.death_s = now
        st.death_token = trig
        self._log(st, out, trig, FaultLogEntry(
            kind="dead", shard_id=self.shard, t_s=now,
            attempt=st.failures))
        for idx, _enqueue in st.retry:
            out.failed.append((idx, now))
            out.drained.append(idx)
        for idx in range(st.i, consumed):
            out.failed.append((idx, now))
            out.drained.append(idx)
        st.retry = []
        st.i = max(st.i, consumed)

    def _complete(self, st: _ShardState, out: _ShardOutput) -> None:
        batch = st.busy
        assert batch is not None
        st.busy = None
        now = batch.dispatch_s + batch.occupied_s
        st.busy_s += batch.occupied_s
        # The completion event was pushed while its batch dispatched.
        trig: _Token = (now, _TIER_RUNTIME, batch.token)
        if batch.outcome == OUTCOME_OK:
            st.failures = 0
            if batch.corrupted:
                self._log(st, out, trig, FaultLogEntry(
                    kind="sdc", shard_id=self.shard,
                    t_s=batch.dispatch_s, duration_s=batch.occupied_s))
            for idx, _enqueue in batch.taken:
                out.done.append((idx, now))
                if batch.corrupted:
                    out.corrupt.append(idx)
            return
        st.failures += 1
        st.last_corrupted = batch.outcome == OUTCOME_CORRUPTED
        self._log(st, out, trig, FaultLogEntry(
            kind=batch.outcome, shard_id=self.shard,
            t_s=batch.dispatch_s, duration_s=batch.occupied_s,
            attempt=st.failures))
        st.retry = list(batch.taken) + st.retry
        if st.failures > self.retry_policy.max_retries:
            self._die(st, out, now, trig,
                      max(st.i, _searchsorted(self.arrivals, now, "right")))
            return
        backoff = self.retry_policy.backoff_s(st.failures)
        st.blocked_until = now + backoff
        self._log(st, out, trig, FaultLogEntry(
            kind="backoff", shard_id=self.shard, t_s=now,
            duration_s=backoff, attempt=st.failures))

    # -- driver ----------------------------------------------------------
    def advance(self, st: _ShardState, out: _ShardOutput,
                barrier: Optional[Tuple[_Token, int]]) -> None:
        """Process every event strictly before ``barrier``.

        ``barrier`` is a ``(lineage token, shard id)`` event key --
        normally another shard's death -- or ``None`` to run to
        completion.  Keyed (not timed) barriers matter because the
        scalar loop invokes ``on_death`` *mid-event*: work at exactly
        the death time but ordered before the death (e.g. lower shard
        ids inside the same arrival's fan-out loop) dispatches with the
        pre-failover service model.
        """
        while True:
            if st.dead:
                return
            if st.busy is not None:
                done_t = st.busy.dispatch_s + st.busy.occupied_s
                if barrier is not None and \
                        ((done_t, _TIER_RUNTIME, st.busy.token),
                         self.shard) >= barrier:
                    return
                self._complete(st, out)
                continue
            action = self._next_idle_action(st)
            if action is None:
                return
            kind, t, trig, size, consumed = action
            if barrier is not None and (trig, self.shard) >= barrier:
                return
            if kind == "die":
                self._die(st, out, t, trig, consumed)
            else:
                self._dispatch(st, out, t, trig, size)


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
class VectorizedScheduler:
    """Drop-in vectorized replacement for ``DiscreteEventScheduler``.

    Same constructor, same :meth:`run` contract, bit-identical
    :class:`~repro.serve.scheduler.ScheduleResult` (the differential
    suite in ``tests/simcore`` is the proof); plus :meth:`run_arrays`,
    the allocation-free columnar path for million-query fault-free runs.

    ``capture`` (an optional ``(shard_id, batch_size) -> table`` hook
    with per-epoch memoization semantics) replaces the scalar path's
    service-time wrapper for telemetry stage capture; captured tables
    land in :attr:`captured_tables` in global batch order.
    """

    def __init__(self, n_shards: int, policy: BatchPolicy,
                 service_time: Callable[[int, int], float],
                 injector: Optional[FaultInjector] = None,
                 retry: Optional[RetryPolicy] = None,
                 on_death: Optional[Callable[[int, float], None]] = None,
                 protected: bool = False,
                 ecc: Optional[ECCModel] = None):
        if not isinstance(n_shards, (int, np.integer)) \
                or isinstance(n_shards, bool) or n_shards < 1:
            raise ValueError(
                f"shards must be an integer >= 1, got {n_shards!r}")
        self.n_shards = int(n_shards)
        self.policy = policy
        self.service_time = service_time
        self.injector = injector
        self.retry = retry if retry is not None else RetryPolicy()
        self.on_death = on_death
        self.protected = bool(protected)
        self.ecc = ecc
        if injector is not None and injector.n_shards != self.n_shards:
            raise ValueError(
                f"injector covers {injector.n_shards} shard(s), "
                f"scheduler has {self.n_shards}")
        #: Set before run() to capture one stage table per batch.
        self.capture: Optional[CaptureFn] = None
        #: Tables captured by the last run, in global batch order.
        self.captured_tables: List[object] = []
        self._svc_cache: Dict[Tuple[int, int], float] = {}

    # -- service memo ------------------------------------------------
    def _svc(self, shard: int, size: int) -> float:
        key = (shard, size)
        cached = self._svc_cache.get(key)
        if cached is None:
            cached = float(self.service_time(shard, size))
            if not np.isfinite(cached) or cached <= 0:
                raise ValueError(
                    f"service_time must be positive and finite, got "
                    f"{cached!r} for shard {shard} batch {size}")
            self._svc_cache[key] = cached
        return cached

    # -- public API ----------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ScheduleResult:
        """Run to completion; bit-identical to the scalar scheduler."""
        if not requests:
            raise ValueError("at least one request is required")
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        seen: Set[int] = set()
        for request in ordered:
            if request.req_id in seen:
                raise ValueError(f"duplicate req_id {request.req_id}")
            seen.add(request.req_id)
        arrivals = np.asarray([r.arrival_s for r in ordered],
                              dtype=np.float64)
        req_ids = np.asarray([r.req_id for r in ordered], dtype=np.int64)
        self.captured_tables = []
        self._svc_cache.clear()
        if self.injector is None:
            schedule = self._run_fault_free(arrivals, req_ids)
            result = schedule.to_schedule_result()
            if self.capture is not None:
                memo: Dict[Tuple[int, int], object] = {}
                for batch in result.batches:
                    key = (batch.shard_id, batch.batch_size)
                    table = memo.get(key)
                    if table is None:
                        table = memo[key] = self.capture(*key)
                    self.captured_tables.append(table)
            return result
        return self._run_fault(arrivals, req_ids)

    def run_arrays(self, arrival_s: np.ndarray,
                   req_ids: Optional[np.ndarray] = None) -> ArraySchedule:
        """Columnar fast path over a sorted arrival-time array.

        Fault-free only (an attached injector needs the event-faithful
        path -- call :meth:`run`).  ``arrival_s`` must be sorted
        ascending and non-negative; ``req_ids`` defaults to positional.
        """
        if self.injector is not None:
            raise ValueError(
                "run_arrays supports fault-free runs only; "
                "use run() when a FaultInjector is attached")
        arrivals = np.ascontiguousarray(arrival_s, dtype=np.float64)
        if arrivals.ndim != 1 or arrivals.size == 0:
            raise ValueError("arrival_s must be a non-empty 1-d array")
        if float(arrivals[0]) < 0 or bool(np.any(np.diff(arrivals) < 0)):
            raise ValueError(
                "arrival times must be sorted ascending and non-negative")
        if req_ids is None:
            req_ids = np.arange(arrivals.size, dtype=np.int64)
        self._svc_cache.clear()
        return self._run_fault_free(arrivals, req_ids)

    # -- fault-free path -------------------------------------------------
    def _run_fault_free(self, arrivals: np.ndarray,
                        req_ids: np.ndarray) -> ArraySchedule:
        n = int(arrivals.size)
        per_shard = [
            _scan_fault_free(arrivals, self.policy.max_batch,
                             self.policy.max_wait_s,
                             lambda m, s=shard: self._svc(s, m))
            for shard in range(self.n_shards)]
        retrieval_done: Optional[np.ndarray] = None
        busy = np.empty(self.n_shards, dtype=np.float64)
        for shard, (disp, start, size, _tier, _val, occ) in \
                enumerate(per_shard):
            complete = disp + occ
            per_req = np.repeat(complete, size)
            if retrieval_done is None:
                retrieval_done = per_req
            else:
                np.maximum(retrieval_done, per_req, out=retrieval_done)
            # Sequential accumulation, matching the scalar += order.
            busy[shard] = np.cumsum(occ)[-1] if occ.size else 0.0
        assert retrieval_done is not None
        shard_col = np.concatenate([
            np.full(per_shard[s][0].size, s, dtype=np.int64)
            for s in range(self.n_shards)])
        disp_col = np.concatenate([p[0] for p in per_shard])
        start_col = np.concatenate([p[1] for p in per_shard])
        size_col = np.concatenate([p[2] for p in per_shard])
        tier_col = np.concatenate([p[3] for p in per_shard])
        val_col = np.concatenate([p[4] for p in per_shard])
        occ_col = np.concatenate([p[5] for p in per_shard])
        order = np.lexsort((shard_col, val_col, tier_col, disp_col))
        order = self._repair_heap_ties(
            order, per_shard, shard_col, disp_col, tier_col, val_col)
        start_sorted = start_col[order]
        return ArraySchedule(
            n_shards=self.n_shards,
            policy=self.policy,
            req_ids=req_ids,
            arrival_s=arrivals,
            retrieval_done_s=retrieval_done,
            batch_shard=shard_col[order],
            batch_dispatch_s=disp_col[order],
            batch_service_s=occ_col[order],
            batch_start=start_sorted,
            batch_size=size_col[order],
            batch_head_enqueue_s=arrivals[start_sorted],
            busy_seconds=busy,
        )

    def _repair_heap_ties(
            self, order: np.ndarray,
            per_shard: List[Tuple[np.ndarray, ...]],
            shard_col: np.ndarray, disp_col: np.ndarray,
            tier_col: np.ndarray, val_col: np.ndarray) -> np.ndarray:
        """Re-order cross-shard heap ties the flat lexsort cannot see.

        Two shards dispatching at the same float instant with equal
        (tier, push value) tie under the lexsort's shard-id fallback,
        but the scalar heap resolves them by push sequence, which
        recurses into the triggering events' own order.  Shards with
        identical service values produce identical scans, for which the
        shard-id fallback is already exact (identical lineages bottom
        at a shared arrival whose fan-out loop runs in ascending shard
        order), so only ties spanning *different* scan histories --
        exact float collisions between unequal timelines -- are walked
        with :func:`_lineage_levels` and re-sorted.
        """
        # Shard equivalence classes: equal service values over every
        # batch size any shard consumed imply bit-identical scans (the
        # scan is a deterministic function of the values it reads).
        # One class covers every shard in the common homogeneous case,
        # where all ties are already exact -- no row scan needed.
        sizes = sorted({size for _shard, size in self._svc_cache})
        sig_to_cls: Dict[Tuple[float, ...], int] = {}
        cls = np.empty(self.n_shards, dtype=np.int64)
        for shard in range(self.n_shards):
            sig = tuple(self._svc(shard, m) for m in sizes)
            cls[shard] = sig_to_cls.setdefault(sig, len(sig_to_cls))
        if len(sig_to_cls) == 1:
            return order
        d = disp_col[order]
        t = tier_col[order]
        v = val_col[order]
        same = (d[1:] == d[:-1]) & (t[1:] == t[:-1]) \
            & (v[1:] == v[:-1]) & (t[1:] == _TIER_RUNTIME)
        if not bool(same.any()):
            return order
        shard_sorted = shard_col[order]
        c = cls[shard_sorted]
        flagged = same & (c[1:] != c[:-1])
        if not bool(flagged.any()):
            return order
        # Positions of each row's batch within its own shard's arrays.
        k_col = np.concatenate([
            np.arange(p[0].size, dtype=np.int64)
            for p in per_shard])[order]
        # Expand flagged adjacent pairs to their full equal-key runs.
        bounds = np.concatenate(
            ([0], np.flatnonzero(~same) + 1, [order.size]))
        run_of = np.searchsorted(bounds, np.flatnonzero(flagged),
                                 "right") - 1
        order = order.copy()
        for run in np.unique(run_of):
            i0, i1 = int(bounds[run]), int(bounds[run + 1])
            rows = sorted(
                range(i0, i1),
                key=cmp_to_key(lambda ra, rb: self._cmp_heap_tie(
                    per_shard, cls,
                    int(shard_sorted[ra]), int(k_col[ra]),
                    int(shard_sorted[rb]), int(k_col[rb]))))
            order[i0:i1] = order[np.asarray(rows)]
        return order

    @staticmethod
    def _cmp_heap_tie(per_shard: List[Tuple[np.ndarray, ...]],
                      cls: np.ndarray, sa: int, ka: int,
                      sb: int, kb: int) -> int:
        if cls[sa] == cls[sb]:
            return -1 if sa < sb else 1
        for la, lb in zip(_lineage_levels(per_shard[sa], ka),
                          _lineage_levels(per_shard[sb], kb)):
            if la != lb:
                return -1 if la < lb else 1
        return -1 if sa < sb else 1

    # -- fault path --------------------------------------------------
    def _run_fault(self, arrivals: np.ndarray,
                   req_ids: np.ndarray) -> ScheduleResult:
        assert self.injector is not None
        states = [_ShardState() for _ in range(self.n_shards)]
        scans = [
            _FaultScan(shard, arrivals, self.policy, self.retry,
                       self.injector, self.protected,
                       lambda m, s=shard: self._svc(s, m),
                       ecc=self.ecc)
            for shard in range(self.n_shards)]
        committed = _ShardOutput()
        tables: List[Tuple[_RowKey, object]] = []
        capture_memo: Dict[Tuple[int, int], object] = {}
        drained_by_shard: Dict[int, Set[int]] = {}
        death_order: List[Tuple[float, int]] = []
        live = list(range(self.n_shards))

        def commit(out: _ShardOutput) -> None:
            committed.batches.extend(out.batches)
            committed.logs.extend(out.logs)
            committed.done.extend(out.done)
            committed.corrupt.extend(out.corrupt)
            committed.failed.extend(out.failed)
            if self.capture is not None:
                for _key, size, flight in out.batches:
                    shard = _key[1]
                    memo_key = (shard, size)
                    table = capture_memo.get(memo_key)
                    if table is None:
                        table = capture_memo[memo_key] = \
                            self.capture(shard, size)
                    # Order fixed later; pair with the batch key.
                    tables.append((_key, table))

        while live:
            self._svc_cache.clear()
            capture_memo.clear()
            # Optimistic full scans on cloned state.
            tentative: Dict[int, Tuple[_ShardState, _ShardOutput]] = {}
            dying: Optional[Tuple[Tuple[_Token, int], float]] = None
            for shard in live:
                twin = states[shard].clone()
                out = _ShardOutput()
                scans[shard].advance(twin, out, None)
                tentative[shard] = (twin, out)
                if twin.dead:
                    assert twin.death_token is not None
                    dkey = (twin.death_token, shard)
                    if dying is None or dkey < dying[0]:
                        dying = (dkey, twin.death_s)
            if dying is None:
                for shard in live:
                    states[shard], out = tentative[shard]
                    commit(out)
                break
            barrier, death_s = dying
            dead_shard = barrier[1]
            # The heap-order-earliest death is exact: nothing ordered
            # before it can be perturbed by it.  Commit the dead shard,
            # replay survivors up to the death's event key, then apply
            # failover and re-anchor -- matching the scalar loop, which
            # calls ``on_death`` mid-event.
            states[dead_shard], out = tentative[dead_shard]
            commit(out)
            drained_by_shard[dead_shard] = {
                idx for idx, _t in out.failed}
            death_order.append((death_s, dead_shard))
            for shard in live:
                if shard == dead_shard:
                    continue
                out = _ShardOutput()
                scans[shard].advance(states[shard], out, barrier)
                commit(out)
            live.remove(dead_shard)
            if self.on_death is not None:
                self.on_death(dead_shard, death_s)

        return self._materialize(arrivals, req_ids, states, committed,
                                 drained_by_shard, death_order, tables)

    def _materialize(self, arrivals: np.ndarray, req_ids: np.ndarray,
                     states: List[_ShardState], out: _ShardOutput,
                     drained_by_shard: Dict[int, Set[int]],
                     death_order: List[Tuple[float, int]],
                     tables: List[Tuple[_RowKey, object]]
                     ) -> ScheduleResult:
        n = int(arrivals.size)
        # Per-request assembly.
        shard_done: List[Dict[int, float]] = [dict() for _ in range(n)]
        failed: List[Set[int]] = [set() for _ in range(n)]
        corrupted: List[Set[int]] = [set() for _ in range(n)]
        resolve: List[float] = [-math.inf] * n
        out.batches.sort(key=lambda row: row[0])
        for key, _size, flight in out.batches:
            shard = key[1]
            if flight.outcome == OUTCOME_OK:
                done_t = flight.dispatch_s + flight.occupied_s
                for idx, _enq in flight.taken:
                    shard_done[idx][shard] = done_t
                    if done_t > resolve[idx]:
                        resolve[idx] = done_t
                    if flight.corrupted:
                        corrupted[idx].add(shard)
        for idx, t in out.failed:
            if t > resolve[idx]:
                resolve[idx] = t
        for death_t, shard in death_order:
            for idx in drained_by_shard[shard]:
                failed[idx].add(shard)
        # Fan-out width: shards live when the arrival popped.
        death_s = np.full(self.n_shards, math.inf, dtype=np.float64)
        for death_t, shard in death_order:
            death_s[shard] = death_t
        n_required = np.zeros(n, dtype=np.int64)
        for shard in range(self.n_shards):
            if math.isinf(death_s[shard]):
                n_required += 1
            else:
                n_required += arrivals < death_s[shard]
                for idx in drained_by_shard.get(shard, ()):
                    if not (arrivals[idx] < death_s[shard]):
                        n_required[idx] += 1
        records = []
        for idx in range(n):
            required = int(n_required[idx])
            records.append(RequestRecord(
                req_id=int(req_ids[idx]),
                arrival_s=float(arrivals[idx]),
                shard_done_s=shard_done[idx],
                failed_shards=failed[idx],
                corrupted_shards=corrupted[idx],
                n_required=required,
                retrieval_done_s=float(arrivals[idx]) if required == 0
                else resolve[idx],
            ))
        records.sort(key=lambda r: r.req_id)
        batches = tuple(
            ExecutedBatch(
                shard_id=key[1], seq=flight.seq,
                dispatch_s=flight.dispatch_s,
                service_s=flight.occupied_s,
                request_ids=tuple(int(req_ids[idx])
                                  for idx, _enq in flight.taken),
                head_enqueue_s=flight.head_enqueue_s,
                attempt=flight.attempt, multiplier=flight.multiplier,
                outcome=flight.outcome, corrupted=flight.corrupted,
                recompute=flight.recompute)
            for key, _size, flight in out.batches)
        out.logs.sort(key=lambda row: row[0])
        if self.capture is not None:
            tables.sort(key=lambda pair: pair[0])
            self.captured_tables = [table for _key, table in tables]
        death_times = {shard: t for t, shard in death_order}
        return ScheduleResult(
            n_shards=self.n_shards,
            policy=self.policy,
            batches=batches,
            records=tuple(records),
            busy_seconds=tuple(st.busy_s for st in states),
            fault_log=tuple(entry for _key, entry in out.logs),
            death_times=death_times,
        )
