"""Vectorized-engine helpers for the elastic (autoscaling) event loop.

The elastic loop is inherently sequential -- the burn-rate controller's
feedback at every tick depends on everything admitted so far -- so the
vectorized engine cannot batch-evaluate whole shard timelines the way
the static :class:`~repro.simcore.vectorized.VectorizedScheduler` does.
What it *can* remove is the per-event bookkeeping that dominates large
elastic runs:

* arrivals are pointer-merged against the event heap instead of being
  heap-pushed at setup (``O(n)`` instead of ``O(n log n)``, and the
  heap stays small enough to keep every dynamic pop cheap);
* the per-tick "how many admitted requests are already past the SLO"
  scan -- ``O(open requests)`` per control tick in the scalar loop --
  becomes the :class:`OverdueTracker` below, amortized ``O(1)`` per
  admission.

Both shortcuts are *exact*: they replay the identical comparisons on
the identical floats the scalar loop evaluates, so the differential
suite in ``tests/scale`` proves elastic runs bit-identical between the
two engines across plain, fault, and integrity variants.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["OverdueTracker"]


class OverdueTracker:
    """Amortized-O(1) per-class count of admitted requests past the SLO.

    The scalar elastic loop answers "how many unresolved requests are
    older than the SLO right now?" with a full scan of the record table
    at every control tick.  This tracker answers the same question from
    a monotone cursor: admissions arrive in time order (they are event
    -loop timestamps), control ticks query at non-decreasing ``now``,
    and ``now - arrival > slo`` is monotone in ``now`` for a fixed
    arrival -- so once a request crosses the threshold it stays crossed
    until it resolves, and the cursor never backs up.

    Exactness matters more than speed: :meth:`counts` applies the
    *identical* float comparison (``now_s - arrival_s > slo_s``) the
    scalar scan applies, in admission order, so both engines count the
    same requests at every tick.
    """

    __slots__ = ("_slo_s", "_n_classes", "_arrivals", "_classes",
                 "_resolved", "_pos", "_cursor", "_counts")

    def __init__(self, slo_s: float, n_classes: int):
        if slo_s <= 0:
            raise ValueError(f"slo_s must be positive, got {slo_s!r}")
        if n_classes < 1:
            raise ValueError(
                f"n_classes must be >= 1, got {n_classes!r}")
        self._slo_s = slo_s
        self._n_classes = n_classes
        self._arrivals: List[float] = []
        self._classes: List[int] = []
        self._resolved: List[bool] = []
        self._pos: Dict[int, int] = {}
        self._cursor = 0
        self._counts = [0] * n_classes

    def admit(self, req_id: int, arrival_s: float, class_idx: int) -> None:
        """Record one admitted request (call in admission order)."""
        self._pos[req_id] = len(self._arrivals)
        self._arrivals.append(arrival_s)
        self._classes.append(class_idx)
        self._resolved.append(False)

    def resolve(self, req_id: int) -> None:
        """Mark one request resolved (idempotent for unknown ids)."""
        index = self._pos.pop(req_id, None)
        if index is None:
            return
        self._resolved[index] = True
        if index < self._cursor:
            # Already counted overdue; it no longer is.
            self._counts[self._classes[index]] -= 1

    def counts(self, now_s: float) -> List[int]:
        """Per-class overdue counts at ``now_s`` (non-decreasing calls)."""
        arrivals = self._arrivals
        cursor = self._cursor
        end = len(arrivals)
        slo = self._slo_s
        while cursor < end and now_s - arrivals[cursor] > slo:
            if not self._resolved[cursor]:
                self._counts[self._classes[cursor]] += 1
            cursor += 1
        self._cursor = cursor
        return list(self._counts)

    def snapshot(self) -> Tuple[int, ...]:
        """The counts as of the last :meth:`counts` call (for tests)."""
        return tuple(self._counts)
