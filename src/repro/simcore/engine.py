"""Engine selection for the serving simulator.

Two execution backends produce a :class:`~repro.serve.scheduler.ScheduleResult`:

* ``"scalar"`` -- the reference :class:`~repro.serve.scheduler.DiscreteEventScheduler`,
  a plain binary-heap event loop.  Slow, obviously correct, and the
  bit-exactness oracle for everything else.
* ``"vectorized"`` -- :class:`~repro.simcore.vectorized.VectorizedScheduler`,
  which batch-evaluates independent per-shard timelines with NumPy and
  reconstructs the global event order from push keys.  Validated
  bit-identical against the scalar core by ``tests/simcore``.

This module owns only the names and the validation so that config and
CLI layers can import it without pulling in the heavy backends.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["ENGINES", "DEFAULT_ENGINE", "UnknownEngineError",
           "validate_engine"]

#: Supported simulation engines, in documentation order.
ENGINES: Tuple[str, ...] = ("scalar", "vectorized")

#: Engine used when a config does not name one.
DEFAULT_ENGINE = "scalar"


class UnknownEngineError(ValueError):
    """Raised when a config names a simulation engine that doesn't exist.

    A ``ValueError`` subclass so existing ``ServeConfig`` validation
    handling keeps working, but typed so callers (and tests) can catch
    the engine case specifically.
    """

    def __init__(self, engine: object):
        self.engine = engine
        choices = ", ".join(repr(name) for name in ENGINES)
        super().__init__(
            f"unknown simulation engine {engine!r}; choose one of "
            f"{choices} (\"scalar\" is the reference event loop, "
            f"\"vectorized\" is the NumPy core validated bit-identical "
            f"against it)")


def validate_engine(engine: object) -> str:
    """Return ``engine`` if it names a known backend, else raise.

    Raises :class:`UnknownEngineError` -- a ``ValueError`` -- for
    anything that is not exactly one of :data:`ENGINES` (including
    non-string values and case variants, which would otherwise fail
    deep inside scheduler construction).
    """
    if not isinstance(engine, str) or engine not in ENGINES:
        raise UnknownEngineError(engine)
    return engine
