"""Native APU data types (paper Section 2.1.1).

The APU natively supports 16-bit signed and unsigned integers, IEEE
binary16 floating point, and a custom GSI floating-point format with a
6-bit exponent and a 9-bit mantissa (``gf16``).  This module provides
bit-exact conversions between those formats and NumPy arrays so the
functional simulator can execute real programs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GF16_EXP_BITS",
    "GF16_MAN_BITS",
    "GF16_BIAS",
    "u16_to_s16",
    "s16_to_u16",
    "f16_to_bits",
    "bits_to_f16",
    "float_to_gf16",
    "gf16_to_float",
    "pack_bits_u16",
    "unpack_bits_u16",
]

#: GSI float16: 1 sign bit, 6 exponent bits, 9 mantissa bits.
GF16_EXP_BITS = 6
GF16_MAN_BITS = 9
GF16_BIAS = (1 << (GF16_EXP_BITS - 1)) - 1  # 31


def u16_to_s16(values: np.ndarray) -> np.ndarray:
    """Reinterpret uint16 bit patterns as int16 (two's complement)."""
    return np.asarray(values, dtype=np.uint16).view(np.int16)


def s16_to_u16(values: np.ndarray) -> np.ndarray:
    """Reinterpret int16 values as their uint16 bit patterns."""
    return np.asarray(values, dtype=np.int16).view(np.uint16)


def f16_to_bits(values: np.ndarray) -> np.ndarray:
    """IEEE binary16 values -> uint16 bit patterns."""
    return np.asarray(values, dtype=np.float16).view(np.uint16)


def bits_to_f16(bits: np.ndarray) -> np.ndarray:
    """uint16 bit patterns -> IEEE binary16 values."""
    return np.asarray(bits, dtype=np.uint16).view(np.float16)


def float_to_gf16(values: np.ndarray) -> np.ndarray:
    """Encode float values into the GSI gf16 format (uint16 bit patterns).

    gf16 trades exponent range for mantissa precision relative to IEEE
    binary16 (6-bit exponent, bias 31, 9-bit mantissa).  Encoding is
    round-to-nearest on the mantissa; values outside the representable
    range saturate to the largest finite magnitude, and subnormals
    flush to zero (matching the device's flush-to-zero behaviour).
    """
    x = np.asarray(values, dtype=np.float64)
    sign = (x < 0) | ((x == 0) & (np.signbit(x)))
    mag = np.abs(x)

    out = np.zeros(x.shape, dtype=np.uint16)
    nonzero = mag > 0

    with np.errstate(divide="ignore"):
        exp = np.floor(np.log2(mag, where=nonzero, out=np.zeros_like(mag)))
    biased = exp + GF16_BIAS

    max_biased = (1 << GF16_EXP_BITS) - 1
    # Flush subnormals (biased <= 0) to zero; saturate overflow.
    normal = nonzero & (biased > 0) & (biased <= max_biased)
    overflow = nonzero & (biased > max_biased)

    frac = np.zeros_like(mag)
    np.divide(mag, np.exp2(exp), out=frac, where=normal)
    mantissa = np.rint((frac - 1.0) * (1 << GF16_MAN_BITS)).astype(np.int64)
    # Mantissa rounding can carry out into the exponent.
    carry = mantissa >= (1 << GF16_MAN_BITS)
    mantissa = np.where(carry, 0, mantissa)
    biased = biased + carry.astype(np.float64)
    overflow |= normal & (biased > max_biased)
    normal &= biased <= max_biased

    encoded = (
        (biased.astype(np.int64) << GF16_MAN_BITS) | mantissa
    ).astype(np.uint16)
    out = np.where(normal, encoded, out)
    max_finite = np.uint16((max_biased << GF16_MAN_BITS) | ((1 << GF16_MAN_BITS) - 1))
    out = np.where(overflow, max_finite, out)
    out = out | (sign.astype(np.uint16) << 15)
    return out.astype(np.uint16)


def gf16_to_float(bits: np.ndarray) -> np.ndarray:
    """Decode GSI gf16 bit patterns into float64 values."""
    b = np.asarray(bits, dtype=np.uint16).astype(np.int64)
    sign = np.where((b >> 15) & 1, -1.0, 1.0)
    biased = (b >> GF16_MAN_BITS) & ((1 << GF16_EXP_BITS) - 1)
    mantissa = b & ((1 << GF16_MAN_BITS) - 1)
    value = np.where(
        biased == 0,
        0.0,  # flush-to-zero format: no subnormals
        (1.0 + mantissa / (1 << GF16_MAN_BITS)) * np.exp2(biased - GF16_BIAS),
    )
    return sign * value


def pack_bits_u16(bits: np.ndarray) -> np.ndarray:
    """Pack a binary {0,1} array into uint16 words along its last axis.

    The last axis length must be a multiple of 16.  Bit ``i`` of each
    word holds element ``16*w + i`` (little-endian bit order), matching
    the K-axis bit packing the binary-matmul workloads use.
    """
    arr = np.asarray(bits)
    if arr.shape[-1] % 16 != 0:
        raise ValueError("bit-pack length must be a multiple of 16")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("bit-pack input must be binary")
    shaped = arr.reshape(arr.shape[:-1] + (arr.shape[-1] // 16, 16)).astype(np.uint16)
    weights = (1 << np.arange(16, dtype=np.uint16)).astype(np.uint16)
    return (shaped * weights).sum(axis=-1).astype(np.uint16)


def unpack_bits_u16(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bits_u16`."""
    arr = np.asarray(words, dtype=np.uint16)
    shifts = np.arange(16, dtype=np.uint16)
    bits = (arr[..., None] >> shifts) & 1
    return bits.reshape(arr.shape[:-1] + (arr.shape[-1] * 16,)).astype(np.uint8)
