"""Bit-serial arithmetic built from Table 2 micro-operations.

GVML's vector instructions are implemented on the device as microcode
over the bit-processor state (Section 2.2.2).  This module reproduces
that layer for a representative set of operations -- boolean logic,
immediate broadcast, ripple-carry add/subtract, comparisons, and
bit-slice shifts -- exercising the RL / GHL / GVL / neighbor-read
mechanisms of :class:`repro.apu.bitproc.BitProcessorArray`.

The point of this layer is functional fidelity (tests validate each
routine against NumPy semantics); cycle costs of the corresponding
vector instructions come from Table 5 and are charged by
:mod:`repro.apu.gvml`.
"""

from __future__ import annotations

from .bitproc import BitProcessorArray, MicrocodeError

__all__ = [
    "op_and",
    "op_or",
    "op_xor",
    "op_not",
    "broadcast_imm",
    "add_u16",
    "sub_u16",
    "mul_u16",
    "broadcast_bit_to_all_slices",
    "eq_16",
    "ge_u16",
    "gt_u16",
    "shift_left_bits",
    "shift_right_bits",
]


def _full_mask(bank: BitProcessorArray) -> int:
    return (1 << bank.element_bits) - 1


def op_and(bank: BitProcessorArray, dst: int, a: int, b: int) -> None:
    """``dst = a & b`` -- bit-parallel across all slices in one read."""
    bank.rl_read_and(a, b, _full_mask(bank))
    bank.vr_write(dst, _full_mask(bank))


def op_or(bank: BitProcessorArray, dst: int, a: int, b: int) -> None:
    """``dst = a | b``."""
    mask = _full_mask(bank)
    bank.rl_read(a, mask)
    bank.rl_op_vr("or", b, mask)
    bank.vr_write(dst, mask)


def op_xor(bank: BitProcessorArray, dst: int, a: int, b: int) -> None:
    """``dst = a ^ b``."""
    mask = _full_mask(bank)
    bank.rl_read(a, mask)
    bank.rl_op_vr("xor", b, mask)
    bank.vr_write(dst, mask)


def op_not(bank: BitProcessorArray, dst: int, a: int) -> None:
    """``dst = ~a`` -- a read followed by a WBLB (negated) write."""
    mask = _full_mask(bank)
    bank.rl_read(a, mask)
    bank.vr_write(dst, mask, negate=True)


def broadcast_imm(bank: BitProcessorArray, dst: int, value: int) -> None:
    """Broadcast a 16-bit immediate to every element of ``dst``.

    Zeroes RL by XOR-ing a VR with itself, writes the zero plane, then
    rewrites the one-bits through WBLB (which stores the negation of the
    zeroed RL).
    """
    if not 0 <= value < (1 << bank.element_bits):
        raise MicrocodeError(f"immediate {value:#x} does not fit in an element")
    mask = _full_mask(bank)
    bank.rl_read(dst, mask)
    bank.rl_op_vr("xor", dst, mask)  # RL = 0 on every slice
    bank.vr_write(dst, mask)         # dst = 0
    ones = value & mask
    if ones:
        bank.vr_write(dst, ones, negate=True)  # selected slices = ~0 = 1


def add_u16(bank: BitProcessorArray, dst: int, a: int, b: int,
            carry: int, scratch: int, carry_in: int = 0) -> None:
    """Ripple-carry addition ``dst = a + b (+ carry_in)`` mod 2^16.

    The carry chain lives in the ``carry`` scratch VR and advances one
    bit-slice per step via a south-neighbor RL read -- the mechanism the
    device uses to communicate between bit processors of adjacent
    slices.
    """
    _check_distinct(dst, a, b, carry, scratch)
    if carry_in not in (0, 1):
        raise MicrocodeError("carry_in must be 0 or 1")
    # The immediate 0/1 lands in bit-slice 0 only: exactly the carry-in.
    broadcast_imm(bank, carry, carry_in)

    top = bank.element_bits - 1
    for t in range(bank.element_bits):
        m = 1 << t
        # sum_t = a_t ^ b_t ^ carry_t
        bank.rl_read(a, m)
        bank.rl_op_vr("xor", b, m)
        bank.rl_op_vr("xor", carry, m)
        bank.vr_write(dst, m)
        if t < top:
            # carry_{t+1} = (a_t & b_t) | (carry_t & (a_t | b_t))
            bank.rl_read_and(a, b, m)
            bank.vr_write(scratch, m)
            bank.rl_read(a, m)
            bank.rl_op_vr("or", b, m)
            bank.rl_op_vr("and", carry, m)
            bank.rl_op_vr("or", scratch, m)
            # Slice t+1 pulls the carry from its south neighbor's RL.
            bank.rl_from_latch("s", 1 << (t + 1))
            bank.vr_write(carry, 1 << (t + 1))


def sub_u16(bank: BitProcessorArray, dst: int, a: int, b: int,
            carry: int, scratch: int, notb: int) -> None:
    """``dst = a - b`` mod 2^16 via ``a + ~b + 1``."""
    _check_distinct(dst, a, b, carry, scratch, notb)
    op_not(bank, notb, b)
    add_u16(bank, dst, a, notb, carry, scratch, carry_in=1)


def eq_16(bank: BitProcessorArray, marker: int, a: int, b: int,
          scratch: int) -> None:
    """Element-wise equality into bit 0 of ``marker`` (1 = equal).

    Demonstrates the global vertical latch: ``~(a ^ b)`` is driven onto
    the GVL, whose AND semantics collapse all 16 slices into a single
    per-column equality bit.
    """
    _check_distinct(marker, a, b, scratch)
    mask = _full_mask(bank)
    bank.rl_read(a, mask)
    bank.rl_op_vr("xor", b, mask)
    bank.vr_write(scratch, mask, negate=True)  # scratch = ~(a ^ b)
    bank.rl_read(scratch, mask)
    bank.gvl_from_rl(mask)                     # gvl[col] = AND over slices
    broadcast_imm(bank, marker, 0)
    bank.rl_from_latch("gvl", 0x0001)
    bank.vr_write(marker, 0x0001)


def ge_u16(bank: BitProcessorArray, marker: int, a: int, b: int,
           carry: int, scratch: int, notb: int) -> None:
    """Unsigned ``a >= b`` into bit 0 of ``marker``.

    Runs the subtraction carry chain; the carry out of the top slice is
    1 exactly when no borrow occurred, i.e. ``a >= b``.  The final carry
    is materialized by extending the ripple one step into the carry VR's
    top slice and then AND-reducing... (here: recomputed into slice 0
    via an explicit top-slice carry-out evaluation).
    """
    _check_distinct(marker, a, b, carry, scratch, notb)
    op_not(bank, notb, b)
    # Run the add ladder on a + ~b + 1, reusing marker as the discarded sum.
    add_u16(bank, marker, a, notb, carry, scratch, carry_in=1)
    # Carry-out of the top slice: (a&~b) | (c&(a|~b)) evaluated at t=15.
    top = 1 << (bank.element_bits - 1)
    bank.rl_read_and(a, notb, top)
    bank.vr_write(scratch, top)
    bank.rl_read(a, top)
    bank.rl_op_vr("or", notb, top)
    bank.rl_op_vr("and", carry, top)
    bank.rl_op_vr("or", scratch, top)
    bank.vr_write(scratch, top)  # scratch top slice = carry-out
    # Walk the bit down to slice 0 with north-neighbor reads.
    bank.rl_read(scratch, top)
    for t in range(bank.element_bits - 2, -1, -1):
        bank.rl_from_latch("n", 1 << t)
    broadcast_imm(bank, marker, 0)
    # RL slice 0 now holds the carry-out; rebuild it (broadcast clobbered RL).
    bank.rl_read(scratch, top)
    for t in range(bank.element_bits - 2, -1, -1):
        bank.rl_from_latch("n", 1 << t)
    bank.vr_write(marker, 0x0001)


def gt_u16(bank: BitProcessorArray, marker: int, a: int, b: int,
           carry: int, scratch: int, notb: int, eq_scratch: int) -> None:
    """Unsigned ``a > b`` into bit 0 of ``marker`` (``ge & ~eq``)."""
    _check_distinct(marker, a, b, carry, scratch, notb, eq_scratch)
    ge_u16(bank, marker, a, b, carry, scratch, notb)
    eq_16(bank, eq_scratch, a, b, carry)
    # marker = marker & ~eq on slice 0.
    bank.rl_read(eq_scratch, 0x0001)
    bank.vr_write(eq_scratch, 0x0001, negate=True)
    bank.rl_read_and(marker, eq_scratch, 0x0001)
    bank.vr_write(marker, 0x0001)


def broadcast_bit_to_all_slices(bank: BitProcessorArray, dst: int, src: int,
                                bit: int) -> None:
    """Copy bit ``bit`` of each element of ``src`` to every slice of ``dst``.

    The per-column bit climbs and descends the bit-slice stack through
    neighbor reads -- the mechanism that lets one bit predicate a whole
    column (used by bit-serial multiplication).
    """
    if not 0 <= bit < bank.element_bits:
        raise MicrocodeError(f"bit index {bit} out of range")
    bank.rl_read(src, 1 << bit)
    for t in range(bit + 1, bank.element_bits):
        bank.rl_from_latch("s", 1 << t)
    for t in range(bit - 1, -1, -1):
        bank.rl_from_latch("n", 1 << t)
    bank.vr_write(dst, _full_mask(bank))


def mul_u16(bank: BitProcessorArray, dst: int, a: int, b: int,
            acc: int, partial: int, colmask: int, carry: int,
            scratch: int) -> None:
    """Shift-add multiplication ``dst = a * b`` mod 2^16.

    For each bit i of ``b``: broadcast that bit across the column
    (predication mask), AND it with ``a << i`` (the partial product)
    and accumulate with the ripple-carry adder.  Sixteen broadcast +
    shift + add rounds is why the hardware's multiply costs an order
    of magnitude more than an add (Table 5: 115 vs 12 cycles).
    """
    _check_distinct(dst, a, b, acc, partial, colmask, carry, scratch)
    broadcast_imm(bank, acc, 0)
    for bit in range(bank.element_bits):
        broadcast_bit_to_all_slices(bank, colmask, b, bit)
        shift_left_bits(bank, partial, a, bit)
        # partial &= colmask (predicated partial product).
        bank.rl_read_and(partial, colmask, _full_mask(bank))
        bank.vr_write(partial, _full_mask(bank))
        # acc += partial; ping-pong through dst to satisfy operand
        # distinctness, ending with the running sum back in acc.
        add_u16(bank, dst, acc, partial, carry, scratch)
        bank.rl_read(dst, _full_mask(bank))
        bank.vr_write(acc, _full_mask(bank))
    bank.rl_read(acc, _full_mask(bank))
    bank.vr_write(dst, _full_mask(bank))


def shift_left_bits(bank: BitProcessorArray, dst: int, a: int, k: int) -> None:
    """Logical shift left by ``k`` bit positions (element-wise).

    Each repetition moves every slice's RL one position toward the MSB
    through south-neighbor reads, shifting zeros into bit 0.
    """
    if k < 0:
        raise MicrocodeError("shift amount must be non-negative")
    mask = _full_mask(bank)
    bank.rl_read(a, mask)
    for _ in range(k):
        bank.rl_from_latch("s", mask)
    bank.vr_write(dst, mask)


def shift_right_bits(bank: BitProcessorArray, dst: int, a: int, k: int) -> None:
    """Logical shift right by ``k`` bit positions (element-wise)."""
    if k < 0:
        raise MicrocodeError("shift amount must be non-negative")
    mask = _full_mask(bank)
    bank.rl_read(a, mask)
    for _ in range(k):
        bank.rl_from_latch("n", mask)
    bank.vr_write(dst, mask)


def _check_distinct(*vrs: int) -> None:
    if len(set(vrs)) != len(vrs):
        raise MicrocodeError(
            f"microcode routine requires distinct VR operands, got {vrs}"
        )
