"""DMA engines and programmed I/O (paper Section 2.1.2).

Each core has two parallel DMA engines moving 512-byte chunks.  The
supported paths and their layout-transformation capabilities follow the
paper exactly:

* ``L4 <-> L3`` and ``L4 <-> L2``: DMA (contiguous / strided /
  duplicated layouts) or PIO (arbitrary layouts, low bandwidth).
* ``L2 <-> L1`` and ``L1 <-> VR``: full-vector granularity only, no
  layout transformation.
* ``L3 <-> VR``: PIO through the response FIFO -- serial ``get`` from a
  VR, parallel ``set`` into a VR -- plus indexed lookup.

Costs come from Table 4, inflated by the simulator-only second-order
effects (DRAM refresh interference on L4 paths, per-descriptor engine
arbitration) that the analytical model omits.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .memory import MemHandle, MemoryError_

__all__ = ["DMAController"]


class DMAController:
    """The two DMA engines plus the PIO path of one core."""

    def __init__(self, core):
        self.core = core
        self.params = core.params

    # ------------------------------------------------------------------
    # Functional payload (silent-data-corruption hook)
    # ------------------------------------------------------------------
    def _payload(self, data: np.ndarray) -> np.ndarray:
        """Pass transferred data through the attached SDC engine, if any."""
        sdc = self.core.sdc
        if sdc is not None:
            return sdc.corrupt_dma_payload(data)
        return data

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------
    def _l4_cost(self, base_cycles: float, nbytes: int) -> float:
        """Inflate an L4-path DMA cost with refresh + arbitration effects."""
        effects = self.params.effects
        descriptors = max(1, -(-nbytes // 512))
        refresh = base_cycles * effects.dram_refresh_factor
        arbitration = effects.dma_arbitration_cycles * min(descriptors, 64)
        return base_cycles + refresh + arbitration

    # ------------------------------------------------------------------
    # L4 <-> L2 / L3 (byte-granularity, layout transforms allowed)
    # ------------------------------------------------------------------
    def l4_to_l2(self, src: MemHandle, nbytes: int, l2_offset: int = 0,
                 count: int = 1) -> None:
        """DMA ``nbytes`` from device DRAM into the L2 scratchpad."""
        if nbytes <= 0:
            raise MemoryError_("DMA size must be positive")
        cost = self._l4_cost(self.params.movement.dma_l4_l2(nbytes), nbytes)
        self.core.charge_raw("dma_l4_l2", cost, count, nbytes=nbytes)
        if self.core.functional:
            data = self._payload(self.core.l4.read(src, nbytes))
            self.core.l2.write(l2_offset, data)

    def l2_to_l4(self, dst: MemHandle, nbytes: int, l2_offset: int = 0,
                 count: int = 1) -> None:
        """DMA ``nbytes`` from the L2 scratchpad back to device DRAM."""
        if nbytes <= 0:
            raise MemoryError_("DMA size must be positive")
        cost = self._l4_cost(self.params.movement.dma_l4_l2(nbytes), nbytes)
        self.core.charge_raw("dma_l2_l4", cost, count, nbytes=nbytes)
        if self.core.functional:
            data = self.core.l2.read(l2_offset, nbytes)
            self.core.l4.write(dst, data)

    def l4_to_l2_strided(self, src: Optional[MemHandle], elem_bytes: int,
                         stride_bytes: int, n_elements: int,
                         l2_offset: int = 0, count: int = 1) -> None:
        """Strided-layout DMA: gather ``n_elements`` pieces into L2.

        Section 2.1.2: "the source and target 512-byte chunk addresses
        can be programmed to enable contiguous, strided, and duplicated
        data layout transformations."  Each gathered element costs one
        chained descriptor on top of the per-byte rate.
        """
        if elem_bytes <= 0 or n_elements <= 0:
            raise MemoryError_("strided DMA needs positive element count/size")
        if stride_bytes < elem_bytes:
            raise MemoryError_("stride must cover the element size")
        total = elem_bytes * n_elements
        base = self.params.movement.dma_l4_l2(total)
        chained = self.params.movement.dma_chained_init * (n_elements - 1)
        self.core.charge_raw("dma_l4_l2", self._l4_cost(base + chained, total),
                             count, nbytes=total)
        if self.core.functional:
            if src is None:
                raise MemoryError_("functional mode needs a source handle")
            for i in range(n_elements):
                piece = self.core.l4.read(src + i * stride_bytes, elem_bytes)
                self.core.l2.write(l2_offset + i * elem_bytes, piece)

    def l4_to_l2_duplicated(self, src: Optional[MemHandle], nbytes: int,
                            repeats: int, l2_offset: int = 0,
                            count: int = 1) -> None:
        """Duplicated-layout DMA: tile one source chunk across L2.

        The source is read once; the descriptor chain writes ``repeats``
        copies, paying the per-byte write rate on the full destination
        plus one chained-descriptor initiation per duplicate.
        """
        if nbytes <= 0 or repeats <= 0:
            raise MemoryError_("duplicated DMA needs positive size/repeats")
        dest_bytes = nbytes * repeats
        base = self.params.movement.dma_l4_l2(dest_bytes)
        chained = self.params.movement.dma_chained_init * (repeats - 1)
        self.core.charge_raw(
            "dma_l4_l2", self._l4_cost(base + chained, dest_bytes), count,
            nbytes=dest_bytes,
        )
        if self.core.functional:
            if src is None:
                raise MemoryError_("functional mode needs a source handle")
            chunk = self.core.l4.read(src, nbytes)
            for r in range(repeats):
                self.core.l2.write(l2_offset + r * nbytes, chunk)

    def l4_to_l3(self, src: MemHandle, nbytes: int, l3_offset: int = 0,
                 count: int = 1) -> None:
        """DMA ``nbytes`` from device DRAM into the L3 CP cache."""
        if nbytes <= 0:
            raise MemoryError_("DMA size must be positive")
        cost = self._l4_cost(self.params.movement.dma_l4_l3(nbytes), nbytes)
        self.core.charge_raw("dma_l4_l3", cost, count, nbytes=nbytes)
        if self.core.functional:
            data = self._payload(self.core.l4.read(src, nbytes))
            self.core.l3.write(l3_offset, data)

    # ------------------------------------------------------------------
    # Full-vector paths (no layout transformation)
    # ------------------------------------------------------------------
    def l2_to_l1(self, vmr_slot: int, count: int = 1) -> None:
        """Move the full vector staged in L2 into an L1 VMR."""
        self.core.charge_raw("dma_l2_l1", self.params.movement.dma_l2_l1, count,
                             nbytes=self.params.vr_bytes)
        if self.core.functional:
            vector = self._payload(
                self.core.l2.read(0, self.params.vr_bytes, np.uint16))
            self.core.l1.store(vmr_slot, vector)

    def l1_to_l2(self, vmr_slot: int, count: int = 1) -> None:
        """Move a full vector from an L1 VMR into L2."""
        self.core.charge_raw("dma_l1_l2", self.params.movement.dma_l2_l1, count,
                             nbytes=self.params.vr_bytes)
        if self.core.functional:
            self.core.l2.write(0, self.core.l1.load(vmr_slot))

    def l4_to_l1_32k(self, vmr_slot: int, src: Optional[MemHandle] = None,
                     count: int = 1) -> None:
        """Direct DMA of one full vector, device DRAM -> L1 VMR."""
        nbytes = self.params.vr_bytes
        cost = self._l4_cost(self.params.movement.dma_l4_l1, nbytes)
        self.core.charge_raw("dma_l4_l1", cost, count, nbytes=nbytes)
        if self.core.functional:
            if src is None:
                raise MemoryError_("functional mode needs a source handle")
            self.core.l1.store(
                vmr_slot,
                self._payload(self.core.l4.read(src, nbytes, np.uint16)))

    def l1_to_l4_32k(self, dst: Optional[MemHandle], vmr_slot: int,
                     count: int = 1) -> None:
        """Direct DMA of one full vector, L1 VMR -> device DRAM."""
        nbytes = self.params.vr_bytes
        cost = self._l4_cost(self.params.movement.dma_l1_l4, nbytes)
        self.core.charge_raw("dma_l1_l4", cost, count, nbytes=nbytes)
        if self.core.functional:
            if dst is None:
                raise MemoryError_("functional mode needs a destination handle")
            self.core.l4.write(dst, self.core.l1.load(vmr_slot))

    # ------------------------------------------------------------------
    # PIO (element-granularity, arbitrary layout)
    # ------------------------------------------------------------------
    def pio_ld(self, vr: int, src: Optional[MemHandle] = None,
               elements: Optional[Sequence[int]] = None,
               n: Optional[int] = None, count: int = 1) -> None:
        """PIO-load individual elements from device DRAM into a VR.

        ``elements`` gives the destination VR positions; the source is
        read contiguously from ``src``.  In timing-only mode pass ``n``
        (the element count) instead.
        """
        n_elements = len(elements) if elements is not None else n
        if n_elements is None or n_elements < 0:
            raise MemoryError_("pio_ld needs element positions or a count")
        self.core.charge_raw(
            "pio_ld", self.params.movement.pio_ld(n_elements), count,
            nbytes=2 * n_elements,
        )
        if self.core.functional and elements is not None:
            if src is None:
                raise MemoryError_("functional mode needs a source handle")
            data = self._payload(
                self.core.l4.read(src, 2 * n_elements, np.uint16))
            vector = self.core.vr_read(vr)
            vector[np.asarray(elements, dtype=np.int64)] = data
            self.core.vr_write(vr, vector)

    def pio_st(self, dst: Optional[MemHandle], vr: int,
               elements: Optional[Sequence[int]] = None,
               n: Optional[int] = None, count: int = 1) -> None:
        """PIO-store individual VR elements to device DRAM (serial get)."""
        n_elements = len(elements) if elements is not None else n
        if n_elements is None or n_elements < 0:
            raise MemoryError_("pio_st needs element positions or a count")
        self.core.charge_raw(
            "pio_st", self.params.movement.pio_st(n_elements), count,
            nbytes=2 * n_elements,
        )
        if self.core.functional and elements is not None:
            if dst is None:
                raise MemoryError_("functional mode needs a destination handle")
            vector = self.core.vr_read(vr)
            picked = vector[np.asarray(elements, dtype=np.int64)]
            self.core.l4.write(dst, picked.astype(np.uint16))

    # ------------------------------------------------------------------
    # L3 -> VR indexed lookup
    # ------------------------------------------------------------------
    def lookup_16(self, dst_vr: int, index_vr: Optional[int],
                  table_entries: int, l3_offset: int = 0,
                  count: int = 1) -> None:
        """Gather ``dst[i] = table[index[i]]`` from an L3-resident table.

        Latency grows with the table size (Table 4), which is the
        behaviour the broadcast-friendly layout optimization attacks.
        """
        if table_entries <= 0:
            raise MemoryError_("lookup table must have at least one entry")
        if table_entries * 2 > self.params.l3_bytes:
            raise MemoryError_(
                f"lookup table of {table_entries} u16 entries exceeds L3"
            )
        base = self.params.movement.lookup(table_entries)
        cost = base * (1.0 + self.params.effects.lookup_cache_factor)
        self.core.charge_raw("lookup", cost, count, nbytes=2 * table_entries)
        if self.core.functional:
            if index_vr is None:
                raise MemoryError_("functional lookup needs an index VR")
            table = self.core.l3.read(l3_offset, 2 * table_entries, np.uint16)
            indices = self.core.vr_read(index_vr).astype(np.int64)
            if (indices >= table_entries).any():
                raise MemoryError_("lookup index out of table bounds")
            self.core.vr_write(dst_vr, table[indices])
