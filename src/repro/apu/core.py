"""One APU core: vector registers, markers, private L1/L2, and its trace.

An :class:`APUCore` owns the per-core state of Fig. 3(b): 24 vector
registers, the marker bank, 48 L1 background registers, the 64 KB L2
scratchpad, two DMA engines, and a GVML execution unit.  Cycle
accounting reuses :class:`repro.core.estimator.LatencyEstimator` as the
trace (sections, parallel tracks and breakdowns work identically), but
the core adds the simulator-only second-order costs -- per-command VCU
issue overhead here, DRAM refresh in the DMA engines -- which is what
separates "measured" simulator latencies from the closed-form analytical
predictions in the Table 7 validation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.estimator import LatencyEstimator
from ..core.params import APUParams, DEFAULT_PARAMS
from ..obs import collector as _trace_collector
from .memory import MemoryError_, Scratchpad, VMRFile

__all__ = ["APUCore", "NUM_MARKERS"]

#: Number of marker (mask) registers per core.
NUM_MARKERS = 16


class APUCore:
    """A single APU vector core.

    Parameters
    ----------
    params:
        Architecture parameter bundle.
    device:
        Owning :class:`repro.apu.device.APUDevice` (provides shared L3
        and L4); ``None`` for a standalone core with no off-chip access.
    functional:
        ``True`` -> NumPy-backed execution (results + cycles);
        ``False`` -> timing-only (cycles, no data), for paper-scale runs.
    core_id:
        Index of this core on the device.
    """

    def __init__(self, params: APUParams = DEFAULT_PARAMS, device=None,
                 functional: bool = True, core_id: int = 0):
        self.params = params
        self.device = device
        self.functional = functional
        self.core_id = core_id
        self.trace = LatencyEstimator(params, core_id=core_id)
        self.vrs: List[Optional[np.ndarray]] = [None] * params.num_vrs
        self.markers: Dict[int, Optional[np.ndarray]] = {
            i: None for i in range(NUM_MARKERS)
        }
        self.l1 = VMRFile(params)
        self.l2 = Scratchpad(params)
        # Deferred imports to avoid a cycle (gvml/dma need APUCore's type).
        from .gvml import GVML
        from .dma import DMAController

        self.gvml = GVML(self)
        self.dma = DMAController(self)
        #: Estimated microcode instruction count (Table 6 statistics).
        self.micro_instructions = 0
        #: Optional silent-data-corruption engine
        #: (:class:`repro.integrity.inject.MemoryFaultInjector`); when
        #: attached, every functional VR write and DMA payload passes
        #: through it.  ``None`` leaves all data paths untouched.
        self.sdc = None

    # ------------------------------------------------------------------
    # Cycle accounting
    # ------------------------------------------------------------------
    def charge_command(self, name: str, cycles: float, count: int = 1,
                       micro_ops: int = 1, nbytes: int = 0) -> None:
        """Charge a vector command issued through the CP/VCU.

        Adds the simulator-only VCU decode/issue overhead per command.
        ``nbytes`` (bytes moved per execution) feeds the trace events.
        """
        issue = self.params.effects.vcu_issue_cycles
        self.trace.record(name, cycles + issue, count, bytes_moved=nbytes)
        self.micro_instructions += micro_ops * count

    def charge_raw(self, name: str, cycles: float, count: int = 1,
                   nbytes: int = 0) -> None:
        """Charge cycles with no issue overhead (DMA engine internals)."""
        self.trace.record(name, cycles, count, bytes_moved=nbytes)

    @property
    def cycles(self) -> float:
        """Total cycles this core has consumed."""
        return self.trace.total_cycles

    def section(self, label: str):
        """Attribute enclosed commands to a breakdown section."""
        return self.trace.section(label)

    def parallel(self):
        """Model overlapped engine activity (critical-path charging)."""
        return self.trace.parallel()

    def reset_trace(self) -> None:
        """Clear accumulated cycles (keeps architectural state)."""
        self.trace.reset()
        self.micro_instructions = 0

    # ------------------------------------------------------------------
    # Architectural state access
    # ------------------------------------------------------------------
    def _check_vr(self, vr: int) -> None:
        if not 0 <= vr < self.params.num_vrs:
            raise MemoryError_(
                f"VR index {vr} out of range 0..{self.params.num_vrs - 1}"
            )

    def vr_read(self, vr: int) -> np.ndarray:
        """Functional read of a VR (zeros if never written)."""
        self._check_vr(vr)
        if not self.functional:
            raise MemoryError_("VR contents are unavailable in timing-only mode")
        data = self.vrs[vr]
        if data is None:
            return np.zeros(self.params.vr_length, dtype=np.uint16)
        return data.copy()

    def vr_write(self, vr: int, values: Optional[np.ndarray]) -> None:
        """Functional write of a VR (no-op in timing-only mode)."""
        self._check_vr(vr)
        if not self.functional:
            return
        if values is None:
            self.vrs[vr] = None
            return
        arr = np.asarray(values, dtype=np.uint16)
        if arr.shape != (self.params.vr_length,):
            raise MemoryError_(
                f"VR writes are full-vector: expected ({self.params.vr_length},), "
                f"got {arr.shape}"
            )
        self.vrs[vr] = arr.copy()
        if self.sdc is not None:
            self.sdc.corrupt_vr_write(vr, self.vrs[vr])
        collector = (self.trace.collector if self.trace.collector is not None
                     else _trace_collector.ACTIVE)
        if collector is not None and collector.enabled:
            collector.note_vr_occupancy(
                sum(1 for data in self.vrs if data is not None)
            )

    def marker_read(self, marker: int) -> np.ndarray:
        """Functional read of a marker register as a boolean vector."""
        if marker not in self.markers:
            raise MemoryError_(f"marker {marker} out of range 0..{NUM_MARKERS - 1}")
        if not self.functional:
            raise MemoryError_("markers are unavailable in timing-only mode")
        data = self.markers[marker]
        if data is None:
            return np.zeros(self.params.vr_length, dtype=bool)
        return data.copy()

    def marker_write(self, marker: int, values: Optional[np.ndarray]) -> None:
        """Functional write of a marker register."""
        if marker not in self.markers:
            raise MemoryError_(f"marker {marker} out of range 0..{NUM_MARKERS - 1}")
        if not self.functional:
            return
        if values is None:
            self.markers[marker] = None
            return
        arr = np.asarray(values, dtype=bool)
        if arr.shape != (self.params.vr_length,):
            raise MemoryError_(
                f"marker writes are full-vector: got {arr.shape}"
            )
        self.markers[marker] = arr.copy()

    # ------------------------------------------------------------------
    # Shared memory shortcuts
    # ------------------------------------------------------------------
    @property
    def l3(self):
        """The device-shared L3 CP cache."""
        if self.device is None:
            raise MemoryError_("standalone core has no L3; attach to an APUDevice")
        return self.device.l3

    @property
    def l4(self):
        """The device-shared L4 DRAM."""
        if self.device is None:
            raise MemoryError_("standalone core has no L4; attach to an APUDevice")
        return self.device.l4
