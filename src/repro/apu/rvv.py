"""A RISC-V vector (RVV) abstraction hosted on the APU.

Section 2.2.2 notes that "an APU programmer can implement a different
vector abstraction with microcode instructions", citing Golden et
al. [19], who hosted a virtual RISC-V vector ISA on this device.  This
module reproduces that layer: a small RVV-style machine whose vector
instructions execute through GVML (and therefore inherit both the
functional semantics and the Table 5 timing of the underlying device).

Supported subset (SEW=16, LMUL=1): ``vsetvl``, unit-stride loads and
stores, ``vadd/vsub/vmul/vdiv``, ``vand/vor/vxor``, ``vsll/vsrl/vsra``,
``vmin/vmax``, the compare family ``vmseq/vmslt/vmsle/vmsgt`` writing
``v0``-style masks, masked ``vmerge``, ``vmv.v.x`` splats, and the
reductions ``vredsum/vredmax/vredmin``.

The vector length register ``vl`` masks the tail per the RVV
tail-undisturbed policy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.params import APUParams, DEFAULT_PARAMS
from .device import APUDevice

__all__ = ["RVVMachine", "RVVError"]


class RVVError(Exception):
    """Raised on malformed RVV programs."""


class RVVMachine:
    """A virtual RVV core with SEW=16 hosted on one APU core.

    RVV architectural registers v0..v15 map onto APU VRs 0..15; v0
    doubles as the mask register (its low bit per element), matching
    the RVV convention.  Marker register 0 mirrors v0's mask view.
    """

    NUM_VREGS = 16
    SEW = 16

    def __init__(self, device: Optional[APUDevice] = None,
                 params: APUParams = DEFAULT_PARAMS):
        self.device = device or APUDevice(params)
        self.core = self.device.core
        self.params = self.device.params
        self.vlmax = self.params.vr_length
        self.vl = self.vlmax

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def vsetvl(self, avl: int) -> int:
        """Set the active vector length; returns the granted ``vl``."""
        if avl < 0:
            raise RVVError("application vector length must be non-negative")
        self.vl = min(avl, self.vlmax)
        # vsetvl executes on the control processor: charge a cheap
        # broadcast to refresh the tail mask.
        self.core.gvml.create_grp_index_u16(15, self.vlmax)
        if self.vl < self.vlmax:
            self.core.gvml.gt_imm_u16(1, 15, self.vl - 1 if self.vl else 0)
        return self.vl

    def _check_reg(self, reg: int) -> None:
        if not 0 <= reg < self.NUM_VREGS:
            raise RVVError(f"v{reg} out of range v0..v{self.NUM_VREGS - 1}")

    def _body(self) -> slice:
        return slice(0, self.vl)

    # ------------------------------------------------------------------
    # Loads / stores (unit stride, from host arrays through L1)
    # ------------------------------------------------------------------
    def vle16(self, vd: int, data: np.ndarray) -> None:
        """Unit-stride load of ``vl`` elements into ``vd``."""
        self._check_reg(vd)
        arr = np.asarray(data, dtype=np.uint16).reshape(-1)
        if arr.size < self.vl:
            raise RVVError(f"load needs {self.vl} elements, got {arr.size}")
        padded = np.zeros(self.vlmax, dtype=np.uint16)
        padded[: self.vl] = arr[: self.vl]
        self.core.l1.store(47, padded)
        self.core.gvml.load_16(vd, 47)

    def vse16(self, vs: int) -> np.ndarray:
        """Unit-stride store: returns the ``vl`` active elements."""
        self._check_reg(vs)
        self.core.gvml.store_16(46, vs)
        return self.core.l1.load(46)[: self.vl]

    def vmv_v_x(self, vd: int, scalar: int) -> None:
        """Splat a scalar into every active element."""
        self._check_reg(vd)
        self.core.gvml.cpy_imm_16(vd, scalar)

    # ------------------------------------------------------------------
    # Arithmetic / logic (vector-vector)
    # ------------------------------------------------------------------
    def _vv(self, op: str, vd: int, vs1: int, vs2: int) -> None:
        for reg in (vd, vs1, vs2):
            self._check_reg(reg)
        getattr(self.core.gvml, op)(vd, vs1, vs2)

    def vadd_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd = vs1 + vs2`` (wrapping, SEW=16)."""
        self._vv("add_u16", vd, vs1, vs2)

    def vsub_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd = vs1 - vs2``."""
        self._vv("sub_u16", vd, vs1, vs2)

    def vmul_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd = vs1 * vs2`` (low half)."""
        self._vv("mul_u16", vd, vs1, vs2)

    def vdivu_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd = vs1 / vs2`` unsigned; divide-by-zero saturates."""
        self._vv("div_u16", vd, vs1, vs2)

    def vand_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """Bitwise AND."""
        self._vv("and_16", vd, vs1, vs2)

    def vor_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """Bitwise OR."""
        self._vv("or_16", vd, vs1, vs2)

    def vxor_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """Bitwise XOR."""
        self._vv("xor_16", vd, vs1, vs2)

    def vsll_vi(self, vd: int, vs: int, shamt: int) -> None:
        """Logical shift left by immediate."""
        self._check_reg(vd)
        self._check_reg(vs)
        self.core.gvml.sl_imm_16(vd, vs, shamt)

    def vsrl_vi(self, vd: int, vs: int, shamt: int) -> None:
        """Logical shift right by immediate."""
        self._check_reg(vd)
        self._check_reg(vs)
        self.core.gvml.sr_imm_16(vd, vs, shamt)

    def vsra_vi(self, vd: int, vs: int, shamt: int) -> None:
        """Arithmetic shift right by immediate."""
        self._check_reg(vd)
        self._check_reg(vs)
        self.core.gvml.ashift_16(vd, vs, shamt)

    def vmax_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """Unsigned element-wise max."""
        self._vv("max_u16", vd, vs1, vs2)

    def vmin_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """Unsigned element-wise min."""
        self._vv("min_u16", vd, vs1, vs2)

    # ------------------------------------------------------------------
    # Compares -> mask in v0 / masked ops
    # ------------------------------------------------------------------
    def _compare(self, op: str, vs1: int, vs2: int) -> None:
        self._check_reg(vs1)
        self._check_reg(vs2)
        getattr(self.core.gvml, op)(0, vs1, vs2)  # marker 0 = v0 mask

    def vmseq_vv(self, vs1: int, vs2: int) -> None:
        """Mask where ``vs1 == vs2``."""
        self._compare("eq_16", vs1, vs2)

    def vmsltu_vv(self, vs1: int, vs2: int) -> None:
        """Mask where ``vs1 < vs2`` (unsigned)."""
        self._compare("lt_u16", vs1, vs2)

    def vmsleu_vv(self, vs1: int, vs2: int) -> None:
        """Mask where ``vs1 <= vs2`` (unsigned)."""
        self._compare("le_u16", vs1, vs2)

    def vmsgtu_vv(self, vs1: int, vs2: int) -> None:
        """Mask where ``vs1 > vs2`` (unsigned)."""
        self._compare("gt_u16", vs1, vs2)

    def vmerge_vvm(self, vd: int, vs_false: int, vs_true: int) -> None:
        """``vd[i] = mask[i] ? vs_true[i] : vs_false[i]``."""
        for reg in (vd, vs_false, vs_true):
            self._check_reg(reg)
        g = self.core.gvml
        g.cpy_16(vd, vs_false)
        g.cpy_16_msk(vd, vs_true, 0)

    def vcpop_m(self) -> Optional[int]:
        """Population count of the v0 mask over the active body."""
        if self.vl < self.vlmax and self.device.functional:
            g = self.core.gvml
            g.create_grp_index_u16(15, self.vlmax)
            g.gt_imm_u16(1, 15, max(self.vl - 1, 0))
            g.not_mrk(2, 1)
            g.and_mrk(3, 0, 2)
            return g.count_m(3)
        return self.core.gvml.count_m(0)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _reduce(self, op: str, vs: int) -> Optional[int]:
        self._check_reg(vs)
        g = self.core.gvml
        body = vs
        if self.vl < self.vlmax and self.device.functional:
            neutral = 0 if op != "min_subgrp_u16" else 0xFFFF
            g.create_grp_index_u16(15, self.vlmax)
            g.gt_imm_u16(1, 15, max(self.vl - 1, 0))
            g.cpy_16(14, vs)
            g.cpy_imm_16_msk(14, neutral, 1)
            body = 14
        getattr(g, op)(13, body, self.vlmax, 1)
        return g.get_element(13, 0)

    def vredsum_vs(self, vs: int) -> Optional[int]:
        """Sum reduction over the active body (mod 2^16)."""
        return self._reduce("add_subgrp_s16", vs)

    def vredmaxu_vs(self, vs: int) -> Optional[int]:
        """Unsigned max reduction over the active body."""
        return self._reduce("max_subgrp_u16", vs)

    def vredminu_vs(self, vs: int) -> Optional[int]:
        """Unsigned min reduction over the active body."""
        return self._reduce("min_subgrp_u16", vs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def read(self, reg: int) -> np.ndarray:
        """Functional read of a vector register's active body."""
        self._check_reg(reg)
        return self.core.vr_read(reg)[: self.vl]

    @property
    def cycles(self) -> float:
        """APU cycles consumed by the hosted RVV program."""
        return self.core.cycles
