"""A textual assembler for Table 2 microcode.

Table 2 defines the operations on the microarchitectural state; this
module gives them a concrete assembly syntax so bit-processor programs
can be written, read and tested as text -- the way the GVML authors (or
the RISC-V port of Golden et al.) would prototype new vector
instructions.

Syntax (one statement per line; ``#`` comments; ``@mask`` suffix
restricts a statement to a 16-bit slice mask):

.. code-block:: text

    RL  = VR[0]                 # read
    RL  = VR[0] & VR[1]         # read two VRs, AND
    RL ^= VR[2]                 # RL op= VR
    RL  = GVL                   # read a latch source (GHL/GVL/N/S/E/W)
    RL |= GHL                   # RL op= latch
    VR[3] = RL                  # write through WBL
    VR[3] = ~RL                 # write through WBLB (negated)
    GHL = RL                    # drive the horizontal lines (OR)
    GVL = RL                    # drive the vertical lines (AND)
    RL = VR[0] ^ N   @ 0x00ff   # masked to the low 8 bit-slices

Programs execute against a :class:`~repro.apu.bitproc.BitProcessorArray`.
"""

from __future__ import annotations

import re
from typing import Iterable, List

from .bitproc import BitProcessorArray, LATCH_SOURCES, MicrocodeError

__all__ = ["AssemblerError", "assemble", "run_program"]

_OP_TOKENS = {"&": "and", "|": "or", "^": "xor"}
_LATCHES = {name.upper(): name for name in LATCH_SOURCES}

_VR_RE = re.compile(r"^VR\[(\d+)\]$")


class AssemblerError(Exception):
    """Raised on unparseable microcode text."""


class _Statement:
    """One parsed statement: a closure over the bank call."""

    def __init__(self, text: str, apply):
        self.text = text
        self._apply = apply

    def __call__(self, bank: BitProcessorArray) -> None:
        self._apply(bank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<microcode {self.text!r}>"


def _parse_operand(token: str):
    """Classify an operand token: ('vr', index) or ('latch', name)."""
    token = token.strip()
    match = _VR_RE.match(token)
    if match:
        return ("vr", int(match.group(1)))
    if token in _LATCHES:
        return ("latch", _LATCHES[token])
    raise AssemblerError(f"unknown operand {token!r}")


def _split_mask(line: str):
    if "@" in line:
        body, mask_text = line.rsplit("@", 1)
        try:
            mask = int(mask_text.strip(), 0)
        except ValueError as exc:
            raise AssemblerError(f"bad mask {mask_text.strip()!r}") from exc
        return body.strip(), mask
    return line.strip(), 0xFFFF


def _parse_statement(line: str) -> _Statement:
    body, mask = _split_mask(line)

    # Global line drives.
    if body in ("GHL = RL", "GVL = RL"):
        target = body.split("=")[0].strip()
        if target == "GHL":
            return _Statement(body, lambda b: b.ghl_from_rl(mask))
        return _Statement(body, lambda b: b.gvl_from_rl(mask))

    # VR writes (WBL / WBLB).
    match = re.match(r"^VR\[(\d+)\]\s*=\s*(~?)RL$", body)
    if match:
        vr, negate = int(match.group(1)), match.group(2) == "~"
        return _Statement(
            body, lambda b: b.vr_write(vr, mask, negate=negate)
        )

    # RL-targeted statements.
    match = re.match(r"^RL\s*(\^|\||&)?=\s*(.+)$", body)
    if not match:
        raise AssemblerError(f"cannot parse statement {body!r}")
    accumulate = match.group(1)
    rhs = match.group(2).strip()

    # Split the RHS on a top-level boolean operator, if any.
    rhs_match = re.match(r"^(.+?)\s*(\^|\||&)\s*(.+)$", rhs)
    if rhs_match:
        left = _parse_operand(rhs_match.group(1))
        op2 = _OP_TOKENS[rhs_match.group(2)]
        right = _parse_operand(rhs_match.group(3))
    else:
        left = _parse_operand(rhs)
        op2 = None
        right = None

    if accumulate is None:
        # Plain reads: RL = VR / RL = L / RL = VR op VR / RL = VR op L.
        if op2 is None:
            if left[0] == "vr":
                vr = left[1]
                return _Statement(body, lambda b: b.rl_read(vr, mask))
            latch = left[1]
            return _Statement(body, lambda b: b.rl_from_latch(latch, mask))
        if left[0] == "vr" and right[0] == "vr":
            if op2 != "and":
                raise AssemblerError(
                    "two-VR reads support only '&' (Table 2: RL = VR[a, b])"
                )
            va, vb = left[1], right[1]
            return _Statement(body, lambda b: b.rl_read_and(va, vb, mask))
        if left[0] == "vr" and right[0] == "latch":
            vr, latch = left[1], right[1]
            return _Statement(
                body,
                lambda b: b.rl_read_vr_op_latch(vr, op2, latch, mask),
            )
        raise AssemblerError(f"unsupported read form {body!r}")

    op1 = _OP_TOKENS[accumulate]
    if op2 is None:
        # RL op= VR / RL op= L.
        if left[0] == "vr":
            vr = left[1]
            return _Statement(body, lambda b: b.rl_op_vr(op1, vr, mask))
        latch = left[1]
        return _Statement(body, lambda b: b.rl_op_latch(op1, latch, mask))
    # RL op= VR op L.
    if left[0] == "vr" and right[0] == "latch":
        vr, latch = left[1], right[1]
        return _Statement(
            body,
            lambda b: b.rl_op_vr_op_latch(op1, vr, op2, latch, mask),
        )
    raise AssemblerError(f"unsupported accumulate form {body!r}")


def assemble(source: str) -> List[_Statement]:
    """Parse microcode text into executable statements."""
    statements = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            statements.append(_parse_statement(line))
        except AssemblerError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from exc
    return statements


def run_program(bank: BitProcessorArray,
                program: "str | Iterable[_Statement]") -> int:
    """Assemble (if needed) and execute a program; returns micro-ops used."""
    statements = assemble(program) if isinstance(program, str) else program
    before = bank.micro_ops
    for statement in statements:
        try:
            statement(bank)
        except MicrocodeError as exc:
            raise AssemblerError(
                f"execution of {statement.text!r} failed: {exc}"
            ) from exc
    return bank.micro_ops - before
