"""GVML: the GSI Vector Math Library, reimplemented on the simulator.

Every method charges its Table 5 / Table 4 cost through the owning
core's trace (plus the per-command VCU issue overhead) and, in
functional mode, computes bit-exact NumPy semantics on the 32K-element
vector registers.  Programs written against this class therefore run
identically as small-scale functional tests and paper-scale timing
models -- the duality DESIGN.md calls out.

Conventions:

* VR operands are integer register indices (0..23).
* Marker operands are marker-register indices (0..15); comparisons
  write markers, ``cpy_*_msk`` variants consume them.
* ``count=`` folds a loop of identical commands into one trace record.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.reduction_model import simulated_sg_add_cycles
from .dtypes import (
    bits_to_f16,
    f16_to_bits,
    float_to_gf16,
    gf16_to_float,
    u16_to_s16,
    s16_to_u16,
)

__all__ = ["GVML", "GVMLError"]


class GVMLError(Exception):
    """Raised on malformed GVML calls."""


def _popcount_u16(values: np.ndarray) -> np.ndarray:
    """SWAR population count for uint16 arrays."""
    v = values.astype(np.uint32)
    v = v - ((v >> 1) & 0x5555)
    v = (v & 0x3333) + ((v >> 2) & 0x3333)
    v = (v + (v >> 4)) & 0x0F0F
    return ((v + (v >> 8)) & 0x1F).astype(np.uint16)


class GVML:
    """Vector math library bound to one :class:`~repro.apu.core.APUCore`."""

    def __init__(self, core):
        self.core = core
        self.params = core.params

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def _functional(self) -> bool:
        return self.core.functional

    def _compute(self, op_name: str, count: int) -> None:
        self.core.charge_command(op_name, self.params.compute.cost(op_name), count)

    def _binary(self, op_name: str, dst: int, a: int, b: int, count: int, fn) -> None:
        self._compute(op_name, count)
        if self._functional:
            self.core.vr_write(dst, fn(self.core.vr_read(a), self.core.vr_read(b)))

    def _unary(self, op_name: str, dst: int, a: int, count: int, fn) -> None:
        self._compute(op_name, count)
        if self._functional:
            self.core.vr_write(dst, fn(self.core.vr_read(a)))

    def _compare(self, op_name: str, marker: int, a: int, b: int,
                 count: int, fn) -> None:
        self._compute(op_name, count)
        if self._functional:
            self.core.marker_write(
                marker, fn(self.core.vr_read(a), self.core.vr_read(b))
            )

    # ------------------------------------------------------------------
    # L1 <-> VR movement (Table 4: load / store, 29 cycles)
    # ------------------------------------------------------------------
    def load_16(self, vr: int, vmr_slot: int, count: int = 1) -> None:
        """Load a full 16-bit vector from an L1 VMR into a VR."""
        self.core.charge_command("load", self.params.movement.vr_load, count,
                                 nbytes=self.params.vr_bytes)
        if self._functional:
            self.core.vr_write(vr, self.core.l1.load(vmr_slot))

    def store_16(self, vmr_slot: int, vr: int, count: int = 1) -> None:
        """Store a VR into an L1 VMR."""
        self.core.charge_command("store", self.params.movement.vr_store, count,
                                 nbytes=self.params.vr_bytes)
        if self._functional:
            self.core.l1.store(vmr_slot, self.core.vr_read(vr))

    # ------------------------------------------------------------------
    # Copies and broadcasts
    # ------------------------------------------------------------------
    def cpy_16(self, dst: int, src: int, count: int = 1) -> None:
        """Element-wise VR -> VR copy."""
        self.core.charge_command("cpy", self.params.movement.cpy, count)
        if self._functional:
            self.core.vr_write(dst, self.core.vr_read(src))

    def cpy_16_msk(self, dst: int, src: int, marker: int, count: int = 1) -> None:
        """Copy ``src`` into ``dst`` only at marked positions."""
        self.core.charge_command("cpy_msk", self.params.movement.cpy, count)
        if self._functional:
            mask = self.core.marker_read(marker)
            out = self.core.vr_read(dst)
            out[mask] = self.core.vr_read(src)[mask]
            self.core.vr_write(dst, out)

    def cpy_imm_16(self, vr: int, value: int, count: int = 1) -> None:
        """Broadcast a 16-bit immediate to an entire VR."""
        self.core.charge_command("cpy_imm", self.params.movement.cpy_imm, count)
        if self._functional:
            self.core.vr_write(
                vr, np.full(self.params.vr_length, value & 0xFFFF, dtype=np.uint16)
            )

    def cpy_imm_16_msk(self, vr: int, value: int, marker: int,
                       count: int = 1) -> None:
        """Broadcast an immediate to the marked positions of a VR."""
        self.core.charge_command("cpy_imm", self.params.movement.cpy_imm, count)
        if self._functional:
            mask = self.core.marker_read(marker)
            out = self.core.vr_read(vr)
            out[mask] = value & 0xFFFF
            self.core.vr_write(vr, out)

    def cpy_subgrp_16_grp(self, dst: int, src: int, subgroup_size: int,
                          subgroup_index: int = 0, count: int = 1) -> None:
        """Replicate one subgroup of ``src`` across the whole of ``dst``.

        The DMA-coalescing optimization's workhorse (Fig. 10): a chunk
        staged once in a reuse VR is fanned out to every group position
        at constant cost.
        """
        length = self.params.vr_length
        if subgroup_size <= 0 or length % subgroup_size != 0:
            raise GVMLError(f"subgroup size {subgroup_size} must divide {length}")
        n_subgroups = length // subgroup_size
        if not 0 <= subgroup_index < n_subgroups:
            raise GVMLError(f"subgroup index {subgroup_index} out of range")
        self.core.charge_command(
            "cpy_subgrp", self.params.movement.cpy_subgrp, count
        )
        if self._functional:
            data = self.core.vr_read(src)
            lo = subgroup_index * subgroup_size
            chunk = data[lo: lo + subgroup_size]
            self.core.vr_write(dst, np.tile(chunk, n_subgroups))

    def create_grp_index_u16(self, vr: int, group_size: int,
                             count: int = 1) -> None:
        """Fill a VR with per-group element indices (0..group_size-1)."""
        if group_size <= 0 or self.params.vr_length % group_size != 0:
            raise GVMLError(f"group size {group_size} must divide the VR length")
        movement, compute = self.params.movement, self.params.compute
        cycles = movement.cpy_imm + compute.add_u16 + compute.and_16
        self.core.charge_command("create_grp_index", cycles, count, micro_ops=3)
        if self._functional:
            indices = np.arange(self.params.vr_length, dtype=np.uint16) % group_size
            self.core.vr_write(vr, indices)

    # ------------------------------------------------------------------
    # Intra-VR shifts (Table 4)
    # ------------------------------------------------------------------
    def shift_e(self, vr: int, k: int, toward: str = "head",
                count: int = 1) -> None:
        """Shift VR entries toward head or tail by ``k`` (slow generic path)."""
        if k < 0:
            raise GVMLError("shift distance must be non-negative")
        self.core.charge_command("shift_e", self.params.movement.shift_e(k), count)
        if self._functional:
            self.core.vr_write(vr, self._shifted(self.core.vr_read(vr), k, toward))

    def shift_e4(self, vr: int, quads: int, toward: str = "head",
                 count: int = 1) -> None:
        """Intra-bank shift by ``4 * quads`` entries (fast path)."""
        if quads < 0:
            raise GVMLError("shift distance must be non-negative")
        self.core.charge_command(
            "shift_e4", self.params.movement.shift_e4(quads), count
        )
        if self._functional:
            self.core.vr_write(
                vr, self._shifted(self.core.vr_read(vr), 4 * quads, toward)
            )

    @staticmethod
    def _shifted(data: np.ndarray, k: int, toward: str) -> np.ndarray:
        out = np.zeros_like(data)
        if k == 0:
            return data
        if toward == "head":
            out[:-k or None] = data[k:]
        elif toward == "tail":
            out[k:] = data[:-k]
        else:
            raise GVMLError(f"shift direction must be head/tail, got {toward!r}")
        return out

    # ------------------------------------------------------------------
    # Boolean and shift arithmetic (Table 5)
    # ------------------------------------------------------------------
    def and_16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """``dst = a & b``."""
        self._binary("and_16", dst, a, b, count, np.bitwise_and)

    def or_16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """``dst = a | b``."""
        self._binary("or_16", dst, a, b, count, np.bitwise_or)

    def xor_16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """``dst = a ^ b``."""
        self._binary("xor_16", dst, a, b, count, np.bitwise_xor)

    def not_16(self, dst: int, a: int, count: int = 1) -> None:
        """``dst = ~a``."""
        self._unary("not_16", dst, a, count, np.bitwise_not)

    def sr_imm_16(self, dst: int, a: int, k: int, count: int = 1) -> None:
        """Logical shift right of each element by immediate ``k``."""
        self._unary("ashift", dst, a, count, lambda x: x >> np.uint16(k))

    def sl_imm_16(self, dst: int, a: int, k: int, count: int = 1) -> None:
        """Logical shift left of each element by immediate ``k``."""
        self._unary(
            "ashift", dst, a, count,
            lambda x: (x.astype(np.uint32) << k).astype(np.uint16),
        )

    def ashift_16(self, dst: int, a: int, k: int, count: int = 1) -> None:
        """Arithmetic (sign-preserving) right shift of int16 elements."""
        self._unary(
            "ashift", dst, a, count,
            lambda x: s16_to_u16(u16_to_s16(x) >> np.int16(k)),
        )

    # ------------------------------------------------------------------
    # Integer / float arithmetic (Table 5)
    # ------------------------------------------------------------------
    def add_u16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """uint16 element-wise addition (wraps mod 2^16)."""
        self._binary("add_u16", dst, a, b, count, lambda x, y: x + y)

    def add_s16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """int16 element-wise addition (two's-complement wrap)."""
        self._binary(
            "add_s16", dst, a, b, count,
            lambda x, y: s16_to_u16(u16_to_s16(x) + u16_to_s16(y)),
        )

    def sub_u16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """uint16 element-wise subtraction."""
        self._binary("sub_u16", dst, a, b, count, lambda x, y: x - y)

    def sub_s16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """int16 element-wise subtraction."""
        self._binary(
            "sub_s16", dst, a, b, count,
            lambda x, y: s16_to_u16(u16_to_s16(x) - u16_to_s16(y)),
        )

    def popcnt_16(self, dst: int, a: int, count: int = 1) -> None:
        """Per-element population count."""
        self._unary("popcnt_16", dst, a, count, _popcount_u16)

    def mul_u16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """uint16 element-wise multiplication (low 16 bits)."""
        self._binary("mul_u16", dst, a, b, count, lambda x, y: x * y)

    def mul_s16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """int16 element-wise multiplication (low 16 bits, signed)."""
        self._binary(
            "mul_s16", dst, a, b, count,
            lambda x, y: s16_to_u16(
                (u16_to_s16(x).astype(np.int32) * u16_to_s16(y).astype(np.int32))
                .astype(np.int16)
            ),
        )

    def mul_f16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """IEEE float16 element-wise multiplication on bit patterns."""
        self._binary(
            "mul_f16", dst, a, b, count,
            lambda x, y: f16_to_bits(bits_to_f16(x) * bits_to_f16(y)),
        )

    def add_f16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """IEEE float16 element-wise addition on bit patterns."""
        self._binary(
            "add_f16", dst, a, b, count,
            lambda x, y: f16_to_bits(bits_to_f16(x) + bits_to_f16(y)),
        )

    def add_gf16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """GSI gf16 element-wise addition (6-bit exponent format)."""
        self._binary(
            "add_gf16", dst, a, b, count,
            lambda x, y: float_to_gf16(gf16_to_float(x) + gf16_to_float(y)),
        )

    def mul_gf16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """GSI gf16 element-wise multiplication."""
        self._binary(
            "mul_gf16", dst, a, b, count,
            lambda x, y: float_to_gf16(gf16_to_float(x) * gf16_to_float(y)),
        )

    def div_u16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """uint16 element-wise division; division by zero saturates."""

        def div(x, y):
            out = np.full_like(x, 0xFFFF)
            nonzero = y != 0
            np.floor_divide(x, y, out=out, where=nonzero)
            return out

        self._binary("div_u16", dst, a, b, count, div)

    def div_s16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """int16 element-wise truncating division; /0 saturates to 0x7FFF."""

        def div(x, y):
            xs = u16_to_s16(x).astype(np.float64)
            ys = u16_to_s16(y).astype(np.float64)
            out = np.full(x.shape, 0x7FFF, dtype=np.int32)
            nonzero = ys != 0
            quotient = np.zeros_like(xs)
            np.divide(xs, ys, out=quotient, where=nonzero)
            out[nonzero] = np.trunc(quotient[nonzero]).astype(np.int32)
            return s16_to_u16(out.astype(np.int16))

        self._binary("div_s16", dst, a, b, count, div)

    def recip_u16(self, dst: int, a: int, count: int = 1) -> None:
        """Fixed-point reciprocal ``0xFFFF // x``; x = 0 saturates."""

        def recip(x):
            out = np.full_like(x, 0xFFFF)
            nonzero = x != 0
            np.floor_divide(np.uint16(0xFFFF), x, out=out, where=nonzero)
            return out

        self._unary("recip_u16", dst, a, count, recip)

    def exp_f16(self, dst: int, a: int, count: int = 1) -> None:
        """float16 exponential (computed in f32, rounded to f16)."""
        self._unary(
            "exp_f16", dst, a, count,
            lambda x: f16_to_bits(
                np.exp(bits_to_f16(x).astype(np.float32)).astype(np.float16)
            ),
        )

    def sin_fx(self, dst: int, a: int, count: int = 1) -> None:
        """Fixed-point sine: input Q16 turns, output Q15 in int16."""
        self._unary("sin_fx", dst, a, count, self._sin_q15)

    def cos_fx(self, dst: int, a: int, count: int = 1) -> None:
        """Fixed-point cosine: input Q16 turns, output Q15 in int16."""
        self._unary(
            "cos_fx", dst, a, count,
            lambda x: self._sin_q15((x.astype(np.uint32) + 0x4000).astype(np.uint16)),
        )

    @staticmethod
    def _sin_q15(x: np.ndarray) -> np.ndarray:
        angle = x.astype(np.float64) / 65536.0 * 2.0 * math.pi
        q15 = np.clip(np.rint(np.sin(angle) * 32767.0), -32768, 32767)
        return s16_to_u16(q15.astype(np.int16))

    # ------------------------------------------------------------------
    # Comparisons -> markers (Table 5)
    # ------------------------------------------------------------------
    def eq_16(self, marker: int, a: int, b: int, count: int = 1) -> None:
        """Mark positions where ``a == b``."""
        self._compare("eq_16", marker, a, b, count, np.equal)

    def gt_u16(self, marker: int, a: int, b: int, count: int = 1) -> None:
        """Mark positions where ``a > b`` (unsigned)."""
        self._compare("gt_u16", marker, a, b, count, np.greater)

    def lt_u16(self, marker: int, a: int, b: int, count: int = 1) -> None:
        """Mark positions where ``a < b`` (unsigned)."""
        self._compare("lt_u16", marker, a, b, count, np.less)

    def ge_u16(self, marker: int, a: int, b: int, count: int = 1) -> None:
        """Mark positions where ``a >= b`` (unsigned)."""
        self._compare("ge_u16", marker, a, b, count, np.greater_equal)

    def le_u16(self, marker: int, a: int, b: int, count: int = 1) -> None:
        """Mark positions where ``a <= b`` (unsigned)."""
        self._compare("le_u16", marker, a, b, count, np.less_equal)

    def lt_gf16(self, marker: int, a: int, b: int, count: int = 1) -> None:
        """Mark positions where ``a < b`` under GSI float16 interpretation."""
        self._compare(
            "lt_gf16", marker, a, b, count,
            lambda x, y: gf16_to_float(x) < gf16_to_float(y),
        )

    def eq_imm_16(self, marker: int, a: int, value: int, count: int = 1) -> None:
        """Mark positions where ``a == immediate``."""
        self._compute("eq_16", count)
        if self._functional:
            self.core.marker_write(marker, self.core.vr_read(a) == (value & 0xFFFF))

    def gt_imm_u16(self, marker: int, a: int, value: int, count: int = 1) -> None:
        """Mark positions where ``a > immediate`` (unsigned)."""
        self._compute("gt_u16", count)
        if self._functional:
            self.core.marker_write(marker, self.core.vr_read(a) > (value & 0xFFFF))

    # ------------------------------------------------------------------
    # Marker algebra and extraction
    # ------------------------------------------------------------------
    def and_mrk(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """``dst_marker = a_marker & b_marker``."""
        self._compute("and_16", count)
        if self._functional:
            self.core.marker_write(
                dst, self.core.marker_read(a) & self.core.marker_read(b)
            )

    def or_mrk(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """``dst_marker = a_marker | b_marker``."""
        self._compute("or_16", count)
        if self._functional:
            self.core.marker_write(
                dst, self.core.marker_read(a) | self.core.marker_read(b)
            )

    def not_mrk(self, dst: int, a: int, count: int = 1) -> None:
        """``dst_marker = ~a_marker``."""
        self._compute("not_16", count)
        if self._functional:
            self.core.marker_write(dst, ~self.core.marker_read(a))

    def reset_mrk(self, marker: int, count: int = 1) -> None:
        """Clear a marker register."""
        self.core.charge_command("cpy_imm", self.params.movement.cpy_imm, count)
        if self._functional:
            self.core.marker_write(
                marker, np.zeros(self.params.vr_length, dtype=bool)
            )

    def cpy_from_mrk_16(self, dst: int, marker: int, count: int = 1) -> None:
        """Materialize a marker register as a 0/1 vector in ``dst``."""
        self.core.charge_command("cpy_from_mrk", self.params.movement.cpy, count)
        if self._functional:
            self.core.vr_write(
                dst, self.core.marker_read(marker).astype(np.uint16)
            )

    def count_m(self, marker: int, count: int = 1) -> Optional[int]:
        """Count marked entries (returns None in timing-only mode)."""
        self._compute("count_m", count)
        if self._functional:
            return int(self.core.marker_read(marker).sum())
        return None

    def first_marked_index(self, marker: int, count: int = 1) -> Optional[int]:
        """CP-side scan for the first marked position via the RSP FIFO.

        Costs a ``count_m`` plus one serial element retrieval; returns
        -1 if nothing is marked.
        """
        cycles = self.params.compute.count_m + self.params.movement.pio_st_per_elem
        self.core.charge_command("first_marked", cycles, count, micro_ops=2)
        if self._functional:
            mask = self.core.marker_read(marker)
            hits = np.flatnonzero(mask)
            return int(hits[0]) if hits.size else -1
        return None

    def get_element(self, vr: int, index: int, count: int = 1) -> Optional[int]:
        """Serial retrieval of one VR element through the RSP FIFO."""
        self.core.charge_command(
            "rsp_get", self.params.movement.pio_st_per_elem, count, nbytes=2
        )
        if self._functional:
            if not 0 <= index < self.params.vr_length:
                raise GVMLError(f"element index {index} out of range")
            return int(self.core.vr_read(vr)[index])
        return None

    def set_element(self, vr: int, index: int, value: int, count: int = 1) -> None:
        """Parallel insertion of one element into a VR via the RSP FIFO."""
        self.core.charge_command(
            "rsp_set", self.params.movement.pio_ld_per_elem, count, nbytes=2
        )
        if self._functional:
            if not 0 <= index < self.params.vr_length:
                raise GVMLError(f"element index {index} out of range")
            data = self.core.vr_read(vr)
            data[index] = value & 0xFFFF
            self.core.vr_write(vr, data)

    # ------------------------------------------------------------------
    # Min / max (composites of compare + masked copy)
    # ------------------------------------------------------------------
    def max_u16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """Element-wise unsigned max (a compare plus a masked copy)."""
        cycles = self.params.compute.gt_u16 + self.params.movement.cpy
        self.core.charge_command("max_u16", cycles, count, micro_ops=2)
        if self._functional:
            self.core.vr_write(
                dst, np.maximum(self.core.vr_read(a), self.core.vr_read(b))
            )

    def min_u16(self, dst: int, a: int, b: int, count: int = 1) -> None:
        """Element-wise unsigned min."""
        cycles = self.params.compute.lt_u16 + self.params.movement.cpy
        self.core.charge_command("min_u16", cycles, count, micro_ops=2)
        if self._functional:
            self.core.vr_write(
                dst, np.minimum(self.core.vr_read(a), self.core.vr_read(b))
            )

    # ------------------------------------------------------------------
    # Subgroup reductions (Eq. 1 territory)
    # ------------------------------------------------------------------
    def _check_reduction_shape(self, group_size: int, subgroup_size: int) -> int:
        length = self.params.vr_length
        if group_size <= 0 or length % group_size != 0:
            raise GVMLError(f"group size {group_size} must divide the VR length")
        if subgroup_size <= 0 or group_size % subgroup_size != 0:
            raise GVMLError(
                f"subgroup size {subgroup_size} must divide group size {group_size}"
            )
        ratio = group_size // subgroup_size
        if ratio & (ratio - 1):
            raise GVMLError("group/subgroup ratio must be a power of two")
        return ratio

    def _subgrp_reduce(self, op_label: str, np_reduce, op_cycles: float,
                       dst: int, src: int, group_size: int,
                       subgroup_size: int, count: int, signed: bool) -> None:
        self._check_reduction_shape(group_size, subgroup_size)
        cycles = simulated_sg_add_cycles(
            group_size, subgroup_size, self.params, op_cycles=op_cycles
        )
        stages = int(math.log2(group_size // subgroup_size))
        self.core.charge_command(op_label, cycles, count,
                                 micro_ops=max(1, 4 * stages))
        if not self._functional:
            return
        data = self.core.vr_read(src)
        values = u16_to_s16(data).astype(np.int64) if signed else data.astype(np.int64)
        n_groups = self.params.vr_length // group_size
        per_subgroup = values.reshape(n_groups, group_size // subgroup_size,
                                      subgroup_size)
        reduced = np_reduce(per_subgroup, axis=1)
        out = np.zeros((n_groups, group_size), dtype=np.int64)
        out[:, :subgroup_size] = reduced
        flat = out.reshape(-1)
        if signed:
            result = s16_to_u16(flat.astype(np.int16))
        else:
            result = (flat & 0xFFFF).astype(np.uint16)
        self.core.vr_write(dst, result)

    def add_subgrp_s16(self, dst: int, src: int, group_size: int,
                       subgroup_size: int, count: int = 1) -> None:
        """Sum the subgroups of each group element-wise (int16, wraps).

        The result occupies the first subgroup of each group; remaining
        positions are cleared.  Cost follows the staged ladder the Eq. 1
        model was fitted against.
        """
        self._subgrp_reduce(
            "add_subgrp_s16", np.sum, self.params.compute.add_s16,
            dst, src, group_size, subgroup_size, count, signed=True,
        )

    def max_subgrp_u16(self, dst: int, src: int, group_size: int,
                       subgroup_size: int, count: int = 1) -> None:
        """Max across the subgroups of each group (unsigned)."""
        op_cycles = self.params.compute.gt_u16 + self.params.movement.cpy
        self._subgrp_reduce(
            "max_subgrp_u16", np.max, op_cycles,
            dst, src, group_size, subgroup_size, count, signed=False,
        )

    def min_subgrp_u16(self, dst: int, src: int, group_size: int,
                       subgroup_size: int, count: int = 1) -> None:
        """Min across the subgroups of each group (unsigned)."""
        op_cycles = self.params.compute.lt_u16 + self.params.movement.cpy
        self._subgrp_reduce(
            "min_subgrp_u16", np.min, op_cycles,
            dst, src, group_size, subgroup_size, count, signed=False,
        )
