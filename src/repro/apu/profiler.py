"""Microbenchmark-driven parameter derivation (paper Section 3.1).

The framework "can be extended to other compute-in-SRAM platforms that
follow the same system model by deriving the necessary parameters
through profiling".  :class:`DeviceProfiler` implements that procedure
against any device exposing the DMA/GVML interface: it runs sweeps of
microbenchmarks, regresses the linear cost models (DMA slopes and
intercepts, per-element PIO rates, lookup scaling) and measures the
constant-time operations, producing a fresh
:class:`~repro.core.params.DataMovementCosts` /
:class:`~repro.core.params.ComputeCosts` pair.

Profiling our own simulator recovers the Table 4/5 constants (inflated
by the simulator's second-order effects, exactly as profiling real
hardware would fold in its unmodeled behaviours) -- the round trip the
tests verify.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.params import APUParams, ComputeCosts, DataMovementCosts, DEFAULT_PARAMS
from .device import APUDevice

__all__ = ["DeviceProfiler", "linear_fit"]


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares (slope, intercept) for a cost sweep."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two paired samples")
    slope, intercept = np.polyfit(np.asarray(xs, dtype=np.float64),
                                  np.asarray(ys, dtype=np.float64), 1)
    return float(slope), float(intercept)


class DeviceProfiler:
    """Derive framework parameters by microbenchmarking a device."""

    def __init__(self,
                 device_factory: Optional[Callable[[], APUDevice]] = None):
        self.device_factory = device_factory or (
            lambda: APUDevice(DEFAULT_PARAMS, functional=False)
        )

    # ------------------------------------------------------------------
    # Measurement primitives
    # ------------------------------------------------------------------
    def _measure(self, charge: Callable[[APUDevice], None],
                 repeats: int = 1) -> float:
        """Cycles for one operation, averaged over ``repeats``."""
        device = self.device_factory()
        for _ in range(repeats):
            charge(device)
        return device.core.cycles / repeats

    def _sweep(self, charge_at: Callable[[APUDevice, int], None],
               sizes: Sequence[int]) -> Tuple[float, float]:
        """(slope, intercept) of cycles over a size sweep."""
        samples = [
            self._measure(lambda d, s=size: charge_at(d, s))
            for size in sizes
        ]
        return linear_fit(list(sizes), samples)

    # ------------------------------------------------------------------
    # Data movement (Table 4 derivation)
    # ------------------------------------------------------------------
    def profile_movement(self) -> DataMovementCosts:
        """Regress the full data-movement cost table."""
        dma_l4_l2 = self._sweep(
            lambda d, s: d.core.dma.l4_to_l2(None, s),
            [4096, 16384, 65536],
        )
        dma_l4_l3 = self._sweep(
            lambda d, s: d.core.dma.l4_to_l3(None, s),
            [65536, 262144, 1 << 20],
        )
        pio_ld = self._sweep(
            lambda d, s: d.core.dma.pio_ld(0, n=s), [64, 512, 4096],
        )
        pio_st = self._sweep(
            lambda d, s: d.core.dma.pio_st(None, 0, n=s), [64, 512, 4096],
        )
        lookup = self._sweep(
            lambda d, s: d.core.dma.lookup_16(0, None, s),
            [64, 1024, 8192],
        )
        shift = self._sweep(
            lambda d, s: d.core.gvml.shift_e(0, s), [4, 16, 64],
        )
        shift_quads = self._sweep(
            lambda d, s: d.core.gvml.shift_e4(0, s), [4, 16, 64],
        )
        issue = self._issue_overhead()
        return DataMovementCosts(
            dma_l4_l3_per_byte=dma_l4_l3[0],
            dma_l4_l3_init=dma_l4_l3[1],
            dma_l4_l2_per_byte=dma_l4_l2[0],
            dma_l4_l2_init=dma_l4_l2[1],
            dma_l2_l1=self._measure(lambda d: d.core.dma.l2_to_l1(0)),
            dma_l4_l1=self._measure(lambda d: d.core.dma.l4_to_l1_32k(0)),
            dma_l1_l4=self._measure(
                lambda d: d.core.dma.l1_to_l4_32k(None, 0)),
            pio_ld_per_elem=pio_ld[0],
            pio_st_per_elem=pio_st[0],
            lookup_per_entry=lookup[0],
            lookup_init=lookup[1],
            vr_load=self._measure(lambda d: d.core.gvml.load_16(0, 0)) - issue,
            vr_store=self._measure(lambda d: d.core.gvml.store_16(0, 0)) - issue,
            cpy=self._measure(lambda d: d.core.gvml.cpy_16(1, 0)) - issue,
            cpy_subgrp=self._measure(
                lambda d: d.core.gvml.cpy_subgrp_16_grp(1, 0, 1024)) - issue,
            cpy_imm=self._measure(lambda d: d.core.gvml.cpy_imm_16(0, 1)) - issue,
            shift_e_per_elem=shift[0],
            shift_e4_base=shift_quads[1] - issue,
            shift_e4_per_quad=shift_quads[0],
        )

    def _issue_overhead(self) -> float:
        """Estimate the per-command issue overhead from a known pair.

        Two commands with the same Table 5 body but issued separately
        vs folded into one ``count=2`` record would differ by exactly
        one issue; the simulator folds counts, so instead compare one
        op against its documented cost via the cheapest fixed-cost
        command (``cpy_imm``) assuming the smallest observed command is
        dominated by the table value.
        """
        one = self._measure(lambda d: d.core.gvml.cpy_imm_16(0, 1))
        # The cheapest conceivable broadcast is bounded below by the
        # write itself; attribute the remainder to issue.  On devices
        # without a published table this would come from a dedicated
        # no-op command; here cpy_imm's table value is known context.
        return max(0.0, one - DEFAULT_PARAMS.movement.cpy_imm)

    # ------------------------------------------------------------------
    # Computation (Table 5 derivation)
    # ------------------------------------------------------------------
    _COMPUTE_BENCHES = {
        "and_16": lambda c: c.gvml.and_16(2, 0, 1),
        "or_16": lambda c: c.gvml.or_16(2, 0, 1),
        "not_16": lambda c: c.gvml.not_16(2, 0),
        "xor_16": lambda c: c.gvml.xor_16(2, 0, 1),
        "ashift": lambda c: c.gvml.sr_imm_16(2, 0, 1),
        "add_u16": lambda c: c.gvml.add_u16(2, 0, 1),
        "add_s16": lambda c: c.gvml.add_s16(2, 0, 1),
        "sub_u16": lambda c: c.gvml.sub_u16(2, 0, 1),
        "sub_s16": lambda c: c.gvml.sub_s16(2, 0, 1),
        "popcnt_16": lambda c: c.gvml.popcnt_16(2, 0),
        "mul_u16": lambda c: c.gvml.mul_u16(2, 0, 1),
        "mul_s16": lambda c: c.gvml.mul_s16(2, 0, 1),
        "mul_f16": lambda c: c.gvml.mul_f16(2, 0, 1),
        "div_u16": lambda c: c.gvml.div_u16(2, 0, 1),
        "div_s16": lambda c: c.gvml.div_s16(2, 0, 1),
        "eq_16": lambda c: c.gvml.eq_16(0, 0, 1),
        "gt_u16": lambda c: c.gvml.gt_u16(0, 0, 1),
        "lt_u16": lambda c: c.gvml.lt_u16(0, 0, 1),
        "lt_gf16": lambda c: c.gvml.lt_gf16(0, 0, 1),
        "ge_u16": lambda c: c.gvml.ge_u16(0, 0, 1),
        "le_u16": lambda c: c.gvml.le_u16(0, 0, 1),
        "recip_u16": lambda c: c.gvml.recip_u16(2, 0),
        "exp_f16": lambda c: c.gvml.exp_f16(2, 0),
        "sin_fx": lambda c: c.gvml.sin_fx(2, 0),
        "cos_fx": lambda c: c.gvml.cos_fx(2, 0),
        "count_m": lambda c: c.gvml.count_m(0),
    }

    def profile_compute(self) -> ComputeCosts:
        """Measure every Table 5 operation."""
        issue = self._issue_overhead()
        measured = {
            name: self._measure(lambda d, fn=fn: fn(d.core)) - issue
            for name, fn in self._COMPUTE_BENCHES.items()
        }
        defaults = ComputeCosts()
        fields = {f.name for f in dataclasses.fields(ComputeCosts)}
        values = {name: measured.get(name, getattr(defaults, name))
                  for name in fields}
        return ComputeCosts(**values)

    # ------------------------------------------------------------------
    # Putting it together
    # ------------------------------------------------------------------
    def derive_params(self, base: APUParams = DEFAULT_PARAMS) -> APUParams:
        """A parameter bundle with profiled movement/compute tables."""
        return base.evolve(
            movement=self.profile_movement(),
            compute=self.profile_compute(),
        )

    def validation_report(self,
                          reference: APUParams = DEFAULT_PARAMS) -> Dict[str, float]:
        """Relative error of each profiled constant vs a reference table."""
        profiled = self.derive_params()
        report: Dict[str, float] = {}
        for field in dataclasses.fields(DataMovementCosts):
            ref = getattr(reference.movement, field.name)
            got = getattr(profiled.movement, field.name)
            if ref:
                report[f"movement.{field.name}"] = (got - ref) / ref
        for field in dataclasses.fields(ComputeCosts):
            ref = getattr(reference.compute, field.name)
            got = getattr(profiled.compute, field.name)
            if ref:
                report[f"compute.{field.name}"] = (got - ref) / ref
        return report
