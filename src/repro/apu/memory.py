"""The APU memory hierarchy (paper Fig. 3, highlighted in blue).

Four levels, as on the device:

* **L4** -- 16 GB device DRAM shared by the four cores, managed through a
  GDL-style handle allocator (:class:`DeviceDRAM`).
* **L3** -- 1 MB control-processor cache (:class:`CPCache`), the source
  for indexed lookups.
* **L2** -- 64 KB per-core scratchpad holding exactly one 32K x 16-bit
  vector, used as the DMA staging buffer (:class:`Scratchpad`).
* **L1** -- 3 MB per-core vector memory register file organized as 48
  background vector registers (:class:`VMRFile`).

These classes are purely functional stores; all cycle accounting happens
in the DMA engines and GVML (the units that move and touch the data).
Byte-traffic counters feed the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.params import APUParams, DEFAULT_PARAMS

__all__ = [
    "MemoryError_",
    "AllocationError",
    "MemHandle",
    "DeviceDRAM",
    "CPCache",
    "Scratchpad",
    "VMRFile",
]


class MemoryError_(Exception):
    """Base error for memory-hierarchy misuse (renamed to avoid builtins)."""


class AllocationError(MemoryError_):
    """Raised when device DRAM cannot satisfy an allocation."""


@dataclass(frozen=True)
class MemHandle:
    """A GDL-style handle into device DRAM: an allocation id plus offset.

    Mirrors ``gdl_mem_handle_t`` pointer arithmetic: ``handle + n``
    yields a handle ``n`` bytes further into the same allocation.
    """

    allocation_id: int
    offset: int = 0

    def __add__(self, nbytes: int) -> "MemHandle":
        if nbytes < 0:
            raise ValueError("handle offsets only move forward")
        return MemHandle(self.allocation_id, self.offset + int(nbytes))


class DeviceDRAM:
    """L4: device DRAM with a GDL-like aligned allocator.

    Allocations are backed lazily by NumPy byte buffers, so a 16 GB
    address space costs nothing until written.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_PARAMS.l4_bytes,
                 alignment: int = 512):
        self.capacity_bytes = int(capacity_bytes)
        self.alignment = int(alignment)
        self._buffers: Dict[int, np.ndarray] = {}
        self._sizes: Dict[int, int] = {}
        self._next_id = 0
        self.allocated_bytes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def alloc(self, nbytes: int) -> MemHandle:
        """Allocate ``nbytes`` of aligned device memory (``gdl_mem_alloc_aligned``)."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        aligned = -(-int(nbytes) // self.alignment) * self.alignment
        if self.allocated_bytes + aligned > self.capacity_bytes:
            raise AllocationError(
                f"device DRAM exhausted: {self.allocated_bytes + aligned} "
                f"> {self.capacity_bytes} bytes"
            )
        handle_id = self._next_id
        self._next_id += 1
        # Backing storage is created on first access, so huge address
        # ranges (the full 16 GB) cost nothing until touched.
        self._buffers[handle_id] = None
        self._sizes[handle_id] = aligned
        self.allocated_bytes += aligned
        return MemHandle(handle_id)

    def free(self, handle: MemHandle) -> None:
        """Release an allocation (``gdl_mem_free``)."""
        if handle.allocation_id not in self._buffers:
            raise AllocationError(f"double free or bad handle: {handle}")
        self.allocated_bytes -= self._sizes.pop(handle.allocation_id)
        del self._buffers[handle.allocation_id]

    def size_of(self, handle: MemHandle) -> int:
        """Remaining bytes from ``handle`` to the end of its allocation."""
        return self._sizes[handle.allocation_id] - handle.offset

    def write(self, handle: MemHandle, data: np.ndarray) -> None:
        """Copy a host array into device memory at ``handle``."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        buf = self._buffer(handle, raw.size)
        buf[handle.offset: handle.offset + raw.size] = raw
        self.bytes_written += raw.size

    def read(self, handle: MemHandle, nbytes: int,
             dtype: np.dtype = np.uint8) -> np.ndarray:
        """Copy ``nbytes`` out of device memory, reinterpreted as ``dtype``."""
        buf = self._buffer(handle, nbytes)
        raw = buf[handle.offset: handle.offset + nbytes].copy()
        self.bytes_read += nbytes
        return raw.view(dtype)

    def _buffer(self, handle: MemHandle, nbytes: int) -> np.ndarray:
        if handle.allocation_id not in self._buffers:
            raise MemoryError_(f"dangling handle: {handle}")
        size = self._sizes[handle.allocation_id]
        if handle.offset + nbytes > size:
            raise MemoryError_(
                f"access of {nbytes} bytes at offset {handle.offset} overruns "
                f"allocation of {size} bytes"
            )
        buf = self._buffers[handle.allocation_id]
        if buf is None:
            buf = np.zeros(size, dtype=np.uint8)
            self._buffers[handle.allocation_id] = buf
        return buf


class _BoundedBuffer:
    """A fixed-capacity byte store with overflow checking."""

    def __init__(self, capacity_bytes: int, name: str):
        self.capacity_bytes = int(capacity_bytes)
        self.name = name
        self._data = np.zeros(self.capacity_bytes, dtype=np.uint8)
        self.bytes_read = 0
        self.bytes_written = 0

    def write(self, offset: int, data: np.ndarray) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if offset < 0 or offset + raw.size > self.capacity_bytes:
            raise MemoryError_(
                f"{self.name} write of {raw.size} bytes at {offset} exceeds "
                f"{self.capacity_bytes}-byte capacity"
            )
        self._data[offset: offset + raw.size] = raw
        self.bytes_written += raw.size

    def read(self, offset: int, nbytes: int,
             dtype: np.dtype = np.uint8) -> np.ndarray:
        if offset < 0 or offset + nbytes > self.capacity_bytes:
            raise MemoryError_(
                f"{self.name} read of {nbytes} bytes at {offset} exceeds "
                f"{self.capacity_bytes}-byte capacity"
            )
        self.bytes_read += nbytes
        return self._data[offset: offset + nbytes].copy().view(dtype)


class CPCache(_BoundedBuffer):
    """L3: the 1 MB control-processor cache (lookup-table home)."""

    def __init__(self, params: APUParams = DEFAULT_PARAMS):
        super().__init__(params.l3_bytes, "L3")


class Scratchpad(_BoundedBuffer):
    """L2: the 64 KB per-core DMA staging scratchpad (one full vector)."""

    def __init__(self, params: APUParams = DEFAULT_PARAMS):
        super().__init__(params.l2_bytes, "L2")


class VMRFile:
    """L1: 48 background vector memory registers of 32K x 16-bit each.

    L1 <-> VR and L2 <-> L1 transfers operate only at full-vector
    granularity (Section 2.1.2), so the interface is slot-based.
    """

    def __init__(self, params: APUParams = DEFAULT_PARAMS):
        self.params = params
        self.num_slots = params.num_vmrs
        self.vector_length = params.vr_length
        self._slots: Dict[int, Optional[np.ndarray]] = {
            i: None for i in range(self.num_slots)
        }
        self.accesses = 0

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise MemoryError_(
                f"VMR slot {slot} out of range 0..{self.num_slots - 1}"
            )

    def store(self, slot: int, vector: np.ndarray) -> None:
        """Write one full vector into a VMR slot."""
        self._check(slot)
        arr = np.asarray(vector, dtype=np.uint16)
        if arr.shape != (self.vector_length,):
            raise MemoryError_(
                f"VMR stores are full-vector only: expected "
                f"({self.vector_length},), got {arr.shape}"
            )
        self._slots[slot] = arr.copy()
        self.accesses += 1

    def corrupt(self, slot: int, element: int, bit: int) -> None:
        """Flip one stored bit in place (single-event upset backdoor).

        A no-op on a never-written slot: there is no charge to disturb.
        Used by :mod:`repro.integrity` to model upsets striking data at
        rest in the background vector registers, the case the periodic
        scrub pass exists for.
        """
        self._check(slot)
        if not 0 <= element < self.vector_length:
            raise MemoryError_(
                f"element {element} out of range 0..{self.vector_length - 1}")
        if not 0 <= bit < 16:
            raise MemoryError_(f"bit {bit} out of range 0..15")
        vector = self._slots[slot]
        if vector is None:
            return
        vector[element] ^= np.uint16(1 << bit)

    def load(self, slot: int) -> np.ndarray:
        """Read one full vector from a VMR slot (zeros if never written)."""
        self._check(slot)
        self.accesses += 1
        vector = self._slots[slot]
        if vector is None:
            return np.zeros(self.vector_length, dtype=np.uint16)
        return vector.copy()
