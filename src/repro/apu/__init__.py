"""Functional + timing simulator of the GSI APU compute-in-SRAM device.

Layers, bottom-up:

* :mod:`repro.apu.bitproc` / :mod:`repro.apu.microcode` -- the bit-slice
  bank and Table 2 micro-operations, with bit-serial arithmetic built on
  them (functional ground truth for the vector ISA).
* :mod:`repro.apu.memory` -- the L4/L3/L2/L1 hierarchy.
* :mod:`repro.apu.dma` -- DMA engines, PIO, indexed lookup (Table 4 costs).
* :mod:`repro.apu.gvml` -- the vector math library (Table 5 costs).
* :mod:`repro.apu.core` / :mod:`repro.apu.device` -- cores and the
  four-core device with its GDL-style host interface.
* :mod:`repro.apu.energy` -- the calibrated board energy model.
"""

from .bitproc import BitProcessorArray, MicrocodeError
from .core import APUCore, NUM_MARKERS
from .device import APUDevice, TaskResult
from .dma import DMAController
from .energy import APUEnergyModel, EnergyBreakdown, categorize_op
from .gvml import GVML, GVMLError
from .memory import (
    AllocationError,
    CPCache,
    DeviceDRAM,
    MemHandle,
    MemoryError_,
    Scratchpad,
    VMRFile,
)
from .assembler import AssemblerError, assemble, run_program
from .profiler import DeviceProfiler, linear_fit
from .rvv import RVVError, RVVMachine

__all__ = [
    "APUCore",
    "APUDevice",
    "APUEnergyModel",
    "AllocationError",
    "AssemblerError",
    "assemble",
    "BitProcessorArray",
    "CPCache",
    "DMAController",
    "DeviceDRAM",
    "DeviceProfiler",
    "EnergyBreakdown",
    "GVML",
    "GVMLError",
    "MemHandle",
    "MemoryError_",
    "MicrocodeError",
    "NUM_MARKERS",
    "RVVError",
    "RVVMachine",
    "Scratchpad",
    "TaskResult",
    "VMRFile",
    "categorize_op",
    "linear_fit",
    "run_program",
]
