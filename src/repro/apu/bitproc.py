"""Bit-slice bank and bit-processor microarchitecture (paper Fig. 4, Table 2).

One physical bank stores 2048 16-bit elements of all 24 VRs in bit-slice
fashion: bit-slice ``t`` holds bit ``t`` of every element, and each
column of each bit-slice integrates a bit processor with 24 SRAM cells
(one per VR).  The microarchitectural state is:

* ``RL``  -- the per-bit-processor read latch, shape (16, columns);
* ``GHL`` -- one global horizontal latch per bit-slice row (OR-combining);
* ``GVL`` -- one global vertical latch per column (AND-combining);
* ``VR[i]`` -- the SRAM cells themselves, shape (24, 16, columns).

The operations implemented here are exactly the Table 2 set: reads into
RL (with optional AND of two VRs and AND/OR/XOR combining with a latch
source), writes back through WBL/WBLB, and latch broadcasts.  A 16-bit
slice mask restricts any operation to a subset of bit-slices, which is
what makes bit-serial arithmetic (:mod:`repro.apu.microcode`)
expressible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["BitProcessorArray", "LATCH_SOURCES", "MicrocodeError"]

#: Latch sources a read can combine with (Table 2's ``L``).
LATCH_SOURCES = ("ghl", "gvl", "n", "s", "e", "w")

_OPS = {
    "and": np.logical_and,
    "or": np.logical_or,
    "xor": np.logical_xor,
}


class MicrocodeError(Exception):
    """Raised on malformed micro-operations."""


class BitProcessorArray:
    """A functional model of one bank's bit processors.

    Parameters
    ----------
    columns:
        Number of bit-processor columns (2048 on the device; tests use
        smaller arrays).
    num_vrs:
        Number of vector registers stored in the cells (24 on device).
    element_bits:
        Bits per element, i.e. number of bit-slices (16 on device).
    """

    def __init__(self, columns: int = 2048, num_vrs: int = 24,
                 element_bits: int = 16):
        if columns <= 0 or num_vrs <= 0 or element_bits <= 0:
            raise MicrocodeError("array dimensions must be positive")
        self.columns = columns
        self.num_vrs = num_vrs
        self.element_bits = element_bits
        # SRAM cells: [vr][bit-slice][column]
        self.cells = np.zeros((num_vrs, element_bits, columns), dtype=bool)
        # Read latches: [bit-slice][column]
        self.rl = np.zeros((element_bits, columns), dtype=bool)
        # Global horizontal latch: one per bit-slice row.
        self.ghl = np.zeros(element_bits, dtype=bool)
        # Global vertical latch: one per column.
        self.gvl = np.zeros(columns, dtype=bool)
        #: Count of issued micro-operations (for instruction statistics).
        self.micro_ops = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _slice_rows(self, mask: int) -> np.ndarray:
        if not 0 <= mask < (1 << self.element_bits):
            raise MicrocodeError(f"bad {self.element_bits}-bit slice mask: {mask:#x}")
        return np.array(
            [bool((mask >> t) & 1) for t in range(self.element_bits)], dtype=bool
        )

    def _check_vr(self, vr: int) -> None:
        if not 0 <= vr < self.num_vrs:
            raise MicrocodeError(f"VR index {vr} out of range 0..{self.num_vrs - 1}")

    def _latch_plane(self, source: str) -> np.ndarray:
        """The (bits, columns) value plane a latch source presents to reads."""
        if source == "ghl":
            return np.broadcast_to(self.ghl[:, None], self.rl.shape)
        if source == "gvl":
            return np.broadcast_to(self.gvl[None, :], self.rl.shape)
        if source in ("n", "s", "e", "w"):
            return self._neighbor_plane(source)
        raise MicrocodeError(f"unknown latch source {source!r}")

    def _neighbor_plane(self, direction: str) -> np.ndarray:
        """RL values of the neighboring bit processors.

        North/south neighbors live in the adjacent bit-slice (bit index
        +1 / -1); east/west neighbors in the adjacent column.  Edges
        read zero.
        """
        plane = np.zeros_like(self.rl)
        if direction == "n":  # neighbor at bit index + 1
            plane[:-1, :] = self.rl[1:, :]
        elif direction == "s":  # neighbor at bit index - 1
            plane[1:, :] = self.rl[:-1, :]
        elif direction == "e":  # neighbor at column + 1
            plane[:, :-1] = self.rl[:, 1:]
        elif direction == "w":  # neighbor at column - 1
            plane[:, 1:] = self.rl[:, :-1]
        return plane

    # ------------------------------------------------------------------
    # Table 2 read operations
    # ------------------------------------------------------------------
    def rl_read(self, vr: int, mask: int = 0xFFFF) -> None:
        """``RL = VR[vrs0]``."""
        self._check_vr(vr)
        rows = self._slice_rows(mask)
        self.rl[rows] = self.cells[vr][rows]
        self.micro_ops += 1

    def rl_read_and(self, vr0: int, vr1: int, mask: int = 0xFFFF) -> None:
        """``RL = VR[vrs0, vrs1]`` -- read and bitwise AND of two VRs."""
        self._check_vr(vr0)
        self._check_vr(vr1)
        rows = self._slice_rows(mask)
        self.rl[rows] = self.cells[vr0][rows] & self.cells[vr1][rows]
        self.micro_ops += 1

    def rl_from_latch(self, source: str, mask: int = 0xFFFF) -> None:
        """``RL = L`` -- load RL from a latch source."""
        rows = self._slice_rows(mask)
        self.rl[rows] = self._latch_plane(source)[rows]
        self.micro_ops += 1

    def rl_op_vr(self, op: str, vr: int, mask: int = 0xFFFF) -> None:
        """``RL op= VR[vrs0]``."""
        self._check_vr(vr)
        fn = self._op(op)
        rows = self._slice_rows(mask)
        self.rl[rows] = fn(self.rl[rows], self.cells[vr][rows])
        self.micro_ops += 1

    def rl_op_latch(self, op: str, source: str, mask: int = 0xFFFF) -> None:
        """``RL op= L``."""
        fn = self._op(op)
        rows = self._slice_rows(mask)
        self.rl[rows] = fn(self.rl[rows], self._latch_plane(source)[rows])
        self.micro_ops += 1

    def rl_read_vr_op_latch(self, vr: int, op: str, source: str,
                            mask: int = 0xFFFF) -> None:
        """``RL = VR[vrs0] op L``."""
        self._check_vr(vr)
        fn = self._op(op)
        rows = self._slice_rows(mask)
        self.rl[rows] = fn(self.cells[vr][rows], self._latch_plane(source)[rows])
        self.micro_ops += 1

    def rl_op_vr_op_latch(self, op1: str, vr: int, op2: str, source: str,
                          mask: int = 0xFFFF) -> None:
        """``RL op= VR[vrs0] op L``."""
        self._check_vr(vr)
        fn1, fn2 = self._op(op1), self._op(op2)
        rows = self._slice_rows(mask)
        operand = fn2(self.cells[vr][rows], self._latch_plane(source)[rows])
        self.rl[rows] = fn1(self.rl[rows], operand)
        self.micro_ops += 1

    @staticmethod
    def _op(op: str):
        try:
            return _OPS[op]
        except KeyError as exc:
            raise MicrocodeError(f"unknown boolean op {op!r}") from exc

    # ------------------------------------------------------------------
    # Table 2 write operation
    # ------------------------------------------------------------------
    def vr_write(self, vr: int, mask: int = 0xFFFF, negate: bool = False) -> None:
        """``VR[vrs0] = RL`` through WBL, or its negation through WBLB."""
        self._check_vr(vr)
        rows = self._slice_rows(mask)
        value = ~self.rl[rows] if negate else self.rl[rows]
        self.cells[vr][rows] = value
        self.micro_ops += 1

    # ------------------------------------------------------------------
    # Global line broadcasts
    # ------------------------------------------------------------------
    def ghl_from_rl(self, mask: int = 0xFFFF,
                    columns: Optional[np.ndarray] = None) -> None:
        """Drive each selected row's GHL from its RLs (OR of all drivers)."""
        rows = self._slice_rows(mask)
        contributing = self.rl if columns is None else self.rl[:, columns]
        self.ghl[rows] = contributing[rows].any(axis=-1)
        self.micro_ops += 1

    def gvl_from_rl(self, mask: int = 0xFFFF) -> None:
        """Drive each column's GVL from the selected rows' RLs (AND)."""
        rows = self._slice_rows(mask)
        if not rows.any():
            raise MicrocodeError("GVL broadcast needs at least one driving row")
        self.gvl[:] = self.rl[rows].all(axis=0)
        self.micro_ops += 1

    # ------------------------------------------------------------------
    # Fault injection (not microcode; single-event-upset backdoor)
    # ------------------------------------------------------------------
    def flip_cell(self, vr: int, bit_slice: int, column: int) -> None:
        """Invert one SRAM cell: bit ``bit_slice`` of element ``column``.

        Models a single-event upset striking one bit-processor cell; at
        the element level this is a ``+/- 2**bit_slice`` perturbation of
        ``read_u16(vr)[column]``, which is what the ABFT checksums of
        :mod:`repro.integrity` are built to catch.
        """
        self._check_vr(vr)
        if not 0 <= bit_slice < self.element_bits:
            raise MicrocodeError(
                f"bit-slice {bit_slice} out of range 0..{self.element_bits - 1}")
        if not 0 <= column < self.columns:
            raise MicrocodeError(
                f"column {column} out of range 0..{self.columns - 1}")
        self.cells[vr, bit_slice, column] = ~self.cells[vr, bit_slice, column]

    # ------------------------------------------------------------------
    # Test / host access helpers (not microcode; PIO-style backdoor)
    # ------------------------------------------------------------------
    def load_u16(self, vr: int, values: np.ndarray) -> None:
        """Backdoor-load uint16 element values into a VR's cells."""
        self._check_vr(vr)
        arr = np.asarray(values, dtype=np.uint16)
        if arr.shape != (self.columns,):
            raise MicrocodeError(
                f"expected ({self.columns},) elements, got {arr.shape}"
            )
        for t in range(self.element_bits):
            self.cells[vr, t] = ((arr >> t) & 1).astype(bool)

    def read_u16(self, vr: int) -> np.ndarray:
        """Backdoor-read a VR's cells as uint16 element values."""
        self._check_vr(vr)
        out = np.zeros(self.columns, dtype=np.uint16)
        for t in range(self.element_bits):
            out |= self.cells[vr, t].astype(np.uint16) << t
        return out
