"""The APU platform: host-visible device with four cores (paper Fig. 3a).

:class:`APUDevice` ties together the shared L4 device DRAM, the shared
L3 control-processor cache, and four :class:`~repro.apu.core.APUCore`
vector engines.  Its host-facing surface mirrors the GDL library used by
the paper's host programs (Fig. 5a): aligned allocation, host<->device
copies, and task invocation.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..core.params import APUParams, DEFAULT_PARAMS
from .core import APUCore
from .memory import CPCache, DeviceDRAM, MemHandle

__all__ = ["APUDevice", "APUDevicePool", "DeviceUnavailableError",
           "TaskResult"]


class DeviceUnavailableError(RuntimeError):
    """Raised when a task is invoked on a device marked unhealthy.

    The fault-injection layer (:mod:`repro.faults`) marks simulated
    devices down during scripted outages; host code that bypasses the
    serving scheduler's failover sees the failure it would see from a
    real dark device: the task never runs.
    """


class TaskResult:
    """Outcome of a device task: the kernel's return value plus timing."""

    def __init__(self, value, makespan_cycles: float, total_cycles: float,
                 params: APUParams):
        self.value = value
        self.makespan_cycles = makespan_cycles
        self.total_cycles = total_cycles
        self._params = params

    @property
    def latency_us(self) -> float:
        """Task makespan in microseconds (cores run in parallel)."""
        return self._params.cycles_to_us(self.makespan_cycles)

    @property
    def latency_ms(self) -> float:
        """Task makespan in milliseconds."""
        return self._params.cycles_to_ms(self.makespan_cycles)


class APUDevice:
    """A four-core APU with its shared memory, GDL-style host interface.

    Parameters
    ----------
    params:
        Architecture parameters (evolve a copy for DSE).
    functional:
        Functional (NumPy data + cycles) vs timing-only execution.
    collector:
        Optional :class:`repro.obs.TraceCollector` that receives this
        device's trace events regardless of the globally active one;
        ``None`` (default) defers to ``repro.obs.collecting()``.
    core_id_base:
        Offset added to every core id, so that trace events from a pool
        of devices (one per corpus shard) land on distinct Perfetto
        process rows instead of colliding on cores 0..3.
    """

    def __init__(self, params: APUParams = DEFAULT_PARAMS,
                 functional: bool = True, collector=None,
                 core_id_base: int = 0):
        self.params = params
        self.functional = functional
        self.core_id_base = core_id_base
        self.l4 = DeviceDRAM(params.l4_bytes)
        self.l3 = CPCache(params)
        self.cores: List[APUCore] = [
            APUCore(params, device=self, functional=functional,
                    core_id=core_id_base + i)
            for i in range(params.num_cores)
        ]
        #: Health flag used by the fault-injection layer: ``run_task``
        #: refuses to execute on an unhealthy device, and scatter-gather
        #: retrievers skip it (degraded mode).
        self.healthy = True
        self.failure_reason = ""
        if collector is not None:
            self.attach_collector(collector)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail(self, reason: str = "injected fault") -> None:
        """Mark the device dark (scripted outage / hard failure)."""
        self.healthy = False
        self.failure_reason = reason

    def restore(self) -> None:
        """Bring the device back after a transient outage."""
        self.healthy = True
        self.failure_reason = ""

    def attach_collector(self, collector) -> None:
        """Route every core's trace events to ``collector``."""
        for core in self.cores:
            core.trace.collector = collector

    def attach_sdc(self, injector) -> None:
        """Route every core's functional data paths through ``injector``.

        ``injector`` is a
        :class:`repro.integrity.inject.MemoryFaultInjector` (or ``None``
        to detach): once attached, VR writes and DMA payloads on every
        core are subject to its scripted bit flips and stuck-at cells.
        """
        for core in self.cores:
            core.sdc = injector

    @property
    def core(self) -> APUCore:
        """Core 0, for single-core kernels."""
        return self.cores[0]

    # ------------------------------------------------------------------
    # GDL-style host interface (Fig. 5a)
    # ------------------------------------------------------------------
    def mem_alloc_aligned(self, nbytes: int) -> MemHandle:
        """``gdl_mem_alloc_aligned``: allocate device DRAM."""
        return self.l4.alloc(nbytes)

    def mem_free(self, handle: MemHandle) -> None:
        """``gdl_mem_free``: release device DRAM."""
        self.l4.free(handle)

    def mem_cpy_to_dev(self, handle: MemHandle, host_array: np.ndarray) -> None:
        """``gdl_mem_cpy_to_dev``: host -> device DRAM copy."""
        self.l4.write(handle, np.ascontiguousarray(host_array))

    def mem_cpy_from_dev(self, handle: MemHandle, nbytes: int,
                         dtype=np.uint16) -> np.ndarray:
        """``gdl_mem_cpy_from_dev``: device DRAM -> host copy."""
        return self.l4.read(handle, nbytes, dtype)

    def run_task(self, task: Callable, *args, **kwargs) -> TaskResult:
        """``gdl_run_task_timeout``: invoke a device kernel and time it.

        The kernel receives this device as its first argument.  Timing
        is the *increase* in per-core cycles during the task; the
        makespan assumes cores execute independent work in parallel.
        """
        if not self.healthy:
            raise DeviceUnavailableError(
                f"device is down ({self.failure_reason or 'unknown'})")
        before = [core.cycles for core in self.cores]
        value = task(self, *args, **kwargs)
        deltas = [core.cycles - start for core, start in zip(self.cores, before)]
        return TaskResult(
            value=value,
            makespan_cycles=max(deltas) if deltas else 0.0,
            total_cycles=sum(deltas),
            params=self.params,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def makespan_cycles(self) -> float:
        """Busiest core's cumulative cycles."""
        return max(core.cycles for core in self.cores)

    @property
    def total_cycles(self) -> float:
        """Sum of all cores' cycles."""
        return sum(core.cycles for core in self.cores)

    @property
    def micro_instructions(self) -> int:
        """Total microcode instructions issued across cores (Table 6)."""
        return sum(core.micro_instructions for core in self.cores)

    def reset_traces(self) -> None:
        """Zero every core's cycle trace and instruction counter."""
        for core in self.cores:
            core.reset_trace()


class APUDevicePool:
    """A rack of independent simulated APUs, one per corpus shard.

    Each device gets a disjoint ``core_id`` range
    (``device_id * num_cores + core``), so a shared collector separates
    the devices into distinct Perfetto process rows -- the multi-device
    analogue of the single-device core split.
    """

    def __init__(self, n_devices: int, params: APUParams = DEFAULT_PARAMS,
                 functional: bool = True, collector=None):
        if not isinstance(n_devices, int) or isinstance(n_devices, bool) \
                or n_devices < 1:
            raise ValueError(
                f"device pool needs an integer n_devices >= 1, "
                f"got {n_devices!r}")
        self.params = params
        self.devices: List[APUDevice] = [
            APUDevice(params, functional=functional, collector=collector,
                      core_id_base=i * params.num_cores)
            for i in range(n_devices)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, device_id: int) -> APUDevice:
        return self.devices[device_id]

    def attach_collector(self, collector) -> None:
        """Route every device's trace events to ``collector``."""
        for device in self.devices:
            device.attach_collector(collector)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def mark_down(self, device_id: int,
                  reason: str = "injected fault") -> None:
        """Take one device out of service."""
        self.devices[device_id].fail(reason)

    def mark_up(self, device_id: int) -> None:
        """Return a failed device to service."""
        self.devices[device_id].restore()

    def live_ids(self) -> List[int]:
        """Indices of the devices currently in service."""
        return [i for i, device in enumerate(self.devices) if device.healthy]

    @property
    def makespan_cycles(self) -> float:
        """Busiest device's makespan (devices run in parallel)."""
        return max(device.makespan_cycles for device in self.devices)

    @property
    def total_cycles(self) -> float:
        """Sum of all devices' core cycles."""
        return sum(device.total_cycles for device in self.devices)
