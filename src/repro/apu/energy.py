"""APU power and energy model (paper Section 5.3.5, Fig. 15).

The paper measures board energy with a TI UCD9090 voltage monitor and
Renesas power modules, and reports the retrieval-energy breakdown at
200 GB as: static 71.4%, compute 24.7%, DRAM 2.7%, other 1.1%, cache
0.005%.  This model reproduces that accounting:

* **static** -- board static power integrated over elapsed time;
* **compute** -- per-cycle dynamic energy of the bit-processor array
  while vector commands execute;
* **dram** -- per-byte energy of off-chip traffic (the HBM model in
  :mod:`repro.hbm` can refine this);
* **cache** -- per-access energy of L1/L2 full-vector movement;
* **other** -- PCIe/CP background power integrated over elapsed time.

The constants are calibrated so the 200 GB RAG retrieval point lands on
the paper's split (see DESIGN.md section 4); the same constants are then
used unchanged everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.estimator import LatencyEstimator
from ..core.params import APUParams, DEFAULT_PARAMS

__all__ = ["EnergyBreakdown", "APUEnergyModel", "categorize_op"]

#: Table 5 / GVML operations whose cycles count as bit-processor compute.
_COMPUTE_OPS = {
    "and_16", "or_16", "not_16", "xor_16", "ashift", "add_u16", "add_s16",
    "sub_u16", "sub_s16", "popcnt_16", "mul_u16", "mul_s16", "mul_f16",
    "div_u16", "div_s16", "eq_16", "gt_u16", "lt_u16", "lt_gf16", "ge_u16",
    "le_u16", "recip_u16", "exp_f16", "sin_fx", "cos_fx", "count_m",
    "add_f16", "add_gf16", "mul_gf16",
    "add_subgrp_s16", "max_subgrp_u16", "min_subgrp_u16", "max_u16",
    "min_u16", "create_grp_index", "first_marked",
}

#: Operations that move full vectors inside the SRAM hierarchy.
_SRAM_OPS = {
    "load", "store", "load_32", "store_32", "cpy", "cpy_msk", "cpy_from_mrk",
    "cpy_imm", "cpy_subgrp", "shift_e", "shift_e4", "dma_l2_l1", "dma_l1_l2",
    "rsp_get", "rsp_set",
}

#: Operations that touch device DRAM.
_DRAM_OPS = {
    "dma_l4_l2", "dma_l2_l4", "dma_l4_l3", "dma_l4_l1", "dma_l1_l4",
    "pio_ld", "pio_st", "lookup",
}


def categorize_op(name: str) -> str:
    """Map a trace op name to an energy category."""
    if name in _COMPUTE_OPS:
        return "compute"
    if name in _SRAM_OPS:
        return "sram"
    if name in _DRAM_OPS:
        return "dram"
    return "other"


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per category, mirroring the paper's Fig. 15 split."""

    static_j: float
    compute_j: float
    dram_j: float
    cache_j: float
    other_j: float

    @property
    def total_j(self) -> float:
        """Total energy in joules."""
        return (self.static_j + self.compute_j + self.dram_j
                + self.cache_j + self.other_j)

    def fractions(self) -> Dict[str, float]:
        """Per-category fraction of the total (sums to 1)."""
        total = self.total_j
        if total <= 0:
            return {k: 0.0 for k in ("static", "compute", "dram", "cache", "other")}
        return {
            "static": self.static_j / total,
            "compute": self.compute_j / total,
            "dram": self.dram_j / total,
            "cache": self.cache_j / total,
            "other": self.other_j / total,
        }


@dataclass(frozen=True)
class APUEnergyModel:
    """Calibrated energy coefficients for the GSI Leda-E board."""

    #: Board static power (W): always-on SRAM arrays, clock tree, regulators.
    static_power_w: float = 10.0
    #: Background PCIe / control-processor power (W) -> "other".
    io_power_w: float = 0.154
    #: Dynamic energy per cycle while vector commands execute (J), all
    #: four cores' bit-processor arrays switching.
    compute_energy_per_cycle_j: float = 7.8e-9
    #: Off-chip DRAM access energy per byte (J); HBM2e-class.
    dram_energy_per_byte_j: float = 13.3e-12
    #: Energy per full-vector SRAM (L1/L2/VR) access (J).
    sram_access_energy_j: float = 1.5e-9

    def from_trace(self, trace: LatencyEstimator, dram_bytes: float = 0.0,
                   params: Optional[APUParams] = None) -> EnergyBreakdown:
        """Energy breakdown for a recorded execution trace.

        ``dram_bytes`` is the off-chip traffic of the run (from the
        memory-system counters or the HBM model); it is kept explicit
        because the trace records cycles, not bytes.
        """
        params = params or trace.params or DEFAULT_PARAMS
        elapsed_s = trace.total_cycles / params.clock_hz

        compute_cycles = 0.0
        sram_accesses = 0
        for record in trace.records:
            category = categorize_op(record.name)
            if category == "compute":
                compute_cycles += record.total_cycles
            elif category == "sram":
                sram_accesses += record.count
        return EnergyBreakdown(
            static_j=self.static_power_w * elapsed_s,
            compute_j=self.compute_energy_per_cycle_j * compute_cycles,
            dram_j=self.dram_energy_per_byte_j * dram_bytes,
            cache_j=self.sram_access_energy_j * sram_accesses,
            other_j=self.io_power_w * elapsed_s,
        )

    def from_phases(self, elapsed_s: float, compute_cycles: float,
                    dram_bytes: float, sram_accesses: float) -> EnergyBreakdown:
        """Energy breakdown from pre-aggregated phase statistics.

        Used by the full-scale latency programs, which model loops as
        folded counts rather than materialized traces.
        """
        return EnergyBreakdown(
            static_j=self.static_power_w * elapsed_s,
            compute_j=self.compute_energy_per_cycle_j * compute_cycles,
            dram_j=self.dram_energy_per_byte_j * dram_bytes,
            cache_j=self.sram_access_energy_j * sram_accesses,
            other_j=self.io_power_w * elapsed_s,
        )
