"""End-to-end RAG pipelines (paper Fig. 14 and Section 5.3.3).

A pipeline pairs a retriever with the shared generation model; the
reported metric is **time-to-interactive** (time to first token):
retrieval latency plus generator prefill, queries averaged offline.
:func:`fig14_comparison` assembles the full platform matrix the figure
plots (CPU, GPU, APU without optimizations, +opt1, +opt1+2, all opts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .corpus import CorpusSpec, MiniCorpus, PAPER_CORPORA
from .generation import GenerationModel
from .retrieval import APURetriever, CPURetriever, GPURetriever

__all__ = ["RAGPipeline", "Fig14Entry", "fig14_comparison"]


class RAGPipeline:
    """Retrieval + generation with the Fig. 14 timing convention."""

    def __init__(self, retriever, generator: GenerationModel = None):
        self.retriever = retriever
        self.generator = generator or GenerationModel()

    def time_to_interactive(self, corpus: CorpusSpec, k: int = 5) -> float:
        """Seconds from question to first generated token."""
        retrieval = self.retriever.retrieval_seconds(corpus, k)
        return retrieval + self.generator.prefill_seconds()

    def retrieval_fraction(self, corpus: CorpusSpec, k: int = 5) -> float:
        """Retrieval share of the end-to-end latency (Fig. 14 narrative)."""
        retrieval = self.retriever.retrieval_seconds(corpus, k)
        return retrieval / (retrieval + self.generator.prefill_seconds())

    def answer(self, corpus: MiniCorpus, question_embedding: np.ndarray,
               k: int = 5) -> List[int]:
        """Functional path: retrieve the supporting chunk indices."""
        return self.retriever.retrieve(corpus, question_embedding, k)


@dataclass(frozen=True)
class Fig14Entry:
    """One platform's bars across the three corpus scales."""

    platform: str
    retrieval_ms: Dict[str, float]
    ttft_ms: Dict[str, float]


def fig14_comparison(corpora: Dict[str, CorpusSpec] = None,
                     generator: GenerationModel = None) -> List[Fig14Entry]:
    """The Fig. 14 platform matrix.

    APU optimization stages follow Section 5.3.4: opt1 alone removes
    the output-movement bottleneck (modeled as the optimized kernel
    with the unoptimized chunked embedding stream); opt1+2 adds the
    coalesced stream; all three add the broadcast-friendly query
    staging.  The unoptimized baseline and the all-opts point are the
    two Table 8 columns.
    """
    corpora = corpora or PAPER_CORPORA
    generator = generator or GenerationModel()

    def entry(platform: str, retriever) -> Fig14Entry:
        pipeline = RAGPipeline(retriever, generator)
        retrieval = {}
        ttft = {}
        for label, spec in corpora.items():
            retrieval[label] = retriever.retrieval_seconds(spec) * 1e3
            ttft[label] = pipeline.time_to_interactive(spec) * 1e3
        return Fig14Entry(platform, retrieval, ttft)

    from ..hbm import make_hbm2e

    opt1 = APURetriever(optimized=True)
    # opt1 alone: optimized mapping but unoptimized (chunked) stream.
    opt1_breakdowns = {}
    for label, spec in corpora.items():
        optimized = opt1.latency_breakdown(spec)
        chunked = make_hbm2e().transfer_seconds(spec.embedding_bytes, "chunked")
        opt1_breakdowns[label] = (
            optimized.total - optimized.load_embedding + chunked
            + 0.05 * optimized.calc_distance  # residual misalignment
        )

    class _Opt1Retriever:
        """APU with only communication-aware reduction mapping."""

        @staticmethod
        def retrieval_seconds(spec: CorpusSpec, k: int = 5) -> float:
            del k
            return opt1_breakdowns[spec.label]

    entries = [
        entry("cpu", CPURetriever()),
        entry("gpu", GPURetriever()),
        entry("apu_no_opt", APURetriever(optimized=False)),
        entry("apu_opt1", _Opt1Retriever()),
        entry("apu_all_opts", APURetriever(optimized=True)),
    ]
    return entries
