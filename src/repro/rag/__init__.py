"""Retrieval-augmented generation on compute-in-SRAM (paper Section 5.3)."""

from .batching import BatchThroughput, BatchedAPURetrieval
from .corpus import CorpusSpec, MiniCorpus, PAPER_CORPORA
from .energy import RetrievalEnergyPoint, apu_retrieval_energy, fig15_energy_comparison
from .generation import GenerationModel, LLAMA31_8B_PARAMS
from .pipeline import Fig14Entry, RAGPipeline, fig14_comparison
from .retrieval import APURetriever, CPURetriever, GPURetriever, RetrievalBreakdown
from .topk import apu_topk, topk_aggregation_cycles

__all__ = [
    "APURetriever",
    "BatchThroughput",
    "BatchedAPURetrieval",
    "CPURetriever",
    "CorpusSpec",
    "Fig14Entry",
    "GPURetriever",
    "GenerationModel",
    "LLAMA31_8B_PARAMS",
    "MiniCorpus",
    "PAPER_CORPORA",
    "RAGPipeline",
    "RetrievalBreakdown",
    "RetrievalEnergyPoint",
    "apu_retrieval_energy",
    "apu_topk",
    "fig14_comparison",
    "fig15_energy_comparison",
    "topk_aggregation_cycles",
]
