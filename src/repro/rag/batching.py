"""Multi-query retrieval batching (an extension beyond the paper).

The paper evaluates single-query time-to-interactive.  A serving system
also cares about throughput, and the APU's structure makes batching
nearly free on the dominant stage: in the dim-major distance sweep the
embedding stream is shared across queries, so a batch of B queries pays
the stream once and only replicates the MAC chain B times.  The CPU and
GPU scans, by contrast, re-read (CPU) or re-stream (GPU compute) the
corpus per query unless they block for cache reuse.

:class:`BatchedAPURetrieval` models this: amortized embedding movement,
per-query compute, per-query top-k.  Functional batching simply loops
the exact retriever (correctness is per-query identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.params import APUParams, DEFAULT_PARAMS
from .corpus import CorpusSpec, MiniCorpus
from .retrieval import APURetriever
from .topk import topk_aggregation_cycles

__all__ = ["BatchThroughput", "BatchedAPURetrieval"]


@dataclass(frozen=True)
class BatchThroughput:
    """Throughput report for one batch size."""

    batch_size: int
    batch_seconds: float

    @property
    def per_query_seconds(self) -> float:
        """Amortized latency per query."""
        return self.batch_seconds / self.batch_size

    @property
    def queries_per_second(self) -> float:
        """Sustained retrieval throughput."""
        return self.batch_size / self.batch_seconds


class BatchedAPURetrieval:
    """Batch-aware latency model over the optimized APU retriever."""

    def __init__(self, params: APUParams = DEFAULT_PARAMS):
        self.params = params
        self.retriever = APURetriever(optimized=True, params=params)

    def batch_latency(self, corpus: CorpusSpec, batch_size: int,
                      k: int = 5) -> BatchThroughput:
        """Latency of serving ``batch_size`` queries together.

        The embedding stream and the per-vector DMA are paid once; the
        query staging, MAC chain and top-k replicate per query.
        """
        if not isinstance(batch_size, (int, np.integer)) \
                or isinstance(batch_size, bool) or batch_size < 1:
            raise ValueError(
                f"batch size must be an integer >= 1, got {batch_size!r}")
        single = self.retriever.latency_breakdown(corpus, k)
        cyc = 1.0 / self.params.clock_hz
        comp, mv = self.params.compute, self.params.movement
        issue = self.params.effects.vcu_issue_cycles

        # Shared: the stream itself (load_embedding) plus the DMA part
        # of calc_distance.  Per-query: the MAC chain on each resident
        # vector, the query staging, the aggregation, the return.
        blocks = -(-corpus.n_chunks // self.params.vr_length)
        vectors = blocks * corpus.dim
        per_vector_compute = (mv.cpy_imm + comp.mul_f16 + comp.add_s16
                              + 3 * issue)
        shared_distance = single.calc_distance - (
            -(-vectors // self.params.num_cores) * per_vector_compute * cyc
        )
        per_query = (
            single.load_query
            + (-(-vectors // self.params.num_cores)
               * per_vector_compute * cyc)
            + topk_aggregation_cycles(corpus.n_chunks, k, self.params) * cyc
            + single.return_topk
        )
        total = single.load_embedding + shared_distance \
            + batch_size * per_query
        return BatchThroughput(batch_size=batch_size, batch_seconds=total)

    def throughput_curve(self, corpus: CorpusSpec,
                         batch_sizes=(1, 2, 4, 8, 16, 32),
                         k: int = 5) -> List[BatchThroughput]:
        """Throughput across batch sizes."""
        return [self.batch_latency(corpus, b, k) for b in batch_sizes]

    def retrieve_batch(self, corpus: MiniCorpus,
                       queries: np.ndarray, k: int = 5) -> List[List[int]]:
        """Functional batched retrieval (exact, query by query)."""
        return [self.retriever.retrieve(corpus, query, k)
                for query in np.atleast_2d(queries)]
