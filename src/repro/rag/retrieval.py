"""ENNS retrieval engines for RAG (paper Section 5.3, Table 8).

Three retrievers share one interface:

* :class:`APURetriever` -- the compute-in-SRAM engine.  Functional runs
  execute the full pipeline (query broadcast, element-wise products,
  subgroup-reduction distances, on-device top-k) on the simulator and
  are validated against the exact FAISS-like reference.  Paper-scale
  latency comes from a stage model assembled from the same cost tables,
  with the embedding stream served by the simulated HBM2e.
* :class:`CPURetriever` -- FAISS ``IndexFlatIP`` functionally, the
  calibrated Xeon model for latency.
* :class:`GPURetriever` -- exact NumPy search functionally, the A6000
  model for latency.

The stage breakdown mirrors Table 8: Load Embedding, Load Query, Calc
Distance, Top-K Aggregation, Return Top-K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..apu.device import APUDevice
from ..baselines.cpu import CPUModel
from ..baselines.faiss_like import IndexFlatIP
from ..baselines.gpu import GPUModel
from ..core.params import APUParams, DEFAULT_PARAMS
from ..core.reduction_model import simulated_sg_add_cycles
from ..hbm import DRAMModel, make_hbm2e
from .corpus import CorpusSpec, MiniCorpus
from .topk import apu_topk, topk_aggregation_cycles

__all__ = [
    "RetrievalBreakdown",
    "APURetriever",
    "CPURetriever",
    "GPURetriever",
]


@dataclass(frozen=True)
class RetrievalBreakdown:
    """Per-stage retrieval latency in seconds (one Table 8 column)."""

    load_embedding: float
    load_query: float
    calc_distance: float
    topk_aggregation: float
    return_topk: float

    @property
    def total(self) -> float:
        """End-to-end retrieval latency in seconds."""
        return (self.load_embedding + self.load_query + self.calc_distance
                + self.topk_aggregation + self.return_topk)

    def as_ms(self) -> Dict[str, float]:
        """The breakdown in milliseconds, keyed like Table 8 rows."""
        return {
            "load_embedding": self.load_embedding * 1e3,
            "load_query": self.load_query * 1e3,
            "calc_distance": self.calc_distance * 1e3,
            "topk_aggregation": self.topk_aggregation * 1e3,
            "return_topk": self.return_topk * 1e3,
            "total": self.total * 1e3,
        }


class APURetriever:
    """Exact nearest-neighbor retrieval on the compute-in-SRAM device.

    Parameters
    ----------
    optimized:
        ``True`` applies communication-aware reduction mapping, DMA
        coalescing, and the broadcast-friendly query layout; ``False``
        is the unoptimized compute-in-SRAM baseline of Table 8.
    """

    #: Chunk embeddings are padded to this group size so the reduction
    #: ratio is a power of two (384 -> 512).
    GROUP = 512

    def __init__(self, optimized: bool = True,
                 params: APUParams = DEFAULT_PARAMS,
                 hbm: Optional[DRAMModel] = None):
        self.optimized = optimized
        self.params = params
        self.hbm = hbm or make_hbm2e()

    # ------------------------------------------------------------------
    # Functional path
    # ------------------------------------------------------------------
    def retrieve(self, corpus: MiniCorpus, query: np.ndarray,
                 k: int = 5, device: Optional[APUDevice] = None) -> List[int]:
        """Run the retrieval pipeline on the simulator; exact top-k.

        The functional kernel mirrors the latency model's structure:
        the optimized retriever uses the dim-major temporal mapping
        (communication-aware reduction over the dimension axis), the
        unoptimized one the chunk-major spatial mapping with intra-VR
        subgroup reductions.
        """
        return [index for index, _
                in self.retrieve_with_scores(corpus, query, k, device)]

    def retrieve_with_scores(self, corpus: MiniCorpus, query: np.ndarray,
                             k: int = 5,
                             device: Optional[APUDevice] = None,
                             ) -> List[tuple]:
        """Exact top-k as ``(chunk_index, score)`` pairs, best first.

        ``device`` lets callers (the sharded retriever, device pools)
        run the kernel on a particular simulated APU; by default a fresh
        device is created per query.
        """
        if device is None:
            device = APUDevice(self.params)
        if self.optimized:
            score_vrs, valid_counts = self._distances_dim_major(
                device, corpus, query)
        else:
            score_vrs, valid_counts = self._distances_chunk_major(
                device, corpus, query)
        return apu_topk(device, score_vrs, k, valid_counts)

    def _distances_dim_major(self, device: APUDevice, corpus: MiniCorpus,
                             query: np.ndarray):
        """Temporal mapping: one VR per (block, dim), inter-VR MACs.

        Scores land directly at per-chunk positions -- contiguous, no
        intra-VR reduction at all (the point of opt1).
        """
        core = device.core
        g = core.gvml
        vlen = self.params.vr_length
        n_blocks = -(-corpus.n_chunks // vlen)
        if n_blocks > 8:
            raise ValueError("mini corpus too large for the functional demo")
        score_vrs: List[int] = []
        valid_counts: List[int] = []
        for block in range(n_blocks):
            lo = block * vlen
            hi = min(lo + vlen, corpus.n_chunks)
            acc = 4 + block
            g.cpy_imm_16(acc, 0)
            for d in range(corpus.dim):
                column = np.zeros(vlen, dtype=np.uint16)
                column[: hi - lo] = corpus.embeddings[lo:hi, d]
                core.l1.store(40, column)
                g.load_16(0, 40)                  # embedding dim-slice
                g.cpy_imm_16(1, int(query[d]))    # scalar broadcast
                g.mul_u16(2, 0, 1)
                g.add_u16(acc, acc, 2)            # temporal reduction
            score_vrs.append(acc)
            valid_counts.append(hi - lo)
        return score_vrs, valid_counts

    def _distances_chunk_major(self, device: APUDevice, corpus: MiniCorpus,
                               query: np.ndarray):
        """Spatial mapping: chunk groups reduced inside the VR."""
        core = device.core
        g = core.gvml
        vlen = self.params.vr_length
        group = self._functional_group(corpus.dim)
        chunks_per_vr = vlen // group

        # The query tiles every chunk group.
        padded_query = np.zeros(group, dtype=np.uint16)
        padded_query[: corpus.dim] = query
        core.l1.store(40, np.tile(padded_query, chunks_per_vr))
        g.load_16(1, 40)

        score_vrs: List[int] = []
        valid_counts: List[int] = []
        n_vrs = -(-corpus.n_chunks // chunks_per_vr)
        if n_vrs > 8:
            raise ValueError("mini corpus too large for the functional demo")
        for tile in range(n_vrs):
            lo = tile * chunks_per_vr
            hi = min(lo + chunks_per_vr, corpus.n_chunks)
            block = np.zeros((chunks_per_vr, group), dtype=np.uint16)
            block[: hi - lo, : corpus.dim] = corpus.embeddings[lo:hi]
            core.l1.store(tile, block.reshape(-1))
            g.load_16(0, tile)
            g.mul_u16(2, 0, 1)
            g.add_subgrp_s16(3, 2, group, 1)      # intra-VR reduction
            # Scattered per-group scores compacted to a score VR head.
            scores = core.vr_read(3)[:: group]
            compacted = np.zeros(vlen, dtype=np.uint16)
            compacted[: hi - lo] = scores[: hi - lo]
            core.vr_write(4 + tile, compacted)
            g.shift_e4(4 + tile, 0)  # charge the compaction pass
            score_vrs.append(4 + tile)
            valid_counts.append(hi - lo)
        return score_vrs, valid_counts

    @classmethod
    def _functional_group(cls, dim: int) -> int:
        group = 1 << max(0, (dim - 1)).bit_length()
        return group

    def retrieve_multicore(self, corpus: MiniCorpus, query: np.ndarray,
                           k: int = 5) -> List[int]:
        """Shard the corpus across all four cores and merge on the CP.

        Each core runs the single-core pipeline over its shard; the
        control processor merges the per-core top-k candidates (scores
        descending, global index ascending on ties) -- the device-level
        parallelism the paper's multi-core latency programs assume.
        """
        device = APUDevice(self.params)
        cores = device.cores
        shard = -(-corpus.n_chunks // len(cores))
        candidates: List[tuple] = []
        for core_id, core in enumerate(cores):
            lo = core_id * shard
            hi = min(lo + shard, corpus.n_chunks)
            if lo >= hi:
                break
            sub = MiniCorpus.from_embeddings(corpus.embeddings[lo:hi],
                                             seed=corpus.seed)
            shard_retriever = APURetriever(self.optimized, self.params)
            local = shard_retriever.retrieve(sub, query, min(k, hi - lo))
            scores = sub.scores(query)
            candidates.extend(
                (int(scores[idx]), lo + idx) for idx in local
            )
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        return [index for _, index in candidates[:k]]

    #: On-chip L4 -> L1 vector DMA with the HBM2e backing store, cycles
    #: per 64 KB vector.  With HBM the engine no longer waits on the
    #: 23.8 GB/s DDR: a coalesced sequential stream sustains ~8.7 GB/s
    #: per engine, while the unoptimized chunked stream (512-byte
    #: descriptors, no alignment) stays near 2.1 GB/s.  Calibrated
    #: against the Table 8 distance-stage latencies.
    HBM_VECTOR_DMA_OPT = 3745.0
    HBM_VECTOR_DMA_NOOPT = 15400.0
    #: Fixed host/CP overhead of returning results over PCIe, cycles.
    RETURN_OVERHEAD_CYCLES = 5000.0

    # ------------------------------------------------------------------
    # Paper-scale latency (Table 8)
    # ------------------------------------------------------------------
    def latency_breakdown(self, corpus: CorpusSpec, k: int = 5) -> RetrievalBreakdown:
        """Stage latencies at paper scale; HBM feeds the embedding load."""
        params = self.params
        cyc = 1.0 / params.clock_hz
        cores = params.num_cores
        pattern = "sequential" if self.optimized else "chunked"
        load_embedding = self.hbm.transfer_seconds(
            corpus.embedding_bytes, pattern
        )
        mv, comp = params.movement, params.compute
        issue = params.effects.vcu_issue_cycles

        if self.optimized:
            # Broadcast-friendly query: the CP stages one immediate per
            # dimension through PIO so each k-step broadcast is a cheap
            # cpy_imm during the distance sweep (Table 8: the optimized
            # layout pays more here and wins it back below).
            load_query = (
                mv.dma_l4_l2(corpus.dim * 2) + mv.dma_l2_l1
                + mv.pio_ld(corpus.dim)
                + (mv.cpy_imm + comp.add_u16 + comp.and_16)
                + mv.lookup(corpus.dim)
            ) * cyc
            # Dim-major layout: the reduction over dimensions runs
            # temporally as inter-VR MACs (communication-aware mapping).
            blocks = -(-corpus.n_chunks // params.vr_length)
            vectors = blocks * corpus.dim  # one VR per (block, dim)
            per_vector = (
                self.HBM_VECTOR_DMA_OPT + mv.vr_load + mv.cpy_imm
                + comp.mul_f16 + comp.add_s16 + 4 * issue
            )
            calc_distance = -(-vectors // cores) * per_vector * cyc
        else:
            # Query parked in one VR; segments re-broadcast per tile.
            load_query = (
                mv.dma_l4_l2(corpus.dim * 2) + mv.dma_l2_l1
                + mv.vr_load + 2 * mv.cpy + mv.pio_ld(48)
            ) * cyc
            # Chunk-major layout: every tile needs an intra-VR subgroup
            # reduction and its scattered outputs leave over PIO.
            chunks_per_vr = params.vr_length // self.GROUP  # 64
            tiles = -(-corpus.n_chunks // chunks_per_vr)
            reduction = simulated_sg_add_cycles(self.GROUP, 1, params)
            per_tile = (
                self.HBM_VECTOR_DMA_NOOPT + mv.vr_load + comp.mul_f16
                + reduction + mv.pio_st(chunks_per_vr) + mv.pio_ld(32)
                + 4 * issue
            )
            calc_distance = -(-tiles // cores) * per_tile * cyc

        topk = topk_aggregation_cycles(corpus.n_chunks, k, params) * cyc
        return_topk = (
            k * (comp.count_m + 2 * mv.pio_st_per_elem)
            + self.RETURN_OVERHEAD_CYCLES
        ) * cyc
        return RetrievalBreakdown(
            load_embedding=load_embedding,
            load_query=load_query,
            calc_distance=calc_distance,
            topk_aggregation=topk,
            return_topk=return_topk,
        )

    def retrieval_seconds(self, corpus: CorpusSpec, k: int = 5) -> float:
        """Total retrieval latency at paper scale."""
        return self.latency_breakdown(corpus, k).total


class CPURetriever:
    """FAISS-IndexFlatIP retrieval on the Xeon baseline."""

    def __init__(self, model: Optional[CPUModel] = None):
        self.model = model or CPUModel()

    def retrieve(self, corpus: MiniCorpus, query: np.ndarray,
                 k: int = 5) -> List[int]:
        """Exact search through the FAISS-like index."""
        index = IndexFlatIP(corpus.dim)
        index.add(corpus.embeddings.astype(np.float32))
        _, ids = index.search(query.astype(np.float32), k)
        return [int(i) for i in ids[0]]

    def retrieval_seconds(self, corpus: CorpusSpec, k: int = 5) -> float:
        """Calibrated Xeon latency at paper scale."""
        del k
        return self.model.retrieval_seconds(corpus.embedding_bytes)


class GPURetriever:
    """Exact retrieval on the A6000 baseline."""

    def __init__(self, model: Optional[GPUModel] = None):
        self.model = model or GPUModel()

    def retrieve(self, corpus: MiniCorpus, query: np.ndarray,
                 k: int = 5) -> List[int]:
        """Exact search (NumPy stands in for the CUDA kernels)."""
        scores = corpus.scores(query)
        order = np.lexsort((np.arange(corpus.n_chunks), -scores))
        return [int(i) for i in order[:k]]

    def retrieval_seconds(self, corpus: CorpusSpec, k: int = 5) -> float:
        """A6000 latency at paper scale."""
        del k
        return self.model.retrieval_seconds(
            corpus.embedding_bytes, corpus.n_chunks
        )
