"""RAG corpora: the paper's three scales plus functional mini-corpora.

Section 5.3.1: corpora of 10/50/200 GB are chunked into 16,384-token
segments, giving 163 K / 819 K / 3.3 M chunks with 120 MB / 600 MB /
2.4 GB of embeddings.  Those sizes imply 384-dimensional fp16
embeddings, which is what the specs below encode.

Functional runs use :class:`MiniCorpus`: seeded synthetic embeddings
small enough to execute on the simulator, quantized to the 4-bit range
whose dot products fit the APU's 16-bit accumulation (the functional
demo's precision envelope; the latency models are independent of it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["CorpusSpec", "PAPER_CORPORA", "MiniCorpus"]

#: Embedding dimensionality implied by the paper's sizes.
EMBED_DIM = 384
#: Tokens per corpus chunk (Section 5.3.1).
CHUNK_TOKENS = 16384


@dataclass(frozen=True)
class CorpusSpec:
    """One evaluation corpus scale."""

    label: str
    corpus_bytes: float
    n_chunks: int
    dim: int = EMBED_DIM
    bytes_per_value: int = 2  # fp16

    @property
    def embedding_bytes(self) -> float:
        """Size of the resident embedding matrix."""
        return self.n_chunks * self.dim * self.bytes_per_value


#: The paper's three corpus scales (Section 5.3.1).
PAPER_CORPORA: Dict[str, CorpusSpec] = {
    "10GB": CorpusSpec("10GB", 10e9, 163_840),
    "50GB": CorpusSpec("50GB", 50e9, 819_200),
    "200GB": CorpusSpec("200GB", 200e9, 3_276_800),
}


class MiniCorpus:
    """A small synthetic corpus for functional retrieval runs.

    Embeddings are quantized to [0, 15] so that 64-dimensional integer
    dot products stay below 2^16 and the APU kernel can accumulate them
    exactly in 16-bit lanes.
    """

    QUANT_LEVELS = 16

    def __init__(self, n_chunks: int = 512, dim: int = 64, seed: int = 0):
        if n_chunks <= 0 or dim <= 0:
            raise ValueError("corpus shape must be positive")
        if dim * (self.QUANT_LEVELS - 1) ** 2 >= 1 << 16:
            raise ValueError("dot products would overflow 16-bit lanes")
        self.n_chunks = n_chunks
        self.dim = dim
        self.seed = seed
        rng = np.random.default_rng(seed)
        raw = rng.normal(size=(n_chunks, dim))
        raw /= np.linalg.norm(raw, axis=1, keepdims=True)
        self.embeddings = self._quantize(raw)
        self._rng = rng

    @classmethod
    def from_embeddings(cls, embeddings: np.ndarray,
                        seed: int = 0) -> "MiniCorpus":
        """Wrap an already-quantized embedding matrix (e.g. one shard).

        The matrix is used as-is (no re-quantization); rows index the
        corpus chunks.  Used by corpus sharding, where each shard is a
        row subset of a parent corpus.
        """
        if embeddings.ndim != 2 or embeddings.shape[0] == 0 \
                or embeddings.shape[1] == 0:
            raise ValueError("embeddings must be a non-empty 2-D matrix")
        corpus = cls.__new__(cls)
        corpus.n_chunks, corpus.dim = embeddings.shape
        corpus.seed = seed
        corpus.embeddings = embeddings
        corpus._rng = np.random.default_rng(seed)
        return corpus

    @classmethod
    def _quantize(cls, unit_vectors: np.ndarray) -> np.ndarray:
        """Map unit-norm floats onto the [0, 15] integer grid."""
        scaled = (unit_vectors + 1.0) / 2.0 * (cls.QUANT_LEVELS - 1)
        return np.clip(np.rint(scaled), 0, cls.QUANT_LEVELS - 1).astype(np.uint16)

    def sample_query(self) -> np.ndarray:
        """A quantized query embedding (NQ-style sampled question)."""
        raw = self._rng.normal(size=self.dim)
        raw /= np.linalg.norm(raw)
        return self._quantize(raw[None])[0]

    def exact_topk(self, query: np.ndarray, k: int) -> np.ndarray:
        """Ground-truth integer inner-product top-k (ascending index ties)."""
        scores = self.embeddings.astype(np.int64) @ query.astype(np.int64)
        order = np.lexsort((np.arange(self.n_chunks), -scores))
        return order[:k]

    def scores(self, query: np.ndarray) -> np.ndarray:
        """Integer inner products against every chunk."""
        return self.embeddings.astype(np.int64) @ query.astype(np.int64)
