"""Top-k selection on the APU (the Table 8 "Top-K Aggregation" stage).

Selection runs in two levels: one ``max_subgrp`` ladder collapses each
score VR to its maximum (paid once per VR), the control processor keeps
the per-VR maxima in scalar registers, and each of the ``k`` rounds
extracts the current global winner -- locating it with an equality
marker, knocking it out, and re-laddering only the VR it came from.
All steps run genuinely on the simulator in functional mode.
"""

from __future__ import annotations

from typing import List, Tuple

from ..apu.device import APUDevice
from ..core.params import APUParams, DEFAULT_PARAMS
from ..core.reduction_model import simulated_sg_add_cycles

__all__ = ["apu_topk", "topk_aggregation_cycles"]


def _ladder_max(device: APUDevice, vr: int) -> int:
    """Collapse one score VR to its maximum via the subgroup ladder."""
    g = device.core.gvml
    g.max_subgrp_u16(15, vr, device.params.vr_length, 1)
    return g.get_element(15, 0)


def apu_topk(device: APUDevice, score_vrs: List[int], k: int,
             valid_counts: List[int]) -> List[Tuple[int, int]]:
    """Exact top-k over score VRs already resident on the core.

    Parameters
    ----------
    device:
        Functional APU device whose core holds the score vectors.
    score_vrs:
        VR indices holding unsigned 16-bit scores.
    k:
        Number of results.
    valid_counts:
        Number of valid (non-padding) entries per score VR.

    Returns
    -------
    list of (global_chunk_index, score), best first; ties broken by
    the lower chunk index (matching the reference lexsort).  Global
    indices are assigned cumulatively: the entries of each score VR
    follow directly after the previous VR's ``valid_count`` entries.
    """
    if len(score_vrs) != len(valid_counts):
        raise ValueError("one valid count per score VR required")
    core = device.core
    g = core.gvml
    vlen = device.params.vr_length
    bases = {}
    running = 0
    for vr, valid in zip(score_vrs, valid_counts):
        bases[vr] = running
        running += valid

    # Mask padding to zero so it can never win (valid scores are > 0
    # for the quantized mini corpora).
    for vr, valid in zip(score_vrs, valid_counts):
        if valid < vlen:
            g.create_grp_index_u16(14, vlen)
            g.gt_imm_u16(7, 14, valid - 1)
            g.cpy_imm_16_msk(vr, 0, 7)

    # Level 1: one ladder per VR; maxima cached on the CP.
    maxima = {vr: _ladder_max(device, vr) for vr in score_vrs}

    results: List[Tuple[int, int]] = []
    for _ in range(k):
        # CP scans its scalar cache; first VR wins ties (lowest index).
        best_vr = max(score_vrs, key=lambda vr: (maxima[vr],
                                                 -score_vrs.index(vr)))
        best_value = maxima[best_vr]
        g.eq_imm_16(6, best_vr, best_value)
        position = g.first_marked_index(6)
        results.append((bases[best_vr] + position, best_value))
        # Knock the winner out and re-ladder only the affected VR.
        g.set_element(best_vr, position, 0)
        maxima[best_vr] = _ladder_max(device, best_vr)
    return results


def topk_aggregation_cycles(n_chunks: int, k: int = 5,
                            params: APUParams = DEFAULT_PARAMS) -> float:
    """Latency model of the aggregation stage at paper scale.

    One ladder per score VR plus one re-ladder and extraction chain per
    extracted result.
    """
    score_vrs = -(-n_chunks // params.vr_length)
    ladder = simulated_sg_add_cycles(
        params.vr_length, 1, params,
        op_cycles=params.compute.gt_u16 + params.movement.cpy,
    )
    extraction = (
        params.compute.eq_16 + params.compute.count_m
        + 3 * params.movement.pio_st_per_elem
    )
    return (score_vrs + k) * ladder + k * extraction
