"""Top-5 retrieval energy comparison, APU vs A6000 (paper Fig. 15).

The APU side integrates the calibrated board model over the modeled
retrieval: static power across the whole window, dynamic compute energy
over the distance/aggregation cycles, DRAM energy from the HBM power
model's traffic counters, and SRAM energy per staged vector.  The GPU
side uses the A6000 measurement-window model.  At 200 GB the paper
reports the split static 71.4% / compute 24.7% / DRAM 2.7% /
other 1.1% / cache 0.005% and an efficiency gap of 54.4x-117.9x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..apu.energy import APUEnergyModel, EnergyBreakdown
from ..baselines.gpu import GPUModel
from ..core.params import APUParams, DEFAULT_PARAMS
from .corpus import CorpusSpec, PAPER_CORPORA
from .retrieval import APURetriever

__all__ = ["RetrievalEnergyPoint", "fig15_energy_comparison", "apu_retrieval_energy"]


@dataclass(frozen=True)
class RetrievalEnergyPoint:
    """One corpus scale of the Fig. 15 comparison."""

    corpus: str
    apu_energy: EnergyBreakdown
    gpu_energy_j: float

    @property
    def efficiency_ratio(self) -> float:
        """How many times less energy the APU spends than the GPU."""
        return self.gpu_energy_j / self.apu_energy.total_j


def apu_retrieval_energy(corpus: CorpusSpec, k: int = 5,
                         params: APUParams = DEFAULT_PARAMS,
                         model: APUEnergyModel = None) -> EnergyBreakdown:
    """Board energy of one optimized top-k retrieval."""
    model = model or APUEnergyModel()
    retriever = APURetriever(optimized=True, params=params)
    breakdown = retriever.latency_breakdown(corpus, k)

    # Compute cycles: the MAC sweep plus the aggregation ladders.
    compute_seconds = breakdown.calc_distance + breakdown.topk_aggregation
    compute_cycles = compute_seconds * params.clock_hz
    # SRAM accesses: one L1 staging access per streamed vector.
    blocks = -(-corpus.n_chunks // params.vr_length)
    sram_accesses = blocks * corpus.dim
    return model.from_phases(
        elapsed_s=breakdown.total,
        compute_cycles=compute_cycles,
        dram_bytes=corpus.embedding_bytes,
        sram_accesses=sram_accesses,
    )


def fig15_energy_comparison(
    corpora: Dict[str, CorpusSpec] = None,
    params: APUParams = DEFAULT_PARAMS,
) -> Dict[str, RetrievalEnergyPoint]:
    """The Fig. 15 bars: per-corpus APU vs GPU retrieval energy."""
    corpora = corpora or PAPER_CORPORA
    gpu = GPUModel()
    points = {}
    for label, spec in corpora.items():
        points[label] = RetrievalEnergyPoint(
            corpus=label,
            apu_energy=apu_retrieval_energy(spec, params=params),
            gpu_energy_j=gpu.retrieval_energy_j(
                spec.embedding_bytes, spec.n_chunks
            ),
        )
    return points
