"""Llama3.1-8B generation latency model (the Fig. 14 generation bar).

The paper runs the generator on a dedicated GPU, so only its prefill
latency (time to first token) enters the time-to-interactive metric.
The model is a standard FLOPs roofline: prefill computes
``2 * parameters * context_tokens`` FLOPs at the generation GPU's
sustained fp16 throughput, plus a fixed sampling/launch overhead.

With the default context budget (question + retrieved passages
truncated to ~512 tokens) the prefill lands at ~550 ms, which matches
the retrieval fractions the paper reports for the CPU baseline (4.3%
of end-to-end at 10 GB, 50.5% at 200 GB).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.gpu import GPUSpec, RTX_A6000

__all__ = ["GenerationModel", "LLAMA31_8B_PARAMS"]

#: Llama3.1-8B parameter count.
LLAMA31_8B_PARAMS = 8.03e9


@dataclass(frozen=True)
class GenerationModel:
    """Prefill/decode latency of the generation-side GPU."""

    parameters: float = LLAMA31_8B_PARAMS
    gpu: GPUSpec = RTX_A6000
    #: Sustained fraction of peak fp16 throughput during prefill.
    prefill_efficiency: float = 0.50
    #: Tokenization + sampling + launch overhead per request, seconds.
    fixed_overhead_s: float = 0.070
    #: Question plus truncated retrieved passages.
    default_context_tokens: int = 520

    def prefill_seconds(self, context_tokens: int = None) -> float:
        """Time to first token for a given context length."""
        tokens = (self.default_context_tokens if context_tokens is None
                  else context_tokens)
        if tokens <= 0:
            raise ValueError("context must contain at least one token")
        flops = 2.0 * self.parameters * tokens
        sustained = self.gpu.fp16_tflops * 1e12 * self.prefill_efficiency
        return self.fixed_overhead_s + flops / sustained

    def decode_seconds_per_token(self) -> float:
        """Steady-state decode latency (memory-bandwidth bound)."""
        bytes_per_token = 2.0 * self.parameters  # fp16 weights read once
        return bytes_per_token / self.gpu.memory_bandwidth

    def generation_energy_j(self, context_tokens: int = None,
                            power_w: float = None) -> float:
        """Board energy of one prefill."""
        power = power_w if power_w is not None else self.gpu.board_power_w
        return power * self.prefill_seconds(context_tokens)
