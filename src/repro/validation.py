"""The paper's quantitative claims, checked programmatically.

EXPERIMENTS.md narrates the paper-vs-reproduction comparison; this
module *is* that comparison: a registry of every headline claim with
the paper's value, a callable that measures ours, and the tolerance
within which the reproduction is considered to hold.  One call to
:func:`validate_reproduction` re-derives the whole table --
``python -m repro.cli claims`` prints it.

Tolerances encode the reproduction contract: tight (a few percent) for
quantities the models were calibrated against, loose (tens of percent)
for emergent quantities that must only preserve the paper's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = ["Claim", "ClaimResult", "PAPER_CLAIMS", "validate_reproduction"]


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper."""

    key: str
    description: str
    paper_value: float
    measure: Callable[[], float]
    rel_tolerance: float
    source: str  # where in the paper the number lives


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of checking one claim."""

    claim: Claim
    measured: float

    @property
    def relative_error(self) -> float:
        """Signed deviation from the paper's value."""
        return (self.measured - self.claim.paper_value) / self.claim.paper_value

    @property
    def holds(self) -> bool:
        """Whether the measurement is within the claim's tolerance."""
        return abs(self.relative_error) <= self.claim.rel_tolerance


# ----------------------------------------------------------------------
# Measurement thunks (imported lazily so the registry is cheap to load)
# ----------------------------------------------------------------------
def _matmul_baseline_ms() -> float:
    from .opt.matmul import BaselineMatmul
    from .apu.device import APUDevice

    kernel = BaselineMatmul(APUDevice(functional=False), 1024, 1024, 1024)
    return kernel.run().latency_ms


def _matmul_speedup() -> float:
    from .opt.matmul import run_all_stages

    results = run_all_stages(1024, 1024, 1024, functional=False)
    return results["baseline"].latency_ms / results["opt1+2+3"].latency_ms


def _phoenix_mean_speedup() -> float:
    from .phoenix import PhoenixSuite

    return PhoenixSuite().aggregate_speedups()["mean_vs_1t"]


def _phoenix_peak_speedup() -> float:
    from .phoenix import PhoenixSuite

    return PhoenixSuite().aggregate_speedups()["peak_vs_1t"]


def _phoenix_mt_mean_speedup() -> float:
    from .phoenix import PhoenixSuite

    return PhoenixSuite().aggregate_speedups()["mean_vs_16t"]


def _framework_accuracy() -> float:
    from .phoenix import PhoenixSuite

    return PhoenixSuite().mean_accuracy()


def _retrieval_opt_200gb_ms() -> float:
    from .rag import APURetriever, PAPER_CORPORA

    return APURetriever(optimized=True).retrieval_seconds(
        PAPER_CORPORA["200GB"]) * 1e3


def _retrieval_noopt_200gb_ms() -> float:
    from .rag import APURetriever, PAPER_CORPORA

    return APURetriever(optimized=False).retrieval_seconds(
        PAPER_CORPORA["200GB"]) * 1e3


def _retrieval_speedup_200gb() -> float:
    from .rag import APURetriever, CPURetriever, PAPER_CORPORA

    spec = PAPER_CORPORA["200GB"]
    return (CPURetriever().retrieval_seconds(spec)
            / APURetriever(optimized=True).retrieval_seconds(spec))


def _e2e_speedup_200gb() -> float:
    from .rag import APURetriever, CPURetriever, GenerationModel, PAPER_CORPORA, RAGPipeline

    spec = PAPER_CORPORA["200GB"]
    gen = GenerationModel()
    cpu = RAGPipeline(CPURetriever(), gen).time_to_interactive(spec)
    apu = RAGPipeline(APURetriever(optimized=True), gen).time_to_interactive(spec)
    return cpu / apu


def _energy_ratio_200gb() -> float:
    from .rag import fig15_energy_comparison

    return fig15_energy_comparison()["200GB"].efficiency_ratio


def _energy_static_fraction() -> float:
    from .rag import fig15_energy_comparison

    return fig15_energy_comparison()["200GB"].apu_energy.fractions()["static"]


def _hbm_peak_gbs() -> float:
    from .hbm import make_hbm2e

    return make_hbm2e().peak_bandwidth / 1e9


def _embedding_load_200gb_ms() -> float:
    from .hbm import make_hbm2e
    from .rag import PAPER_CORPORA

    return make_hbm2e().transfer_seconds(
        PAPER_CORPORA["200GB"].embedding_bytes, "sequential") * 1e3


#: Every headline claim, in paper order.
PAPER_CLAIMS: List[Claim] = [
    Claim("matmul_baseline_ms", "Fig. 12 baseline binary matmul latency",
          226.3, _matmul_baseline_ms, 0.15, "Section 5.1"),
    Claim("matmul_speedup", "Fig. 12 all-opts speedup over baseline",
          18.9, _matmul_speedup, 1.0, "Section 5.1"),
    Claim("phoenix_mean_speedup", "Phoenix mean speedup vs 1T CPU",
          41.8, _phoenix_mean_speedup, 0.25, "Section 5.2"),
    Claim("phoenix_peak_speedup", "Phoenix peak speedup vs 1T CPU",
          128.3, _phoenix_peak_speedup, 0.25, "Section 5.2"),
    Claim("phoenix_mt_mean_speedup", "Phoenix mean speedup vs 16T CPU",
          12.5, _phoenix_mt_mean_speedup, 0.25, "Section 5.2"),
    Claim("framework_accuracy", "analytical framework mean accuracy",
          0.973, _framework_accuracy, 0.03, "Section 5.2.2"),
    Claim("retrieval_noopt_200gb_ms", "Table 8 unoptimized retrieval, 200 GB",
          539.2, _retrieval_noopt_200gb_ms, 0.35, "Table 8"),
    Claim("retrieval_opt_200gb_ms", "Table 8 all-opts retrieval, 200 GB",
          84.2, _retrieval_opt_200gb_ms, 0.35, "Table 8"),
    Claim("retrieval_speedup_200gb", "retrieval speedup vs CPU, 200 GB",
          6.6, _retrieval_speedup_200gb, 0.25, "Section 5.3.3"),
    Claim("e2e_speedup_200gb", "end-to-end RAG gain vs CPU, 200 GB",
          1.75, _e2e_speedup_200gb, 0.12, "Section 5.3.3"),
    Claim("energy_ratio_200gb", "energy efficiency vs A6000, 200 GB",
          117.9, _energy_ratio_200gb, 0.15, "Section 5.3.5"),
    Claim("energy_static_fraction", "static share of APU retrieval energy",
          0.714, _energy_static_fraction, 0.05, "Section 5.3.5"),
    Claim("hbm_peak_gbs", "simulated HBM2e peak bandwidth (GB/s)",
          400.0, _hbm_peak_gbs, 0.05, "Section 5.3.1"),
    Claim("embedding_load_200gb_ms", "Table 8 optimized embedding load",
          6.1, _embedding_load_200gb_ms, 0.15, "Table 8"),
]


def validate_reproduction(
    claims: List[Claim] = None,
) -> Dict[str, ClaimResult]:
    """Measure every registered claim and return the results."""
    results = {}
    for claim in claims or PAPER_CLAIMS:
        results[claim.key] = ClaimResult(claim=claim,
                                         measured=claim.measure())
    return results
