"""Binary matrix-multiplication kernels on the APU (Figs. 7-12).

Five executable kernels realize the optimization ladder of Section 4 on
the simulator.  Each runs both functionally (small shapes, results
checked against NumPy) and in timing-only mode (the paper's 1024^3
microbenchmark), and reports the Fig. 12 breakdown sections:

* ``LD LHS`` -- loading/broadcasting matrix A,
* ``LD RHS`` -- loading/duplicating matrix B,
* ``VR Ops`` -- on-chip compute and subgroup copies,
* ``ST``     -- writing matrix C back to device DRAM.

Binary semantics are XNOR-net style: matrix entries are {-1, +1}
encoded as bits {0, 1} and bit-packed along K into uint16 words, so
``C[i, j] = K - 2 * popcount(a_i XOR b_j)``.  The per-word instruction
chain (xor, popcnt, accumulate, shift, subtract) is exactly the cost
chain of Eqs. 6 and 7.

Stage ladder (cumulative, as in Fig. 12):

* :class:`BaselineMatmul` -- inner product, spatial reduction, PIO stores;
* :class:`Opt1Matmul` -- + communication-aware reduction mapping
  (temporal SVP; scalars broadcast by per-element PIO);
* :class:`Opt2Matmul` -- + DMA coalescing for B (bulk load + subgroup
  copies);
* :class:`Opt3Matmul` -- + broadcast-friendly layout for A (single
  lookup per (block, k) with a block-sized table);
* :func:`run_all_stages` -- convenience sweep producing the Fig. 12 data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..apu.device import APUDevice
from ..apu.dtypes import pack_bits_u16, u16_to_s16
from ..core.params import APUParams
from .layout import Layout, broadcast_friendly

__all__ = [
    "MatmulResult",
    "BinaryMatmulKernel",
    "BaselineMatmul",
    "Opt1Matmul",
    "Opt2Matmul",
    "Opt3Matmul",
    "reference_binary_matmul",
    "pack_operands",
    "run_all_stages",
    "STAGE_ORDER",
]

#: Kernel classes in Fig. 12 order, keyed by stage label.
STAGE_ORDER = ("baseline", "opt1", "opt1+2", "opt1+2+3")

# VR register allocation shared by the kernels.
_VR_LHS, _VR_RHS, _VR_TMP, _VR_ACC, _VR_OUT, _VR_IDX, _VR_K = 0, 1, 2, 3, 4, 5, 6
_VR_REUSE = 7


def reference_binary_matmul(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    """NumPy ground truth: C = K - 2 * popcount(a XOR b), int16."""
    a = np.asarray(a_bits, dtype=np.int32)
    b = np.asarray(b_bits, dtype=np.int32)
    if a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions disagree")
    k = a.shape[1]
    # xor-popcount equals k - matches; with +-1 semantics:
    matches = a @ b + (1 - a) @ (1 - b)
    return (2 * matches - k).astype(np.int16)


def pack_operands(a_bits: np.ndarray, b_bits: np.ndarray):
    """Bit-pack A along rows and B along columns (K-axis packing)."""
    a_packed = pack_bits_u16(np.asarray(a_bits, dtype=np.uint8))
    b_packed = pack_bits_u16(np.asarray(b_bits, dtype=np.uint8).T).T.copy()
    return a_packed, b_packed


@dataclass
class MatmulResult:
    """Outcome of one kernel run."""

    stage: str
    c: Optional[np.ndarray]
    latency_ms: float
    breakdown_ms: Dict[str, float]
    operational_intensity: float
    micro_instructions: int

    def performance_ops(self, shape, clock_ignored=None) -> float:
        """Achieved ops/s for roofline placement."""
        seconds = self.latency_ms / 1e3
        return shape.total_ops / seconds if seconds > 0 else 0.0


class BinaryMatmulKernel:
    """Common scaffolding for the five kernels.

    Parameters
    ----------
    device:
        An :class:`~repro.apu.APUDevice`; ``functional=False`` devices
        run the kernel as a pure timing model.
    m, n, k_bits:
        Problem shape in *bit* units; ``k_bits`` must be a multiple
        of 16 (one uint16 word per 16 K-positions).
    """

    stage = "abstract"

    def __init__(self, device: APUDevice, m: int, n: int, k_bits: int):
        if k_bits % 16 != 0:
            raise ValueError("k_bits must be a multiple of 16 (bit packing)")
        self.device = device
        self.core = device.core
        self.params: APUParams = device.params
        self.m, self.n, self.k_bits = m, n, k_bits
        self.k_words = k_bits // 16
        self.vlen = self.params.vr_length

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def functional(self) -> bool:
        return self.device.functional

    def _set_vr(self, vr: int, data: Optional[np.ndarray]) -> None:
        """Place data into a VR (functional only; charging is separate)."""
        if self.functional and data is not None:
            padded = np.zeros(self.vlen, dtype=np.uint16)
            padded[: len(data)] = data
            self.core.vr_write(vr, padded)

    def _charge_dup_dma_row(self, count: int = 1) -> None:
        """Chained duplicated-layout DMA filling L2 with one row, + staging."""
        mv = self.params.movement
        cost = mv.dma_l4_l2(self.params.vr_bytes)
        self.core.charge_raw("dma_l4_l2", cost, count)
        self.core.charge_raw("dma_l2_l1", mv.dma_l2_l1, count)
        self.core.gvml.load_16(_VR_RHS, 0, count=count)

    def _epilogue(self, src_vr: int, dst_vr: int) -> None:
        """C = K - 2 * popcount_accumulator, on full VRs."""
        g = self.core.gvml
        g.sl_imm_16(_VR_TMP, src_vr, 1)
        g.cpy_imm_16(_VR_K, self.k_bits)
        g.sub_s16(dst_vr, _VR_K, _VR_TMP)

    def run(self, a_bits: Optional[np.ndarray] = None,
            b_bits: Optional[np.ndarray] = None) -> MatmulResult:
        """Execute the kernel; functional mode requires bit matrices."""
        if self.functional and (a_bits is None or b_bits is None):
            raise ValueError("functional mode needs both operand matrices")
        a_packed = b_packed = None
        if self.functional:
            a_bits = np.asarray(a_bits, dtype=np.uint8)
            b_bits = np.asarray(b_bits, dtype=np.uint8)
            if a_bits.shape != (self.m, self.k_bits):
                raise ValueError(f"A must be {(self.m, self.k_bits)}")
            if b_bits.shape != (self.k_bits, self.n):
                raise ValueError(f"B must be {(self.k_bits, self.n)}")
            a_packed, b_packed = pack_operands(a_bits, b_bits)
        self.core.reset_trace()
        c = self._execute(a_packed, b_packed)
        trace = self.core.trace
        to_ms = self.params.cycles_to_ms
        breakdown = {
            label: to_ms(cycles)
            for label, cycles in trace.breakdown_by_section().items()
        }
        return MatmulResult(
            stage=self.stage,
            c=c,
            latency_ms=to_ms(trace.total_cycles),
            breakdown_ms=breakdown,
            operational_intensity=self._operational_intensity(),
            micro_instructions=self.core.micro_instructions,
        )

    def _execute(self, a_packed, b_packed):  # pragma: no cover - abstract
        raise NotImplementedError

    def _operational_intensity(self) -> float:
        raise NotImplementedError

    def _oi(self, traffic_words: float, alpha: float = 5.0) -> float:
        ops = self.m * self.n * self.k_words * alpha
        return ops / (traffic_words * 2.0)


class BaselineMatmul(BinaryMatmulKernel):
    """Inner-product algorithm with spatial (intra-VR) reduction (Fig. 7).

    Loop j is unrolled across the VR: each group of ``k_words`` elements
    holds A's row XORed against one column of B, reduced inside the VR
    with the expensive ``add_subgrp`` ladder.  Outputs land scattered at
    group heads, forcing per-element PIO stores -- the Fig. 12 baseline
    bottleneck.
    """

    stage = "baseline"

    def __init__(self, device, m, n, k_bits):
        super().__init__(device, m, n, k_bits)
        if self.k_words & (self.k_words - 1):
            raise ValueError("baseline needs a power-of-two packed K")
        self.dup = self.vlen // self.k_words  # columns per VR pass

    def _operational_intensity(self) -> float:
        s = self
        traffic = (s.m * s.k_words * s.dup + s.k_words * s.n + s.m * s.n)
        return self._oi(traffic)

    def _execute(self, a_packed, b_packed):
        g, mv = self.core.gvml, self.params.movement
        dup, kw = self.dup, self.k_words
        n_blocks = math.ceil(self.n / dup)
        c = np.zeros((self.m, self.n), dtype=np.int16) if self.functional else None

        # Matrix B is staged into L1 once (it fits); Eq. 4 amortization.
        with self.core.section("LD RHS"):
            bulk = math.ceil(self.n * kw * 2 / self.params.vr_bytes)
            self.core.charge_raw("dma_l4_l1", mv.dma_l4_l1, count=bulk)

        for i in range(self.m) if self.functional else range(1):
            loop_m = self.m if not self.functional else 1
            with self.core.section("LD LHS"):
                # Duplicated-layout DMA: row i tiled across L2, staged up.
                cost = mv.dma_l4_l2(self.params.vr_bytes)
                self.core.charge_raw("dma_l4_l2", cost, count=loop_m)
                self.core.charge_raw("dma_l2_l1", mv.dma_l2_l1, count=loop_m)
                g.load_16(_VR_LHS, 0, count=loop_m)
                if self.functional:
                    self._set_vr(_VR_LHS, np.tile(a_packed[i], dup))

            for jb in range(n_blocks) if self.functional else range(1):
                inner = loop_m * (n_blocks if not self.functional else 1)
                cols = None
                if self.functional:
                    cols = range(jb * dup, min((jb + 1) * dup, self.n))
                with self.core.section("LD RHS"):
                    g.load_16(_VR_RHS, 1, count=inner)
                    if self.functional:
                        rhs = b_packed[:, list(cols)].T.reshape(-1)
                        self._set_vr(_VR_RHS, rhs)
                with self.core.section("VR Ops"):
                    g.xor_16(_VR_TMP, _VR_LHS, _VR_RHS, count=inner)
                    g.popcnt_16(_VR_TMP, _VR_TMP, count=inner)
                    g.add_subgrp_s16(_VR_ACC, _VR_TMP, kw, 1, count=inner)
                    g.sl_imm_16(_VR_TMP, _VR_ACC, 1, count=inner)
                    g.cpy_imm_16(_VR_K, self.k_bits, count=inner)
                    g.sub_s16(_VR_OUT, _VR_K, _VR_TMP, count=inner)
                with self.core.section("ST"):
                    per_block = min(dup, self.n - jb * dup) if self.functional \
                        else dup
                    self.core.charge_raw(
                        "pio_st", mv.pio_st(per_block), count=inner
                    )
                    if self.functional:
                        out = u16_to_s16(self.core.vr_read(_VR_OUT))
                        for gidx, j in enumerate(cols):
                            c[i, j] = out[gidx * kw]
        return c


class _TemporalBase(BinaryMatmulKernel):
    """Shared temporal-mapping machinery for opt1/opt2/opt3 (Figs. 8-9)."""

    def __init__(self, device, m, n, k_bits):
        super().__init__(device, m, n, k_bits)
        if self.vlen % self.n != 0:
            raise ValueError("temporal kernels need N dividing the VR length")
        self.dup_i = self.vlen // self.n  # rows of C per VR

    def _operational_intensity(self) -> float:
        s = self
        traffic = (s.m * s.k_words + s.n * s.k_words * s.dup_i + s.m * s.n)
        return self._oi(traffic)

    def _blocks(self):
        return range(0, self.m, self.dup_i)

    def _block_rows(self, start: int) -> int:
        return min(self.dup_i, self.m - start)

    #: L1 slots reserved for staging/output (not for resident B rows).
    _RESERVED_VMRS = 8

    # --- RHS loading strategies -------------------------------------
    def _stage_rhs_naive(self, n_blocks: int) -> None:
        """Opt1 prologue: duplicated DMA of every row of B into L1.

        Each of the K rows is fanned across a full vector by a chained
        duplicated-layout DMA (Eq. 11).  Rows that do not fit in the L1
        background registers must be re-fetched on every later block
        pass -- the residency pressure DMA coalescing removes.
        """
        resident = max(0, self.params.num_vmrs - self._RESERVED_VMRS)
        initial = self.k_words
        refetch = max(0, self.k_words - resident) * max(0, n_blocks - 1)
        self._charge_dup_dma_row(count=initial + refetch)

    def _load_rhs_naive(self, b_packed, k: int, count: int) -> None:
        """Serve row k (duplicated) from its staged L1 vector."""
        self.core.gvml.load_16(_VR_RHS, k % self.params.num_vmrs, count=count)
        if self.functional:
            self._set_vr(_VR_RHS, np.tile(b_packed[k], self.dup_i))

    def _stage_rhs_bulk(self) -> None:
        """Coalesced bulk load of all of B into L1 (Eq. 12)."""
        bulk = math.ceil(self.k_words * self.n * 2 / self.params.vr_bytes)
        self.core.charge_raw(
            "dma_l4_l1", self.params.movement.dma_l4_l1, count=bulk
        )

    def _load_rhs_coalesced(self, b_packed, k: int, count: int) -> None:
        """Serve row k from the staged reuse VR with a subgroup copy."""
        g = self.core.gvml
        rows_per_vr = self.vlen // self.n
        g.load_16(_VR_REUSE, k // rows_per_vr % self.params.num_vmrs,
                  count=count)
        if self.functional:
            self._set_vr(_VR_REUSE, np.tile(b_packed[k], 1))
            # Subgroup copy fans the staged row across the whole VR.
        g.cpy_subgrp_16_grp(_VR_RHS, _VR_REUSE, self.n, 0, count=count)

    # --- LHS broadcast strategies -------------------------------------
    def _broadcast_lhs_pio(self, a_packed, start: int, rows: int, k: int,
                           count: int) -> None:
        """Opt1: per-scalar PIO read + masked immediate broadcast."""
        g, mv = self.core.gvml, self.params.movement
        self.core.charge_raw("pio_ld", mv.pio_ld(1), count=count * rows)
        g.eq_16(0, _VR_IDX, _VR_IDX, count=count * rows)   # group mask build
        g.cpy_imm_16(_VR_LHS, 0, count=count * rows)       # masked broadcast
        if self.functional:
            scalars = np.repeat(a_packed[start: start + rows, k], self.n)
            self._set_vr(_VR_LHS, scalars)

    def _stage_lhs_lookup(self, a_packed) -> None:
        """Opt3 setup: A in broadcast-friendly layout, DMA'd to L3 once."""
        mv = self.params.movement
        nbytes = self.m * self.k_words * 2
        self.core.charge_raw("dma_l4_l3", mv.dma_l4_l3(nbytes), count=1)
        self.core.gvml.create_grp_index_u16(_VR_IDX, 1)  # i-position index
        if self.functional:
            # Broadcast-friendly: per (block, k) windows are contiguous.
            row_major = Layout.row_major((self.dup_i, self.k_words))
            self._bf_layout = broadcast_friendly(row_major, window_dim=0)

    def _broadcast_lhs_lookup(self, a_packed, start: int, rows: int, k: int,
                              count: int) -> None:
        """Opt3: one lookup per (block, k) from a window-sized table."""
        table_entries = self.dup_i
        if self.functional:
            window = np.zeros(self.dup_i, dtype=np.uint16)
            window[:rows] = a_packed[start: start + rows, k]
            self.core.l3.write(0, window)
            index = (np.arange(self.vlen) // self.n).astype(np.uint16)
            self._set_vr(_VR_IDX, index)
            self.core.dma.lookup_16(_VR_LHS, _VR_IDX, table_entries,
                                    count=count)
        else:
            self.core.dma.lookup_16(_VR_LHS, None, table_entries, count=count)

    # --- Main loop -----------------------------------------------------
    def _execute(self, a_packed, b_packed):
        g = self.core.gvml
        c = np.zeros((self.m, self.n), dtype=np.int16) if self.functional else None
        n_blocks = math.ceil(self.m / self.dup_i)

        self._prologue(a_packed, b_packed)

        block_iter = self._blocks() if self.functional else [0]
        fold = 1 if self.functional else n_blocks
        for start in block_iter:
            rows = self._block_rows(start)
            with self.core.section("VR Ops"):
                g.cpy_imm_16(_VR_ACC, 0, count=fold)
            k_iter = range(self.k_words) if self.functional else [0]
            k_fold = fold * (1 if self.functional else self.k_words)
            for k in k_iter:
                with self.core.section("LD RHS"):
                    self._load_rhs(b_packed, k, count=k_fold)
                with self.core.section("LD LHS"):
                    self._broadcast_lhs(a_packed, start, rows, k, count=k_fold)
                with self.core.section("VR Ops"):
                    g.xor_16(_VR_TMP, _VR_LHS, _VR_RHS, count=k_fold)
                    g.popcnt_16(_VR_TMP, _VR_TMP, count=k_fold)
                    g.add_s16(_VR_ACC, _VR_ACC, _VR_TMP, count=k_fold)
            with self.core.section("VR Ops"):
                g.sl_imm_16(_VR_TMP, _VR_ACC, 1, count=fold)
                g.cpy_imm_16(_VR_K, self.k_bits, count=fold)
                g.sub_s16(_VR_OUT, _VR_K, _VR_TMP, count=fold)
                g.store_16(2, _VR_OUT, count=fold)
            with self.core.section("ST"):
                self.core.charge_raw(
                    "dma_l1_l4", self.params.movement.dma_l1_l4, count=fold
                )
                if self.functional:
                    out = u16_to_s16(self.core.vr_read(_VR_OUT))
                    block = out[: rows * self.n].reshape(rows, self.n)
                    c[start: start + rows] = block
        return c

    def _prologue(self, a_packed, b_packed) -> None:
        """Stage shared state before the block loop (overridden)."""

    def _load_rhs(self, b_packed, k, count):  # pragma: no cover - abstract
        raise NotImplementedError

    def _broadcast_lhs(self, a_packed, start, rows, k, count):
        raise NotImplementedError  # pragma: no cover


class Opt1Matmul(_TemporalBase):
    """Communication-aware reduction mapping only (Section 4.2).

    Reductions run temporally as inter-VR adds and outputs stream back
    contiguously; A's scalars are still broadcast one-by-one over PIO
    and B's rows are duplicated by per-row DMA with L1 residency
    pressure (the costs opt2/opt3 remove).
    """

    stage = "opt1"

    def _prologue(self, a_packed, b_packed):
        with self.core.section("LD RHS"):
            self._stage_rhs_naive(math.ceil(self.m / self.dup_i))

    def _load_rhs(self, b_packed, k, count):
        self._load_rhs_naive(b_packed, k, count)

    def _broadcast_lhs(self, a_packed, start, rows, k, count):
        self._broadcast_lhs_pio(a_packed, start, rows, k, count)


class Opt2Matmul(_TemporalBase):
    """Opt1 + DMA coalescing for B (Section 4.3)."""

    stage = "opt1+2"

    def _prologue(self, a_packed, b_packed):
        with self.core.section("LD RHS"):
            self._stage_rhs_bulk()

    def _load_rhs(self, b_packed, k, count):
        self._load_rhs_coalesced(b_packed, k, count)

    def _broadcast_lhs(self, a_packed, start, rows, k, count):
        self._broadcast_lhs_pio(a_packed, start, rows, k, count)


class Opt3Matmul(_TemporalBase):
    """Opt1 + opt2 + broadcast-friendly LHS layout (Section 4.4)."""

    stage = "opt1+2+3"

    def _operational_intensity(self) -> float:
        traffic = (self.m * self.k_words + self.n * self.k_words
                   + self.m * self.n)
        return self._oi(traffic)

    def _prologue(self, a_packed, b_packed):
        with self.core.section("LD RHS"):
            self._stage_rhs_bulk()
        with self.core.section("LD LHS"):
            self._stage_lhs_lookup(a_packed)

    def _load_rhs(self, b_packed, k, count):
        self._load_rhs_coalesced(b_packed, k, count)

    def _broadcast_lhs(self, a_packed, start, rows, k, count):
        self._broadcast_lhs_lookup(a_packed, start, rows, k, count)


_STAGE_CLASSES = {
    "baseline": BaselineMatmul,
    "opt1": Opt1Matmul,
    "opt1+2": Opt2Matmul,
    "opt1+2+3": Opt3Matmul,
}


def run_all_stages(m: int, n: int, k_bits: int,
                   functional: bool = False,
                   a_bits: Optional[np.ndarray] = None,
                   b_bits: Optional[np.ndarray] = None,
                   params: Optional[APUParams] = None) -> Dict[str, MatmulResult]:
    """Run the full Fig. 12 ladder and return results keyed by stage."""
    results = {}
    for stage in STAGE_ORDER:
        device = (APUDevice(params, functional=functional) if params
                  else APUDevice(functional=functional))
        kernel = _STAGE_CLASSES[stage](device, m, n, k_bits)
        results[stage] = kernel.run(a_bits, b_bits)
    return results
