"""The paper's three data-movement/layout optimizations (Section 4).

* :mod:`repro.opt.reduction` -- communication-aware reduction mapping
  and the closed-form Eqs. 2-14.
* :mod:`repro.opt.coalesce` -- DMA coalescing planner (Fig. 10).
* :mod:`repro.opt.layout` -- Graphene-style layouts and the
  broadcast-friendly transform (Fig. 11).
* :mod:`repro.opt.matmul` -- the executable binary-matmul kernels that
  realize the Fig. 12 optimization ladder on the simulator.
"""

from .coalesce import CoalescePlan, TransferRequest, coalescing_saving, naive_cycles, plan_coalescing
from .layout import (
    Dim,
    Layout,
    LayoutError,
    broadcast_friendly,
    broadcast_window_addresses,
    broadcast_window_span,
    lookup_table_entries,
)
from .matmul import (
    BaselineMatmul,
    BinaryMatmulKernel,
    MatmulResult,
    Opt1Matmul,
    Opt2Matmul,
    Opt3Matmul,
    STAGE_ORDER,
    pack_operands,
    reference_binary_matmul,
    run_all_stages,
)
from .planner import OptimizationPlan, OptimizationPlanner, PlanDecision
from .reduction import CostBreakdown, MatmulCostModel, MatmulShape, ReductionMapping

__all__ = [
    "BaselineMatmul",
    "BinaryMatmulKernel",
    "CoalescePlan",
    "CostBreakdown",
    "Dim",
    "Layout",
    "LayoutError",
    "MatmulCostModel",
    "MatmulResult",
    "MatmulShape",
    "Opt1Matmul",
    "Opt2Matmul",
    "Opt3Matmul",
    "OptimizationPlan",
    "OptimizationPlanner",
    "PlanDecision",
    "ReductionMapping",
    "STAGE_ORDER",
    "TransferRequest",
    "broadcast_friendly",
    "broadcast_window_addresses",
    "broadcast_window_span",
    "coalescing_saving",
    "lookup_table_entries",
    "naive_cycles",
    "pack_operands",
    "plan_coalescing",
    "reference_binary_matmul",
    "run_all_stages",
]
