"""Communication-aware reduction mapping (paper Section 4.2, Eqs. 2-14).

The planner decides how a reduction axis maps onto the ultra-long
vector: **spatially** (reduction inside the VR via expensive intra-VR
``add_subgrp`` operations, with scattered outputs forcing PIO stores) or
**temporally** (scalar-vector product: the reduction runs over loop
iterations as cheap inter-VR element-wise adds, leaving contiguous
outputs for DMA).

Every equation of the paper's Section 4 is implemented as a named
method so the benches can print the analytical trajectory
(baseline -> opt1 -> opt2 -> opt3) exactly as the text derives it.
Costs are cycles; bandwidth is converted to bytes/cycle from the
parameter bundle.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..core.params import APUParams, DEFAULT_PARAMS

__all__ = ["ReductionMapping", "MatmulShape", "CostBreakdown", "MatmulCostModel"]


class ReductionMapping(enum.Enum):
    """How the reduction axis maps onto the vector register."""

    SPATIAL = "spatial"
    TEMPORAL = "temporal"


@dataclass(frozen=True)
class MatmulShape:
    """Binary matmul problem: C(M,N) = A(M,K) x B(K,N), K in u16 words.

    ``k_words`` is the K extent *after* bit-packing along K into uint16
    (the paper's formulas use this packed K).  ``alpha`` is the number
    of logical/arithmetic operations applied per scalar word (the XOR /
    popcount / shift / subtract / accumulate chain -> 5).
    """

    m: int
    n: int
    k_words: int
    alpha: float = 5.0

    def __post_init__(self):
        if min(self.m, self.n, self.k_words) <= 0:
            raise ValueError("matrix dimensions must be positive")

    @property
    def total_ops(self) -> float:
        """Scalar operations performed: M * N * K * alpha."""
        return self.m * self.n * self.k_words * self.alpha


@dataclass(frozen=True)
class CostBreakdown:
    """Run-time cost components of one mapping, in cycles."""

    t_a: float
    t_b: float
    t_c: float
    t_mac: float
    operational_intensity: float

    @property
    def total(self) -> float:
        """Total modeled cycles."""
        return self.t_a + self.t_b + self.t_c + self.t_mac

    def performance_ops(self, total_ops: float, clock_hz: float) -> float:
        """Achieved ops/s given the shape's operation count."""
        seconds = self.total / clock_hz
        return total_ops / seconds if seconds > 0 else 0.0


class MatmulCostModel:
    """Closed-form costs of the four optimization stages (Eqs. 2-14)."""

    SF_U16 = 2  # size_of(u16) in bytes

    def __init__(self, shape: MatmulShape, params: APUParams = DEFAULT_PARAMS):
        self.shape = shape
        self.params = params

    # ------------------------------------------------------------------
    # Shared quantities
    # ------------------------------------------------------------------
    @property
    def bw_bytes_per_cycle(self) -> float:
        """Off-chip bandwidth expressed in bytes per core cycle."""
        return self.params.dram_bandwidth / self.params.clock_hz

    @property
    def dup_spatial(self) -> int:
        """Duplication factor of A under j-unrolling: floor(l / K)."""
        return self.params.vr_length // self.shape.k_words

    @property
    def dup_temporal(self) -> int:
        """Duplication factor of B under i-unrolling: floor(l / N)."""
        return self.params.vr_length // self.shape.n

    def _ops_chain_spatial(self) -> float:
        """Per-iteration compute chain of Eq. 6 (excluding sg_add)."""
        c = self.params.compute
        return c.xor_16 + c.popcnt_16 + c.ashift + c.sub_s16

    # ------------------------------------------------------------------
    # Baseline: inner product, spatial reduction (Eqs. 2-6)
    # ------------------------------------------------------------------
    def oi_baseline(self) -> float:
        """Eq. 2: OI with A duplicated floor(l/K) times in off-chip traffic."""
        s = self.shape
        traffic_words = (
            s.m * s.k_words * self.dup_spatial + s.k_words * s.n + s.m * s.n
        )
        return s.total_ops / (traffic_words * self.SF_U16)

    def t_a_baseline(self) -> float:
        """Eq. 3: duplicated row DMAs (chained descriptors), staged to L1."""
        s, mv = self.shape, self.params.movement
        row_bytes = s.k_words * self.SF_U16
        per_row = row_bytes / self.bw_bytes_per_cycle + mv.dma_chained_init
        return per_row * self.dup_spatial * s.m + s.m * mv.dma_l2_l1

    def t_b_baseline(self) -> float:
        """Eq. 4: B moved as full vectors, amortized over the j-unroll."""
        return (self.shape.n / self.dup_spatial) * self.params.movement.dma_l4_l1

    def t_c_baseline(self) -> float:
        """Eq. 5: scattered outputs leave only element-wise PIO stores."""
        s = self.shape
        return s.m * s.n * self.params.movement.pio_st_per_elem

    def t_mac_baseline(self) -> float:
        """Eq. 6: per j-block compute with a full intra-VR reduction."""
        s = self.shape
        sg = self.params.reduction.sg_add(self._pow2_floor(s.k_words), 1)
        per_block = self._ops_chain_spatial() + sg
        blocks = (s.n / self.dup_spatial) * s.m
        return per_block * blocks

    def baseline(self) -> CostBreakdown:
        """Full baseline cost stack."""
        return CostBreakdown(
            t_a=self.t_a_baseline(),
            t_b=self.t_b_baseline(),
            t_c=self.t_c_baseline(),
            t_mac=self.t_mac_baseline(),
            operational_intensity=self.oi_baseline(),
        )

    # ------------------------------------------------------------------
    # Opt1: temporal reduction / scalar-vector product (Eqs. 7-11)
    # ------------------------------------------------------------------
    def oi_temporal(self) -> float:
        """Eq. 9: duplication moves from A to B."""
        s = self.shape
        traffic_words = (
            s.m * s.k_words + s.n * s.k_words * self.dup_temporal + s.m * s.n
        )
        return s.total_ops / (traffic_words * self.SF_U16)

    def t_mac_temporal(self) -> float:
        """Eq. 7: the reduction becomes an inter-VR element-wise add."""
        s, c = self.shape, self.params.compute
        per_iter = self._ops_chain_spatial() + c.add_s16
        return per_iter * (s.m / self.dup_temporal) * s.k_words

    def t_c_temporal(self) -> float:
        """Eq. 8: contiguous outputs stream back with full-vector DMA."""
        return (self.shape.m / self.dup_temporal) * self.params.movement.dma_l1_l4

    def t_a_temporal(self) -> float:
        """Eq. 10: A to L3 once, then lookup-broadcast per (block, k)."""
        s, mv = self.shape, self.params.movement
        to_l3 = (s.m * s.k_words * self.SF_U16) / self.bw_bytes_per_cycle \
            + mv.dma_l4_l3_init
        table = self.dup_temporal * s.k_words  # row-major block footprint
        lookups = (s.m / self.dup_temporal) * s.k_words
        return to_l3 + mv.lookup(table) * lookups

    def t_b_temporal(self) -> float:
        """Eq. 11: B rows duplicated across the VR by repeated DMA."""
        s, mv = self.shape, self.params.movement
        row_bytes = s.n * self.SF_U16
        per_row = row_bytes / self.bw_bytes_per_cycle + mv.dma_chained_init
        return per_row * self.dup_temporal * s.k_words + s.k_words * mv.dma_l2_l1

    def temporal(self) -> CostBreakdown:
        """Opt1 cost stack (temporal mapping, naive loading)."""
        return CostBreakdown(
            t_a=self.t_a_temporal(),
            t_b=self.t_b_temporal(),
            t_c=self.t_c_temporal(),
            t_mac=self.t_mac_temporal(),
            operational_intensity=self.oi_temporal(),
        )

    # ------------------------------------------------------------------
    # Opt2: DMA coalescing (Eqs. 12-13)
    # ------------------------------------------------------------------
    def t_b_coalesced(self) -> float:
        """Eq. 12: one bulk DMA of B plus per-k subgroup copies."""
        s, mv = self.shape, self.params.movement
        bulk = math.ceil(s.k_words * s.n / self.params.vr_length)
        return bulk * mv.dma_l4_l1 + s.k_words * mv.cpy_subgrp

    def oi_coalesced(self) -> float:
        """Eq. 13: every matrix crosses the off-chip boundary once."""
        s = self.shape
        traffic_words = s.m * s.k_words + s.n * s.k_words + s.m * s.n
        return s.total_ops / (traffic_words * self.SF_U16)

    def coalesced(self) -> CostBreakdown:
        """Opt1+2 cost stack."""
        return CostBreakdown(
            t_a=self.t_a_temporal(),
            t_b=self.t_b_coalesced(),
            t_c=self.t_c_temporal(),
            t_mac=self.t_mac_temporal(),
            operational_intensity=self.oi_coalesced(),
        )

    # ------------------------------------------------------------------
    # Opt3: broadcast-friendly layout (Eq. 14)
    # ------------------------------------------------------------------
    def t_a_broadcast_friendly(self) -> float:
        """Eq. 14: the lookup table shrinks to one contiguous window."""
        s, mv = self.shape, self.params.movement
        to_l3 = (s.m * s.k_words * self.SF_U16) / self.bw_bytes_per_cycle \
            + mv.dma_l4_l3_init
        table = self.dup_temporal  # the window itself, re-based per step
        lookups = (s.m / self.dup_temporal) * s.k_words
        return to_l3 + mv.lookup(table) * lookups

    def all_opts(self) -> CostBreakdown:
        """Opt1+2+3 cost stack."""
        return CostBreakdown(
            t_a=self.t_a_broadcast_friendly(),
            t_b=self.t_b_coalesced(),
            t_c=self.t_c_temporal(),
            t_mac=self.t_mac_temporal(),
            operational_intensity=self.oi_coalesced(),
        )

    # ------------------------------------------------------------------
    # Planner
    # ------------------------------------------------------------------
    def choose_mapping(self) -> ReductionMapping:
        """Pick the cheaper reduction mapping for this shape."""
        if self.baseline().total <= self.temporal().total:
            return ReductionMapping.SPATIAL
        return ReductionMapping.TEMPORAL

    def stage_totals_ms(self) -> dict:
        """Total latency (ms) of each optimization stage."""
        to_ms = self.params.cycles_to_ms
        return {
            "baseline": to_ms(self.baseline().total),
            "opt1": to_ms(self.temporal().total),
            "opt1+2": to_ms(self.coalesced().total),
            "opt1+2+3": to_ms(self.all_opts().total),
        }

    @staticmethod
    def _pow2_floor(value: int) -> int:
        """Largest power of two <= value (reductions need 2^k groups)."""
        return 1 << (int(value).bit_length() - 1)
