"""Graphene-style data layouts and the broadcast-friendly transform (Fig. 11).

The paper expresses layouts as dimension sizes and strides (the notation
proposed by Graphene [23]); what matters for the lookup-broadcast
optimization is the *span* of addresses a broadcast window touches,
because the L3 lookup table must be one contiguous chunk and lookup
latency grows linearly with table size (Table 4).

:class:`Layout` enumerates element addresses for arbitrary size/stride
nests, :func:`broadcast_window_span` measures the lookup table a window
requires, and :func:`broadcast_friendly` produces the transposed layout
that shrinks the window from ``rows x row_stride`` to ``rows`` (the
18 -> 3 reduction of Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "Dim",
    "Layout",
    "LayoutError",
    "broadcast_window_addresses",
    "broadcast_window_span",
    "broadcast_friendly",
    "lookup_table_entries",
]


class LayoutError(Exception):
    """Raised on malformed layout descriptions."""


@dataclass(frozen=True)
class Dim:
    """One layout dimension: iterate ``size`` steps of ``stride`` elements."""

    size: int
    stride: int

    def __post_init__(self):
        if self.size <= 0:
            raise LayoutError(f"dimension size must be positive, got {self.size}")
        if self.stride < 0:
            raise LayoutError(f"stride must be non-negative, got {self.stride}")


class Layout:
    """A nest of (size, stride) dimensions, outermost first.

    ``Layout([Dim(3, 6), Dim(6, 1)])`` is a row-major 3x6 matrix;
    ``Layout([Dim(6, 3), Dim(3, 1)])`` its broadcast-friendly transpose.
    Decomposed dimensions in the paper's tuple notation -- e.g.
    ``[(32, 32) @ 64]`` -- are expressed as two nested Dims
    ``Dim(32, 64), Dim(32, 64*32)``-style entries; the class does not
    distinguish them from ordinary nests because only the address map
    matters.
    """

    def __init__(self, dims: Sequence[Dim]):
        if not dims:
            raise LayoutError("a layout needs at least one dimension")
        self.dims: Tuple[Dim, ...] = tuple(dims)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def row_major(cls, shape: Sequence[int]) -> "Layout":
        """C-order layout for ``shape``."""
        dims: List[Dim] = []
        stride = 1
        for size in reversed(shape):
            dims.append(Dim(size, stride))
            stride *= size
        return cls(tuple(reversed(dims)))

    @classmethod
    def column_major(cls, shape: Sequence[int]) -> "Layout":
        """Fortran-order layout for ``shape``."""
        dims: List[Dim] = []
        stride = 1
        for size in shape:
            dims.append(Dim(size, stride))
            stride *= size
        return cls(dims)

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Sizes of the dimensions, outermost first."""
        return tuple(d.size for d in self.dims)

    @property
    def num_elements(self) -> int:
        """Total elements addressed."""
        n = 1
        for d in self.dims:
            n *= d.size
        return n

    def address(self, indices: Sequence[int]) -> int:
        """Linear element offset of a multi-dimensional index."""
        if len(indices) != len(self.dims):
            raise LayoutError(
                f"expected {len(self.dims)} indices, got {len(indices)}"
            )
        offset = 0
        for index, dim in zip(indices, self.dims):
            if not 0 <= index < dim.size:
                raise LayoutError(f"index {index} out of range for {dim}")
            offset += index * dim.stride
        return offset

    def addresses(self) -> np.ndarray:
        """All element offsets in iteration order (outer dims slowest)."""
        grids = [np.arange(d.size) * d.stride for d in self.dims]
        mesh = np.meshgrid(*grids, indexing="ij")
        return sum(mesh).reshape(-1)

    def footprint(self) -> int:
        """Smallest contiguous region (in elements) containing the layout."""
        addrs = self.addresses()
        return int(addrs.max()) + 1

    def is_bijective(self) -> bool:
        """Whether every element maps to a distinct address."""
        addrs = self.addresses()
        return len(np.unique(addrs)) == addrs.size

    # ------------------------------------------------------------------
    # Data application
    # ------------------------------------------------------------------
    def gather(self, flat: np.ndarray) -> np.ndarray:
        """Read elements of ``flat`` in layout order, shaped to the nest."""
        flat = np.asarray(flat).reshape(-1)
        return flat[self.addresses()].reshape(self.shape)

    def scatter(self, values: np.ndarray, out_size: int = None) -> np.ndarray:
        """Write ``values`` (in layout order) into a flat buffer."""
        values = np.asarray(values).reshape(-1)
        addrs = self.addresses()
        if values.size != addrs.size:
            raise LayoutError(
                f"value count {values.size} != layout size {addrs.size}"
            )
        if not self.is_bijective():
            raise LayoutError("scatter through a non-bijective layout")
        size = out_size if out_size is not None else self.footprint()
        out = np.zeros(size, dtype=values.dtype)
        out[addrs] = values
        return out

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def permute(self, order: Sequence[int]) -> "Layout":
        """Reorder the dimension nest (data stays put; iteration changes)."""
        if sorted(order) != list(range(len(self.dims))):
            raise LayoutError(f"bad permutation {order}")
        return Layout([self.dims[i] for i in order])

    def split(self, dim_index: int, factor: int) -> "Layout":
        """Split one dimension into (size/factor, factor) nested dims."""
        dim = self.dims[dim_index]
        if dim.size % factor != 0:
            raise LayoutError(f"{factor} does not divide size {dim.size}")
        outer = Dim(dim.size // factor, dim.stride * factor)
        inner = Dim(factor, dim.stride)
        dims = list(self.dims)
        dims[dim_index: dim_index + 1] = [outer, inner]
        return Layout(dims)

    def __str__(self) -> str:
        body = "; ".join(f"{d.size} @ {d.stride}" for d in self.dims)
        return f"[{body}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layout({list(self.dims)})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Layout) and self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)


# ----------------------------------------------------------------------
# Broadcast windows and lookup tables (Fig. 11)
# ----------------------------------------------------------------------
def broadcast_window_addresses(layout: Layout, window_dim: int,
                               step_indices: Sequence[int]) -> np.ndarray:
    """Addresses one broadcast step touches.

    The window sweeps dimension ``window_dim``; ``step_indices`` fixes
    every other dimension's position at 0 and the swept dimension's
    position to each entry -- i.e. the set of scalars broadcast together
    in one lookup (one per row in the Fig. 11 example).
    """
    addrs = []
    for idx in step_indices:
        full = [0] * len(layout.dims)
        full[window_dim] = idx
        addrs.append(layout.address(full))
    return np.asarray(addrs, dtype=np.int64)


def broadcast_window_span(layout: Layout, window_dim: int,
                          window: int) -> int:
    """Contiguous span covering one broadcast window of ``window`` entries."""
    addrs = broadcast_window_addresses(layout, window_dim, range(window))
    return int(addrs.max() - addrs.min()) + 1


def lookup_table_entries(layout: Layout, window_dim: int, window: int,
                         sweep_dim: int) -> int:
    """Lookup-table size needed to broadcast a window across a sweep.

    When consecutive windows overlap in memory (row-major Fig. 11a: the
    window {0, 6, 12} then {1, 7, 13}), the table cannot be re-based per
    step, so it must contain the union of every address the sweep
    touches -- 18 entries, "the first three rows".  When windows are
    disjoint (broadcast-friendly Fig. 11b: {0,1,2} then {3,4,5}), the
    table pointer advances each step and only one window's span is
    needed -- 3 entries.
    """
    sweep = layout.dims[sweep_dim]
    intervals = []  # (lo, hi) span of each step's window
    for position in range(sweep.size):
        addrs = []
        for w in range(window):
            full = [0] * len(layout.dims)
            full[window_dim] = w
            full[sweep_dim] = position
            addrs.append(layout.address(full))
        intervals.append((min(addrs), max(addrs)))

    disjoint = all(
        a_hi < b_lo or b_hi < a_lo
        for (a_lo, a_hi), (b_lo, b_hi) in zip(intervals, intervals[1:])
    )
    if disjoint:
        return max(hi - lo + 1 for lo, hi in intervals)
    return max(hi for _, hi in intervals) - min(lo for lo, _ in intervals) + 1


def broadcast_friendly(layout: Layout, window_dim: int) -> Layout:
    """Reorder a layout so the broadcast window becomes contiguous.

    Moves ``window_dim`` innermost and re-derives dense strides -- the
    Fig. 11(a) -> (b) transformation.  The returned layout addresses the
    same number of elements with the window dimension at stride 1.
    """
    order = [i for i in range(len(layout.dims)) if i != window_dim]
    order.append(window_dim)
    sizes = [layout.dims[i].size for i in order]
    dense = Layout.row_major(sizes)
    return dense
