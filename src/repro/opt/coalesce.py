"""DMA coalescing planner (paper Section 4.3, Fig. 10).

When a loop re-reads the same off-chip chunks across iterations (matrix
B's rows across the k-loop), issuing one DMA per use wastes bandwidth on
redundant transfers and pays the initiation overhead repeatedly.  The
coalesced plan stages each distinct chunk once -- packed into full-vector
DMAs -- and serves every use from on-chip storage with a constant-time
subgroup copy.

:func:`plan_coalescing` builds the plan from a transfer trace;
:func:`naive_cycles` / :meth:`CoalescePlan.cycles` quantify the saving
(Eq. 11 vs Eq. 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..core.params import APUParams, DEFAULT_PARAMS

__all__ = [
    "TransferRequest",
    "CoalescePlan",
    "plan_coalescing",
    "naive_cycles",
]


@dataclass(frozen=True)
class TransferRequest:
    """One off-chip read a kernel would issue.

    ``chunk_id`` identifies the source data (e.g. "row k of B"); equal
    ids across iterations are redundancy the coalescer removes.
    """

    chunk_id: int
    nbytes: int
    iteration: int


@dataclass
class CoalescePlan:
    """A coalesced schedule: bulk vector loads plus per-use subgroup copies."""

    bulk_vector_loads: int
    subgroup_copies: int
    distinct_bytes: int
    served_requests: int
    params: APUParams = field(default=DEFAULT_PARAMS, repr=False)

    def cycles(self) -> float:
        """Eq. 12-shaped cost: bulk DMAs plus constant-time copies."""
        mv = self.params.movement
        return (self.bulk_vector_loads * mv.dma_l4_l1
                + self.subgroup_copies * mv.cpy_subgrp)

    def on_chip_vectors(self) -> int:
        """L1 VMRs the staged data occupies."""
        return self.bulk_vector_loads


def plan_coalescing(requests: Sequence[TransferRequest],
                    params: APUParams = DEFAULT_PARAMS) -> CoalescePlan:
    """Build a coalesced plan for a transfer trace.

    Distinct chunks are packed densely into full 64 KB vectors and
    loaded once; every request is then served by one subgroup copy.
    """
    if not requests:
        return CoalescePlan(0, 0, 0, 0, params)
    sizes: Dict[int, int] = {}
    for req in requests:
        if req.nbytes <= 0:
            raise ValueError(f"transfer of {req.nbytes} bytes is invalid")
        known = sizes.get(req.chunk_id)
        if known is not None and known != req.nbytes:
            raise ValueError(
                f"chunk {req.chunk_id} requested with conflicting sizes "
                f"{known} and {req.nbytes}"
            )
        sizes[req.chunk_id] = req.nbytes

    distinct_bytes = sum(sizes.values())
    bulk = math.ceil(distinct_bytes / params.vr_bytes)
    return CoalescePlan(
        bulk_vector_loads=bulk,
        subgroup_copies=len(requests),
        distinct_bytes=distinct_bytes,
        served_requests=len(requests),
        params=params,
    )


def naive_cycles(requests: Sequence[TransferRequest],
                 params: APUParams = DEFAULT_PARAMS) -> float:
    """Cost of issuing every request as its own chained DMA (Eq. 11 shape)."""
    mv = params.movement
    bw = params.dram_bandwidth / params.clock_hz
    total = 0.0
    for req in requests:
        total += req.nbytes / bw + mv.dma_chained_init
        total += mv.dma_l2_l1  # stage each transfer through L2 into L1
    return total


def coalescing_saving(requests: Sequence[TransferRequest],
                      params: APUParams = DEFAULT_PARAMS) -> Tuple[float, float]:
    """(naive, coalesced) cycle costs for a trace."""
    return naive_cycles(requests, params), plan_coalescing(requests, params).cycles()
