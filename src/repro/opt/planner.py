"""Unified optimization planner: the three Section 4 techniques, composed.

Given a GEMM-shaped loop nest -- an output (M, N), a reduction axis K,
and per-operand layouts -- the planner makes the three decisions the
paper's optimizations embody and reports the expected cost of each:

1. **reduction mapping** (Section 4.2): spatial vs temporal, via the
   closed-form Eqs. 2-14;
2. **DMA coalescing** (Section 4.3): whether staging the reused operand
   on-chip beats re-fetching it, via the coalescing cost model;
3. **broadcast layout** (Section 4.4): whether transposing the
   broadcast operand shrinks the lookup table, via the Fig. 11 span
   analysis.

The emitted :class:`OptimizationPlan` carries machine-checkable
estimates, so schedulers (or tests) can verify each decision is locally
optimal under the cost tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.params import APUParams, DEFAULT_PARAMS
from .coalesce import TransferRequest, naive_cycles, plan_coalescing
from .layout import Layout, broadcast_friendly, lookup_table_entries
from .reduction import MatmulCostModel, MatmulShape, ReductionMapping

__all__ = ["PlanDecision", "OptimizationPlan", "OptimizationPlanner"]


@dataclass(frozen=True)
class PlanDecision:
    """One planner decision with its quantified alternatives."""

    name: str
    choice: str
    chosen_cycles: float
    alternative_cycles: float

    @property
    def saving(self) -> float:
        """Cycles saved versus the alternative (>= 0 when optimal)."""
        return self.alternative_cycles - self.chosen_cycles


@dataclass(frozen=True)
class OptimizationPlan:
    """The composed plan for one kernel."""

    shape: MatmulShape
    decisions: List[PlanDecision]
    estimated_total_cycles: float

    def decision(self, name: str) -> PlanDecision:
        """Look up a decision by name."""
        for decision in self.decisions:
            if decision.name == name:
                return decision
        raise KeyError(f"no decision named {name!r}")

    @property
    def total_saving(self) -> float:
        """Cycles saved across all decisions."""
        return sum(d.saving for d in self.decisions)


class OptimizationPlanner:
    """Compose the three optimizations for a GEMM-shaped kernel."""

    def __init__(self, params: APUParams = DEFAULT_PARAMS):
        self.params = params

    def plan(self, shape: MatmulShape) -> OptimizationPlan:
        """Produce the full plan for ``C(M,N) = A(M,K) x B(K,N)``."""
        model = MatmulCostModel(shape, self.params)
        decisions = [
            self._plan_mapping(model),
            self._plan_coalescing(model),
            self._plan_layout(model),
        ]
        mapping = decisions[0]
        if mapping.choice == ReductionMapping.TEMPORAL.value:
            total = model.all_opts().total
            # If staging B on-chip lost, back out the coalesced T_B.
            if decisions[1].choice == "refetch":
                total += model.t_b_temporal() - model.t_b_coalesced()
            if decisions[2].choice == "row-major":
                total += model.t_a_temporal() - model.t_a_broadcast_friendly()
        else:
            total = model.baseline().total
        return OptimizationPlan(
            shape=shape,
            decisions=decisions,
            estimated_total_cycles=total,
        )

    # ------------------------------------------------------------------
    # Individual decisions
    # ------------------------------------------------------------------
    def _plan_mapping(self, model: MatmulCostModel) -> PlanDecision:
        spatial = model.baseline().total
        temporal = model.all_opts().total
        choice = (ReductionMapping.TEMPORAL if temporal <= spatial
                  else ReductionMapping.SPATIAL)
        return PlanDecision(
            name="reduction_mapping",
            choice=choice.value,
            chosen_cycles=min(spatial, temporal),
            alternative_cycles=max(spatial, temporal),
        )

    def _plan_coalescing(self, model: MatmulCostModel) -> PlanDecision:
        shape = model.shape
        requests = []
        iteration = 0
        for _ in range(max(1, shape.m // model.dup_temporal)):
            for k in range(shape.k_words):
                requests.append(TransferRequest(
                    chunk_id=k,
                    nbytes=shape.n * MatmulCostModel.SF_U16,
                    iteration=iteration,
                ))
                iteration += 1
        naive = naive_cycles(requests, self.params)
        coalesced = plan_coalescing(requests, self.params).cycles()
        choice = "coalesce" if coalesced <= naive else "refetch"
        return PlanDecision(
            name="dma_coalescing",
            choice=choice,
            chosen_cycles=min(naive, coalesced),
            alternative_cycles=max(naive, coalesced),
        )

    def _plan_layout(self, model: MatmulCostModel) -> PlanDecision:
        shape = model.shape
        window = max(1, model.dup_temporal)
        window = min(window, shape.m)
        row_major = Layout.row_major((window, shape.k_words))
        friendly = broadcast_friendly(row_major, window_dim=0)
        rm_table = lookup_table_entries(row_major, 0, window,
                                        sweep_dim=1)
        bf_table = lookup_table_entries(friendly, 1, window, sweep_dim=0)
        lookups = max(1.0, shape.m / window) * shape.k_words
        rm_cycles = self.params.movement.lookup(rm_table) * lookups
        bf_cycles = self.params.movement.lookup(bf_table) * lookups
        choice = "broadcast-friendly" if bf_cycles <= rm_cycles else "row-major"
        return PlanDecision(
            name="broadcast_layout",
            choice=choice,
            chosen_cycles=min(rm_cycles, bf_cycles),
            alternative_cycles=max(rm_cycles, bf_cycles),
        )
