"""Command-line experiment runner: ``python -m repro.cli <experiment>``.

Regenerates any of the paper's tables and figures from the terminal
without going through pytest:

.. code-block:: bash

    python -m repro.cli list
    python -m repro.cli table7
    python -m repro.cli fig12 --m 512 --n 512 --k 512
    python -m repro.cli fig14
    python -m repro.cli serve --shards 4 --qps 200
    python -m repro.cli serve --corpus 10GB --fault-plan \\
        examples/fault_plan.json --timeout-ms 8 --failover degraded
    python -m repro.cli serve --autoscale --arrival spike --qps 250 \\
        --policy examples/autoscale_policy.json \\
        --priority-map "interactive=0.8,batch=0.2:0.25"
    python -m repro.cli all

plus the observability entry points: ``trace <workload>`` runs one
workload under the event-trace collector, prints the per-lane text
timeline, and exports a Chrome ``trace_event`` JSON for Perfetto:

.. code-block:: bash

    python -m repro.cli trace histogram
    python -m repro.cli trace rag --trace-out rag.json
    python -m repro.cli trace workloads   # list traceable workloads

and the request-level telemetry pair: ``spans <workload>`` renders the
per-query causal span trees with critical-path attribution (plus
optional flamegraph / Perfetto overlay exports), and ``metrics
<workload>`` emits the run's deterministic metrics registry as
Prometheus text or JSON:

.. code-block:: bash

    python -m repro.cli spans serve
    python -m repro.cli spans serve_faults --query 17 --flame-out f.txt
    python -m repro.cli metrics serve --format prom
    python -m repro.cli metrics serve_integrity --format json --out m.json

and the continuous-monitoring pair: ``monitor <workload>`` samples the
per-tick metric streams (rolling qps, TTI quantiles, SLO burn, pool /
queue depths, shed / retry / failover / HBM counters) and exports the
OpenMetrics scrape text, the static HTML dashboard, the Perfetto
counter-track trace, and the run bundle the cross-run differ consumes;
``diff <run-a> <run-b>`` compares two bundles with the benchmark
gate's tolerance policy and attributes the TTI delta to critical-path
stages:

.. code-block:: bash

    python -m repro.cli monitor serve_autoscale --monitor-out dash.html
    python -m repro.cli monitor serve --scrape-out scrape.om \\
        --bundle-out run_a.json --trace-out counters.json
    python -m repro.cli serve --autoscale --monitor-out dash.html
    python -m repro.cli diff run_a.json run_b.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

__all__ = ["main", "EXPERIMENTS"]


def _run_table1(args) -> None:
    from .core.params import DEVICE_SPECS

    print("Table 1: device comparison")
    for spec in DEVICE_SPECS.values():
        print(f"  {spec.name:18s} {spec.peak_tops:5.0f} TOPS "
              f"{spec.on_chip_bandwidth_tbs:5.0f} TB/s {spec.tdp_w:5.0f} W "
              f"-> {spec.tops_per_watt:6.2f} TOPS/W")


def _run_fig2(args) -> None:
    from .core.roofline import KernelPoint, RooflineModel
    from .opt.matmul import STAGE_ORDER, run_all_stages
    from .opt.reduction import MatmulShape

    shape = MatmulShape(args.m, args.n, args.k // 16)
    results = run_all_stages(args.m, args.n, args.k, functional=False)
    roofline = RooflineModel()
    print(f"Fig. 2: roofline (ridge at OI {roofline.ridge_point:.1f})")
    for stage in STAGE_ORDER:
        r = results[stage]
        point = KernelPoint(stage, r.operational_intensity,
                            r.performance_ops(shape))
        print(f"  {stage:10s} OI {point.operational_intensity:8.2f} "
              f"{point.performance / 1e9:8.2f} GOPS "
              f"eff {roofline.efficiency(point) * 100:5.1f}%")


def _run_fig12(args) -> None:
    from .core.reporting import format_stacked_breakdown
    from .opt.matmul import STAGE_ORDER, run_all_stages

    results = run_all_stages(args.m, args.n, args.k, functional=False)
    print(f"Fig. 12: {args.m}x{args.n}x{args.k} binary matmul (ms)")
    stages = {stage: results[stage].breakdown_ms for stage in STAGE_ORDER}
    print(format_stacked_breakdown(
        stages, ["LD LHS", "LD RHS", "VR Ops", "ST"]
    ))


def _run_table6(args) -> None:
    from .phoenix import PhoenixSuite

    for row in PhoenixSuite().table6_stats():
        cpu = (f"{row['cpu_instructions'] / 1e9:.1f}B"
               if row["cpu_instructions"] else "--")
        print(f"  {row['app']:18s} {row['input_size']:>14s} CPU {cpu:>7s} "
              f"APU {row['apu_ucode_instructions'] / 1e6:8.2f}M uops")


def _run_table7(args) -> None:
    from .phoenix import PhoenixSuite

    suite = PhoenixSuite()
    print("Table 7: measured vs predicted latency")
    for row in suite.table7_validation():
        print(f"  {row.app:18s} {row.measured_ms:9.2f} ms vs "
              f"{row.predicted_ms:9.2f} ms ({row.error * 100:+.2f}%)")
    print(f"  mean accuracy {suite.mean_accuracy() * 100:.2f}%")


def _run_fig13(args) -> None:
    from .phoenix import PhoenixSuite

    suite = PhoenixSuite()
    for row in suite.fig13_comparison():
        print(f"  {row.app:18s} vs1T {row.speedup_1t():7.2f}x "
              f"vs16T {row.speedup_16t():6.2f}x")
    print(" ", {k: round(v, 1) for k, v in suite.aggregate_speedups().items()})


def _run_table8(args) -> None:
    from .rag import APURetriever, PAPER_CORPORA

    for label, spec in PAPER_CORPORA.items():
        noopt = APURetriever(optimized=False).latency_breakdown(spec)
        opt = APURetriever(optimized=True).latency_breakdown(spec)
        print(f"  {label}: no-opt {noopt.total * 1e3:7.2f} ms, "
              f"all-opts {opt.total * 1e3:6.2f} ms")


def _run_fig14(args) -> None:
    from .rag import PAPER_CORPORA, fig14_comparison

    for entry in fig14_comparison():
        cells = "  ".join(f"{label} {entry.ttft_ms[label]:7.1f}"
                          for label in PAPER_CORPORA)
        print(f"  {entry.platform:14s} {cells}  (TTFT ms)")


def _run_fig15(args) -> None:
    from .rag import fig15_energy_comparison

    for label, point in fig15_energy_comparison().items():
        print(f"  {label}: APU {point.apu_energy.total_j:6.3f} J vs "
              f"GPU {point.gpu_energy_j:6.1f} J -> "
              f"{point.efficiency_ratio:.1f}x")


def _run_batching(args) -> None:
    from .rag import BatchedAPURetrieval, PAPER_CORPORA

    model = BatchedAPURetrieval()
    spec = PAPER_CORPORA[args.corpus]
    print(f"batched retrieval throughput at {args.corpus}:")
    for point in model.throughput_curve(spec):
        print(f"  batch {point.batch_size:3d}: "
              f"{point.per_query_seconds * 1e3:7.2f} ms/query, "
              f"{point.queries_per_second:7.1f} qps")


def _run_claims(args) -> None:
    from .validation import validate_reproduction

    print("paper claims vs this reproduction:")
    print(f"  {'claim':28s} {'paper':>10s} {'here':>10s} {'err':>8s}  ok")
    for key, result in validate_reproduction().items():
        status = "yes" if result.holds else "NO"
        print(f"  {key:28s} {result.claim.paper_value:10.3f} "
              f"{result.measured:10.3f} {result.relative_error * 100:+7.1f}%  "
              f"{status}")


def _build_scale_config(args, serve_config):
    """The elastic (or shaped-arrival) wrapper around one ServeConfig."""
    from .scale import ScaleConfig, ScalePolicy, ScalePolicyError, \
        parse_priority_map
    from .serve import ClosedLoopConfig, bursty_arrival_times, \
        diurnal_arrival_times, spike_arrival_times

    if not args.autoscale:
        for flag in ("policy", "priority_map"):
            if getattr(args, flag):
                raise SystemExit(
                    f"--{flag.replace('_', '-')} requires --autoscale")
        if args.clients:
            raise SystemExit("--clients requires --autoscale")
    policy = None
    if args.autoscale:
        try:
            policy = ScalePolicy.load(args.policy) if args.policy \
                else ScalePolicy()
            if args.priority_map:
                import dataclasses

                policy = dataclasses.replace(
                    policy, priorities=parse_priority_map(args.priority_map))
        except ScalePolicyError as exc:
            raise SystemExit(f"bad scale policy: {exc}")
    arrivals = None
    if args.arrival != "poisson":
        generate = {
            "bursty": bursty_arrival_times,
            "diurnal": diurnal_arrival_times,
            "spike": spike_arrival_times,
        }[args.arrival]
        arrivals = tuple(float(t) for t in generate(
            args.qps, args.requests, args.seed))
    closed_loop = None
    if args.clients:
        closed_loop = ClosedLoopConfig(
            n_clients=args.clients,
            think_time_s=args.think_ms * 1e-3,
            n_requests=args.requests,
            seed=args.seed,
        )
    try:
        return ScaleConfig(serve=serve_config, policy=policy,
                           arrivals=arrivals, closed_loop=closed_loop)
    except ValueError as exc:
        raise SystemExit(f"bad serve configuration: {exc}")


def _run_serve(args) -> None:
    import math

    from .ecc import ECCConfig, ECCConfigError
    from .faults import FaultPlan
    from .integrity import IntegrityConfig
    from .rag import PAPER_CORPORA
    from .serve import BatchPolicy, RetryPolicy, ServeConfig

    faults = FaultPlan()
    if args.fault_plan:
        faults = FaultPlan.load(args.fault_plan)
    if args.bit_flip_plan:
        faults = faults.merged_with(FaultPlan.load(args.bit_flip_plan))
    integrity = IntegrityConfig()
    if args.integrity:
        integrity = IntegrityConfig(
            enabled=True,
            max_recomputes=args.max_recomputes,
            scrub_interval_s=args.scrub_interval_ms * 1e-3,
        )
    elif args.scrub_interval_ms:
        raise SystemExit("--scrub-interval-ms requires --integrity")
    ecc = ECCConfig()
    if args.ecc:
        try:
            ecc = ECCConfig(
                enabled=True,
                tier=args.ecc_tier if args.ecc_tier is not None
                else "secded",
                data_bits=args.ecc_data_bits,
                t=args.ecc_t,
            )
        except ECCConfigError as exc:
            raise SystemExit(f"bad ECC configuration: {exc}")
    elif args.ecc_tier is not None:
        raise SystemExit("--ecc-tier requires --ecc")
    retry = RetryPolicy(
        timeout_s=math.inf if args.timeout_ms is None
        else args.timeout_ms * 1e-3,
        max_retries=args.max_retries,
        backoff_base_s=args.backoff_ms * 1e-3,
        backoff_cap_s=args.backoff_cap_ms * 1e-3,
    )
    config = ServeConfig(
        spec=PAPER_CORPORA[args.corpus],
        n_shards=args.shards,
        batch=BatchPolicy(max_batch=args.max_batch,
                          max_wait_s=args.max_wait_ms * 1e-3),
        k=args.topk,
        qps=args.qps,
        n_requests=args.requests,
        seed=args.seed,
        slo_s=args.slo_ms * 1e-3,
        faults=faults,
        retry=retry,
        failover=args.failover,
        integrity=integrity,
        ecc=ecc,
        engine=args.engine,
    )
    from .scale import ScaleSimulator

    scale_config = _build_scale_config(args, config)
    simulator = ScaleSimulator(scale_config)
    if args.monitor_out or args.scrape_out or args.bundle_out:
        workload = "serve_autoscale" if args.autoscale else "serve"
        cadence_s = args.cadence_ms * 1e-3 if args.cadence_ms else None
        report, telemetry, monitor = simulator.run_with_monitor(
            cadence_s=cadence_s, workload=workload)
        print(report.format())
        _write_monitor_outputs(args, workload, report, telemetry, monitor)
    else:
        print(simulator.run().format())


def _trace_runners() -> Dict[str, Callable]:
    """Traceable workloads: name -> runner returning the device's total
    cycles (``None`` when the workload builds its device internally)."""
    from .apu.device import APUDevice
    from .core.params import DEFAULT_PARAMS
    from .obs.micro import run_table4_micro, run_table5_micro
    from .phoenix.base import ALL_OPTS
    from .phoenix.suite import PhoenixSuite

    runners: Dict[str, Callable] = {}

    for name, app in PhoenixSuite().apps.items():
        def run_phoenix(app=app):
            device = APUDevice(DEFAULT_PARAMS, functional=False)
            app._latency_program(device, ALL_OPTS)
            return device.total_cycles
        runners[name] = run_phoenix

    def run_rag():
        from .rag.corpus import MiniCorpus
        from .rag.retrieval import APURetriever

        corpus = MiniCorpus(n_chunks=512, dim=64, seed=0)
        APURetriever(optimized=True).retrieve(
            corpus, corpus.sample_query(), k=5)
        return None

    def run_serve():
        from .serve import ServingSimulator, golden_serve_config

        ServingSimulator(golden_serve_config()).run()
        return None

    def run_serve_faults():
        from .serve import ServingSimulator, golden_fault_config

        ServingSimulator(golden_fault_config()).run()
        return None

    def run_serve_integrity():
        from .serve import ServingSimulator, golden_integrity_config

        ServingSimulator(golden_integrity_config()).run()
        return None

    def run_serve_ecc():
        from .serve import ServingSimulator, golden_ecc_config

        ServingSimulator(golden_ecc_config()).run()
        return None

    def run_serve_autoscale():
        from .scale import ScaleSimulator, golden_autoscale_config

        ScaleSimulator(golden_autoscale_config()).run()
        return None

    def run_serve_autoscale_faults():
        from .scale import ScaleSimulator, golden_autoscale_fault_config

        ScaleSimulator(golden_autoscale_fault_config()).run()
        return None

    runners["rag"] = run_rag
    runners["serve"] = run_serve
    runners["serve_faults"] = run_serve_faults
    runners["serve_integrity"] = run_serve_integrity
    runners["serve_ecc"] = run_serve_ecc
    runners["serve_autoscale"] = run_serve_autoscale
    runners["serve_autoscale_faults"] = run_serve_autoscale_faults
    runners["table4"] = lambda: run_table4_micro().total_cycles
    runners["table5"] = lambda: run_table5_micro().total_cycles
    return runners


def _run_trace(args) -> None:
    from .core.params import DEFAULT_PARAMS
    from .obs import LANE_HBM, collecting, render_timeline, write_chrome_trace

    workload = args.workload or "histogram"
    runners = _trace_runners()
    if workload == "workloads":
        for name in sorted(runners):
            print(name)
        return
    if workload not in runners:
        raise SystemExit(
            f"unknown trace workload {workload!r}; "
            "run 'trace workloads' to list them")
    if args.trace_events <= 0:
        raise SystemExit("--trace-events must be positive")
    with collecting(capacity=args.trace_events) as trace:
        expected = runners[workload]()

    print(f"trace of {workload!r}:")
    print(render_timeline(trace, clock_hz=DEFAULT_PARAMS.clock_hz))
    if expected is not None:
        core_cycles = sum(cycles for lane, cycles
                          in trace.cycles_by_lane.items() if lane != LANE_HBM)
        ok = abs(core_cycles - expected) <= 1e-6 * max(1.0, expected)
        print(f"conservation: per-lane sum {core_cycles:.0f} vs device total "
              f"{expected:.0f} cycles -> {'OK' if ok else 'MISMATCH'}")
    process_names = None
    if workload in ("serve", "serve_faults", "serve_integrity",
                    "serve_ecc"):
        from .serve import golden_serve_config

        shards = golden_serve_config().n_shards
        process_names = {i: f"shard {i}" for i in range(shards)}
        process_names[shards] = "host merge"
    elif workload in ("serve_autoscale", "serve_autoscale_faults"):
        from .scale import golden_autoscale_config

        capacity = golden_autoscale_config().policy.autoscale.max_shards
        process_names = {i: f"device slot {i}" for i in range(capacity)}
        process_names[capacity] = "host merge + control"
    out = args.trace_out or f"trace_{workload}.json"
    path = write_chrome_trace(out, trace, clock_hz=DEFAULT_PARAMS.clock_hz,
                              metadata={"workload": workload},
                              process_names=process_names)
    print(f"chrome trace written to {path} "
          "(open in Perfetto or chrome://tracing)")


#: Serving workloads the telemetry commands accept.
def _telemetry_configs() -> Dict[str, Callable]:
    from .scale import golden_autoscale_config, golden_autoscale_fault_config
    from .serve import golden_ecc_config, golden_fault_config, \
        golden_integrity_config, golden_serve_config

    return {
        "serve": golden_serve_config,
        "serve_faults": golden_fault_config,
        "serve_integrity": golden_integrity_config,
        "serve_ecc": golden_ecc_config,
        "serve_autoscale": golden_autoscale_config,
        "serve_autoscale_faults": golden_autoscale_fault_config,
    }


def _telemetry_simulator(config):
    """The simulator matching a telemetry workload config."""
    from .scale import ScaleConfig, ScaleSimulator
    from .serve import ServingSimulator

    if isinstance(config, ScaleConfig):
        return ScaleSimulator(config)
    return ServingSimulator(config)


def _telemetry_lanes(config) -> int:
    """Device lanes a telemetry workload's Perfetto export needs."""
    from .scale import ScaleConfig

    if isinstance(config, ScaleConfig):
        if config.policy is not None:
            return config.policy.autoscale.max_shards
        return config.serve.n_shards
    return config.n_shards


def _telemetry_workload(args):
    """Resolve (and validate) the telemetry workload argument."""
    configs = _telemetry_configs()
    workload = args.workload or "serve"
    if workload == "workloads":
        for name in sorted(configs):
            print(name)
        return None, None
    if workload not in configs:
        raise SystemExit(
            f"unknown telemetry workload {workload!r}; "
            f"choose from {', '.join(sorted(configs))}")
    return workload, configs[workload]()


def _run_spans(args) -> None:
    from .core.params import DEFAULT_PARAMS
    from .obs import collecting
    from .telemetry import (
        reconcile_with_trace,
        render_attribution,
        render_critical_path,
        render_query_trace,
        render_spans_report,
        write_flamegraph,
        write_telemetry_trace,
    )

    workload, config = _telemetry_workload(args)
    if workload is None:
        return
    if args.trace_events <= 0:
        raise SystemExit("--trace-events must be positive")
    clock = DEFAULT_PARAMS.clock_hz
    with collecting(capacity=args.trace_events) as trace:
        _report, telemetry = \
            _telemetry_simulator(config).run_with_telemetry()
    if args.query is not None:
        try:
            query_trace = telemetry.trace_for(args.query)
        except KeyError:
            raise SystemExit(
                f"no query {args.query} in workload {workload!r} "
                f"(ids 0..{len(telemetry.traces) - 1})")
        print(render_query_trace(query_trace))
        print()
        print(render_critical_path(telemetry.path_for(args.query), clock))
    else:
        limit = None if args.limit == 0 else args.limit
        print(render_spans_report(telemetry.traces, limit=limit))
        print()
        reconcile = reconcile_with_trace(telemetry.traces, trace, clock)
        print(render_attribution(telemetry.critical_paths, clock,
                                 reconcile=reconcile))
    if args.flame_out:
        path = write_flamegraph(args.flame_out, telemetry.traces, clock)
        print(f"flamegraph folded stacks written to {path} "
              "(feed to flamegraph.pl or speedscope)")
    if args.trace_out:
        shards = _telemetry_lanes(config)
        process_names = {i: f"shard {i}" for i in range(shards)}
        process_names[shards] = "host merge"
        path = write_telemetry_trace(
            args.trace_out, trace, telemetry.traces, clock,
            metadata={"workload": workload},
            process_names=process_names)
        print(f"chrome trace with span overlay written to {path} "
              "(open in Perfetto)")


def _run_metrics(args) -> None:
    workload, config = _telemetry_workload(args)
    if workload is None:
        return
    _report, telemetry = _telemetry_simulator(config).run_with_telemetry()
    if args.format == "prom":
        text = telemetry.registry.expose()
    else:
        text = telemetry.registry.snapshot_json() + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"{args.format} metrics for {workload!r} "
              f"written to {args.out}")
    else:
        print(text, end="")


def _write_monitor_outputs(args, workload, report, telemetry,
                           monitor) -> None:
    """Write whichever monitor exports the flags asked for."""
    from .monitor import (
        bundle_from_run,
        counter_tracks,
        openmetrics_text,
        render_dashboard,
        write_run_bundle,
    )

    if args.monitor_out:
        with open(args.monitor_out, "w") as handle:
            handle.write(render_dashboard(monitor))
        print(f"monitor dashboard written to {args.monitor_out} "
              "(self-contained HTML)")
    if args.scrape_out:
        with open(args.scrape_out, "w") as handle:
            handle.write(openmetrics_text(monitor))
        print(f"OpenMetrics scrape text written to {args.scrape_out}")
    if args.bundle_out:
        bundle = bundle_from_run(workload, report, telemetry, monitor)
        write_run_bundle(args.bundle_out, bundle)
        print(f"run bundle written to {args.bundle_out} "
              "(compare with 'diff <run-a> <run-b>')")
    if args.experiment == "monitor" and args.trace_out:
        from .monitor.counters import monitor_process_names
        from .obs import write_chrome_trace

        tracks = counter_tracks(monitor)
        path = write_chrome_trace(
            args.trace_out, [], metadata={"workload": workload},
            process_names=monitor_process_names(),
            counters=tracks)
        print(f"Perfetto counter-track trace written to {path} "
              "(open in Perfetto)")


def _run_monitor(args) -> None:
    workload, config = _telemetry_workload(args)
    if workload is None:
        return
    cadence_s = args.cadence_ms * 1e-3 if args.cadence_ms else None
    simulator = _telemetry_simulator(config)
    report, telemetry, monitor = simulator.run_with_monitor(
        cadence_s=cadence_s, workload=workload)

    print(f"monitor of {workload!r}: {len(monitor.series)} series x "
          f"{len(monitor.instants)} samples at "
          f"{monitor.cadence_s * 1e3:g} ms cadence, "
          f"horizon {monitor.horizon_s:.4f} s")
    for s in monitor.series:
        final = f"{s.final():g}" if s.points else "--"
        print(f"  {s.kind:7s} {s.key:46s} final {final}")
    _write_monitor_outputs(args, workload, report, telemetry, monitor)


def _run_diff(args) -> int:
    from .monitor import diff_bundles, format_diff, read_run_bundle

    if not args.workload or not args.workload2:
        raise SystemExit("diff needs two run-bundle paths: "
                         "diff <run-a> <run-b>")
    try:
        bundle_a = read_run_bundle(args.workload)
        bundle_b = read_run_bundle(args.workload2)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot load run bundle: {exc}")
    diff = diff_bundles(bundle_a, bundle_b, tolerance=args.tolerance)
    print(format_diff(diff, label_a=args.workload,
                      label_b=args.workload2), end="")
    return 1 if diff.regressed else 0


EXPERIMENTS: Dict[str, Callable] = {
    "claims": _run_claims,
    "table1": _run_table1,
    "fig2": _run_fig2,
    "fig12": _run_fig12,
    "table6": _run_table6,
    "table7": _run_table7,
    "fig13": _run_fig13,
    "table8": _run_table8,
    "fig14": _run_fig14,
    "fig15": _run_fig15,
    "batching": _run_batching,
    "serve": _run_serve,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all", "trace", "spans",
                                       "metrics", "monitor", "diff"],
        help="which experiment to run ('trace' runs a workload under "
             "the event-trace collector; 'spans' and 'metrics' run a "
             "serving workload under request-level telemetry; 'monitor' "
             "samples the continuous metric streams; 'diff' compares "
             "two run bundles)",
    )
    parser.add_argument(
        "workload", nargs="?", default=None,
        help="trace/spans/metrics/monitor only: workload to run (for "
             "trace: a Phoenix app, 'rag', 'serve', 'table4', 'table5'; "
             "for spans/metrics/monitor: 'serve', 'serve_faults', "
             "'serve_integrity', 'serve_ecc', 'serve_autoscale', "
             "'serve_autoscale_faults'; 'workloads' lists them); for "
             "diff: the baseline run-bundle path",
    )
    parser.add_argument(
        "workload2", nargs="?", default=None,
        help="diff only: the current run-bundle path",
    )
    parser.add_argument("--query", type=int, default=None,
                        help="spans only: render a single request's "
                             "span tree and critical path")
    parser.add_argument("--limit", type=int, default=8,
                        help="spans only: how many span trees to print "
                             "(0 = all)")
    parser.add_argument("--flame-out", default=None,
                        help="spans only: write folded-stack flamegraph "
                             "lines to this path")
    parser.add_argument("--format", choices=["prom", "json"],
                        default="prom",
                        help="metrics only: exposition format")
    parser.add_argument("--out", default=None,
                        help="metrics only: write the exposition to "
                             "this path instead of stdout")
    parser.add_argument("--trace-out", default=None,
                        help="trace/monitor: Chrome trace JSON output "
                             "path (trace default trace_<workload>.json; "
                             "for monitor, a counter-track trace)")
    parser.add_argument("--monitor-out", default=None,
                        help="monitor/serve: write the self-contained "
                             "HTML dashboard to this path")
    parser.add_argument("--scrape-out", default=None,
                        help="monitor/serve: write the OpenMetrics "
                             "scrape text to this path")
    parser.add_argument("--bundle-out", default=None,
                        help="monitor/serve: write the run bundle (for "
                             "'diff') to this path")
    parser.add_argument("--cadence-ms", type=float, default=0.0,
                        help="monitor/serve: sampling cadence in ms "
                             "(0 = the workload's default: the control "
                             "interval for elastic runs, 10 ms static)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="diff only: relative tolerance for "
                             "*_qps / *_ms metric gates")
    parser.add_argument("--trace-events", type=int, default=65536,
                        help="trace only: ring-buffer capacity in events")
    parser.add_argument("--m", type=int, default=1024,
                        help="matmul M dimension (fig2/fig12)")
    parser.add_argument("--n", type=int, default=1024,
                        help="matmul N dimension (fig2/fig12)")
    parser.add_argument("--k", type=int, default=1024,
                        help="matmul K dimension in bits (fig2/fig12)")
    parser.add_argument("--corpus", choices=["10GB", "50GB", "200GB"],
                        default="200GB", help="corpus scale (batching/serve)")
    parser.add_argument("--shards", type=int, default=4,
                        help="serve only: number of simulated APU shards")
    parser.add_argument("--qps", type=float, default=100.0,
                        help="serve only: offered Poisson request rate")
    parser.add_argument("--requests", type=int, default=256,
                        help="serve only: number of requests to simulate")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="serve only: dynamic-batch size cap per shard")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="serve only: max batch-formation wait (ms)")
    parser.add_argument("--topk", type=int, default=5,
                        help="serve only: results merged per query")
    parser.add_argument("--slo-ms", type=float, default=1000.0,
                        help="serve only: time-to-interactive SLO (ms)")
    parser.add_argument("--seed", type=int, default=0,
                        help="serve only: arrival-process seed")
    parser.add_argument("--fault-plan", default=None,
                        help="serve only: JSON fault plan for a scripted "
                             "chaos run (see repro.faults.FaultPlan)")
    parser.add_argument("--bit-flip-plan", default=None,
                        help="serve only: JSON fault plan of bit_flips to "
                             "merge into the chaos run (silent data "
                             "corruption)")
    parser.add_argument("--integrity", action="store_true",
                        help="serve only: enable ABFT protection (detect "
                             "and recompute corrupted batches)")
    parser.add_argument("--max-recomputes", type=int, default=3,
                        help="serve only: recompute budget per detection "
                             "before the shard fails over")
    parser.add_argument("--scrub-interval-ms", type=float, default=0.0,
                        help="serve only: periodic memory-scrub interval "
                             "(0 disables; requires --integrity)")
    parser.add_argument("--ecc", action="store_true",
                        help="serve only: enable code-based memory "
                             "protection (upsets land in codewords; "
                             "storage and decode costs are charged)")
    parser.add_argument("--ecc-tier", default=None,
                        help="serve only: protection tier, 'secded' "
                             "(the default) or 'bch' (requires --ecc)")
    parser.add_argument("--ecc-t", type=int, default=2,
                        help="serve only: BCH correction strength "
                             "(bits per codeword; ignored by secded)")
    parser.add_argument("--ecc-data-bits", type=int, default=64,
                        help="serve only: codeword payload width in bits "
                             "(a multiple of the 16-bit VR word)")
    parser.add_argument("--autoscale", action="store_true",
                        help="serve only: run the elastic pool with the "
                             "burn-rate autoscaler and admission control")
    parser.add_argument("--policy", default=None,
                        help="serve only: JSON scale-policy bundle "
                             "(see examples/autoscale_policy.json; "
                             "requires --autoscale)")
    parser.add_argument("--priority-map", default=None,
                        help="serve only: priority classes as "
                             "'name=share[:weight],...' (requires "
                             "--autoscale); low-weight classes shed first")
    parser.add_argument("--arrival",
                        choices=["poisson", "bursty", "diurnal", "spike"],
                        default="poisson",
                        help="serve only: arrival-process shape "
                             "(non-Poisson shapes modulate --qps)")
    parser.add_argument("--clients", type=int, default=0,
                        help="serve only: closed-loop client population "
                             "(0 = open loop; requires --autoscale)")
    parser.add_argument("--think-ms", type=float, default=10.0,
                        help="serve only: mean closed-loop think time (ms)")
    parser.add_argument("--failover", choices=["reroute", "degraded"],
                        default="reroute",
                        help="serve only: response to a shard death")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        help="serve only: per-batch timeout (default: none)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="serve only: consecutive failed attempts "
                             "before a shard is declared dead")
    parser.add_argument("--backoff-ms", type=float, default=1.0,
                        help="serve only: base retry backoff (doubles per "
                             "consecutive failure)")
    parser.add_argument("--backoff-cap-ms", type=float, default=8.0,
                        help="serve only: retry backoff cap")
    from .simcore.engine import DEFAULT_ENGINE, ENGINES

    parser.add_argument("--engine", choices=list(ENGINES),
                        default=DEFAULT_ENGINE,
                        help="serve only: simulation backend (the "
                             "vectorized core is bit-identical to the "
                             "scalar reference and ~100x faster)")
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.experiment == "trace":
        _run_trace(args)
        return 0
    if args.experiment == "spans":
        _run_spans(args)
        return 0
    if args.experiment == "metrics":
        _run_metrics(args)
        return 0
    if args.experiment == "monitor":
        _run_monitor(args)
        return 0
    if args.experiment == "diff":
        return _run_diff(args)
    if args.experiment == "all":
        for name, runner in EXPERIMENTS.items():
            print(f"=== {name} ===")
            runner(args)
        return 0
    EXPERIMENTS[args.experiment](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
