"""Canonical Table 4/5 microbenchmark programs for tracing and goldens.

One timing-only program per cost table, touching every operation once
inside labeled sections.  The CLI ``trace table4`` / ``trace table5``
workloads and the golden-trace regression tests share these, so the
goldens pin exactly the op set a reader sees in the paper's tables: any
edit to a :class:`~repro.core.params.DataMovementCosts` /
:class:`~repro.core.params.ComputeCosts` constant shifts the serialized
trace and fails the golden with a field-level diff.

This module deliberately is not imported by ``repro.obs.__init__``: it
pulls in the simulator, and the observability leaf modules must stay
importable from inside ``repro.core.estimator``.
"""

from __future__ import annotations

from ..apu.device import APUDevice
from ..core.params import APUParams, DEFAULT_PARAMS

__all__ = ["TABLE5_OPS", "run_table4_micro", "run_table5_micro"]

#: Every Table 5 op as a (gvml method, args) pair -- mirrors the
#: ``bench_table5_compute`` case list.
TABLE5_OPS = (
    ("and_16", (2, 0, 1)),
    ("or_16", (2, 0, 1)),
    ("not_16", (2, 0)),
    ("xor_16", (2, 0, 1)),
    ("sr_imm_16", (2, 0, 3)),
    ("add_u16", (2, 0, 1)),
    ("add_s16", (2, 0, 1)),
    ("sub_u16", (2, 0, 1)),
    ("sub_s16", (2, 0, 1)),
    ("popcnt_16", (2, 0)),
    ("mul_u16", (2, 0, 1)),
    ("mul_s16", (2, 0, 1)),
    ("mul_f16", (2, 0, 1)),
    ("div_u16", (2, 0, 1)),
    ("div_s16", (2, 0, 1)),
    ("eq_16", (0, 0, 1)),
    ("gt_u16", (0, 0, 1)),
    ("lt_u16", (0, 0, 1)),
    ("lt_gf16", (0, 0, 1)),
    ("ge_u16", (0, 0, 1)),
    ("le_u16", (0, 0, 1)),
    ("recip_u16", (2, 0)),
    ("exp_f16", (2, 0)),
    ("sin_fx", (2, 0)),
    ("cos_fx", (2, 0)),
    ("count_m", (0,)),
)


def run_table4_micro(params: APUParams = DEFAULT_PARAMS) -> APUDevice:
    """Charge every Table 4 data-movement op once; returns the device."""
    device = APUDevice(params, functional=False)
    core = device.core
    with core.section("dma"):
        core.dma.l4_to_l2(None, 4096)
        core.dma.l2_to_l4(None, 4096)
        core.dma.l4_to_l3(None, 65536)
        core.dma.l4_to_l2_strided(None, 512, 1024, 8)
        core.dma.l4_to_l2_duplicated(None, 512, 4)
        core.dma.l2_to_l1(0)
        core.dma.l1_to_l2(0)
        core.dma.l4_to_l1_32k(0)
        core.dma.l1_to_l4_32k(None, 0)
    with core.section("pio"):
        core.dma.pio_ld(0, n=64)
        core.dma.pio_st(None, 0, n=64)
        core.dma.lookup_16(0, None, 1024)
    with core.section("vr"):
        gvml = core.gvml
        gvml.load_16(0, 0)
        gvml.store_16(0, 0)
        gvml.cpy_16(1, 0)
        gvml.cpy_imm_16(0, 7)
        gvml.cpy_subgrp_16_grp(1, 0, 1024)
        gvml.shift_e(0, 5)
        gvml.shift_e4(0, 4)
    return device


def run_table5_micro(params: APUParams = DEFAULT_PARAMS) -> APUDevice:
    """Charge every Table 5 compute op once; returns the device."""
    device = APUDevice(params, functional=False)
    core = device.core
    with core.section("compute"):
        for method, args in TABLE5_OPS:
            getattr(core.gvml, method)(*args)
    with core.section("reduction"):
        core.gvml.add_subgrp_s16(1, 0, 1024, 1)
    return device
