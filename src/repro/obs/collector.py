"""Bounded event collection with always-on aggregate counters.

A :class:`TraceCollector` receives :class:`~repro.obs.events.TraceEvent`
objects from the recording funnels (``LatencyEstimator._commit`` and
``DRAMModel.transfer_seconds``).  Raw events go into a bounded ring
buffer -- paper-scale programs can emit arbitrarily many, so the ring
keeps memory flat and counts what it drops -- while the aggregate
counters (cycles by lane and section, bytes by lane, per-op totals, the
VR-occupancy high-water mark) are exact over the *whole* run regardless
of ring capacity.  Golden traces and the conservation tests are built on
the aggregates; timeline rendering uses the ring.

Collection is **disabled by default**: no collector is installed unless
:func:`collecting` / :func:`set_collector` activates one, and the hot
paths reduce to a single ``None`` check, so paper-scale timing runs pay
no measurable overhead.
"""

from __future__ import annotations

import contextlib
from collections import deque
from typing import Dict, Iterator, Optional, Tuple

from .events import TraceEvent

__all__ = [
    "TraceCollector",
    "active_collector",
    "set_collector",
    "collecting",
]

#: Default ring-buffer capacity (events retained for timeline views).
DEFAULT_CAPACITY = 65536


class TraceCollector:
    """Ring-buffered event sink with exact aggregate counters."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self.events: "deque[TraceEvent]" = deque(maxlen=capacity)
        #: Events evicted from the ring (aggregates still include them).
        self.dropped = 0
        self.total_events = 0
        self.cycles_by_lane: Dict[str, float] = {}
        self.cycles_by_section: Dict[str, float] = {}
        self.bytes_by_lane: Dict[str, int] = {}
        #: (op name, lane) -> [executions, cycles, bytes].
        self.op_totals: Dict[Tuple[str, str], list] = {}
        #: Most computation-enabled VRs simultaneously live (functional runs).
        self.vr_high_water = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)
        self.total_events += 1
        cycles = event.total_cycles
        nbytes = event.total_bytes
        self.cycles_by_lane[event.lane] = (
            self.cycles_by_lane.get(event.lane, 0.0) + cycles
        )
        self.cycles_by_section[event.section] = (
            self.cycles_by_section.get(event.section, 0.0) + cycles
        )
        if nbytes:
            self.bytes_by_lane[event.lane] = (
                self.bytes_by_lane.get(event.lane, 0) + nbytes
            )
        totals = self.op_totals.get((event.name, event.lane))
        if totals is None:
            self.op_totals[(event.name, event.lane)] = [
                event.count, cycles, nbytes,
            ]
        else:
            totals[0] += event.count
            totals[1] += cycles
            totals[2] += nbytes

    def note_vr_occupancy(self, live_vrs: int) -> None:
        """Update the VR-occupancy high-water mark (no-op while disabled)."""
        if self.enabled and live_vrs > self.vr_high_water:
            self.vr_high_water = live_vrs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        """Cycles across every lane (exact, ring-independent)."""
        return sum(self.cycles_by_lane.values())

    @property
    def total_bytes(self) -> int:
        """Bytes moved across every lane (exact, ring-independent)."""
        return sum(self.bytes_by_lane.values())

    def summary(self) -> Dict[str, object]:
        """Aggregate view used by reporting and tests."""
        return {
            "total_events": self.total_events,
            "dropped": self.dropped,
            "total_cycles": self.total_cycles,
            "total_bytes": self.total_bytes,
            "cycles_by_lane": dict(self.cycles_by_lane),
            "cycles_by_section": dict(self.cycles_by_section),
            "bytes_by_lane": dict(self.bytes_by_lane),
            "vr_high_water": self.vr_high_water,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all events and zero every counter."""
        self.events.clear()
        self.dropped = 0
        self.total_events = 0
        self.cycles_by_lane.clear()
        self.cycles_by_section.clear()
        self.bytes_by_lane.clear()
        self.op_totals.clear()
        self.vr_high_water = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceCollector(events={self.total_events}, "
            f"cycles={self.total_cycles:.0f}, dropped={self.dropped})"
        )


#: The globally active collector; ``None`` means tracing is off.  Read
#: directly (``collector.ACTIVE``) by the recording hot paths so the
#: disabled case costs one attribute load and a ``None`` check.
ACTIVE: Optional[TraceCollector] = None


def active_collector() -> Optional[TraceCollector]:
    """The collector currently receiving events, or ``None``."""
    return ACTIVE


def set_collector(collector: Optional[TraceCollector]) -> Optional[TraceCollector]:
    """Install (or with ``None``, remove) the active collector.

    Returns the previously active collector so callers can restore it.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = collector
    return previous


@contextlib.contextmanager
def collecting(collector: Optional[TraceCollector] = None,
               capacity: int = DEFAULT_CAPACITY) -> Iterator[TraceCollector]:
    """Activate a collector for the enclosed block.

    ::

        with collecting() as trace:
            app.measured_latency_ms()
        print(trace.cycles_by_lane)
    """
    own = collector if collector is not None else TraceCollector(capacity)
    previous = set_collector(own)
    try:
        yield own
    finally:
        set_collector(previous)
