"""Chrome ``trace_event`` JSON export (viewable in Perfetto / chrome://tracing).

Converts a collector's ring buffer into the JSON Object Format of the
Trace Event specification: complete ("ph": "X") duration events with
microsecond timestamps, one process row per APU core and one thread row
per engine lane, plus "M" metadata events so the viewer labels the rows.
Optional **counter tracks** ("ph": "C") render continuous series --
the run monitor's qps/burn/pool streams -- as Perfetto counter lanes
beside the duration rows.  The exported dict round-trips through
``json`` and loads directly in Perfetto's "Open trace file".
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .collector import TraceCollector
from .events import LANES, TraceEvent

__all__ = ["CounterTrack", "chrome_trace", "chrome_trace_json",
           "write_chrome_trace"]

#: Default clock for cycle -> microsecond conversion (GSI Leda-E, 500 MHz).
DEFAULT_CLOCK_HZ = 500e6

#: One Perfetto counter lane: display name, process id, and
#: ``(timestamp_us, value)`` points in ascending time order.
CounterTrack = Tuple[str, int, Sequence[Tuple[float, float]]]

#: Stable thread ids per lane (Perfetto sorts rows by tid).
_LANE_TIDS: Dict[str, int] = {lane: index for index, lane in enumerate(LANES)}


def _lane_tid(lane: str) -> int:
    """Thread id for a lane (unknown lanes sort after the known four)."""
    return _LANE_TIDS.get(lane, len(_LANE_TIDS))


def chrome_trace(collector_or_events, clock_hz: float = DEFAULT_CLOCK_HZ,
                 metadata: Optional[Dict[str, object]] = None,
                 process_names: Optional[Dict[int, str]] = None,
                 counters: Optional[Sequence[CounterTrack]] = None,
                 ) -> Dict[str, object]:
    """Build the Chrome trace dict for a collector (or event iterable).

    Cycle timestamps are converted to microseconds at ``clock_hz``;
    HBM-lane events are emitted on the same timebase (their cycles are
    controller cycles -- the ``args.cycles`` field keeps the raw value).
    ``process_names`` overrides the default ``"APU core <id>"`` label
    per ``core_id`` -- the serving simulator uses it to label one
    Perfetto process row per shard device.  ``counters`` appends one
    "ph": "C" counter lane per track after the duration events; when
    omitted (the default) the output is byte-identical to the
    counter-free export.
    """
    if isinstance(collector_or_events, TraceCollector):
        events: Iterable[TraceEvent] = collector_or_events.events
        extra = {"dropped_events": collector_or_events.dropped,
                 "total_events": collector_or_events.total_events,
                 "vr_high_water": collector_or_events.vr_high_water}
    else:
        events = list(collector_or_events)
        extra = {}

    us_per_cycle = 1e6 / clock_hz
    trace_events: List[Dict[str, object]] = []
    seen_rows = set()
    for event in events:
        pid, tid = event.core_id, _lane_tid(event.lane)
        if (pid, None) not in seen_rows:
            seen_rows.add((pid, None))
            label = (process_names or {}).get(pid, f"APU core {pid}")
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
        if (pid, tid) not in seen_rows:
            seen_rows.add((pid, tid))
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": event.lane},
            })
        args: Dict[str, object] = {
            "count": event.count,
            "cycles": event.total_cycles,
        }
        if event.section:
            args["section"] = event.section
        if event.bytes_moved:
            args["bytes"] = event.total_bytes
        trace_events.append({
            "name": event.name,
            "cat": event.lane,
            "ph": "X",
            "ts": event.start_cycle * us_per_cycle,
            "dur": event.total_cycles * us_per_cycle,
            "pid": pid,
            "tid": tid,
            "args": args,
        })

    for name, pid, points in counters or ():
        if (pid, None) not in seen_rows:
            seen_rows.add((pid, None))
            label = (process_names or {}).get(pid, f"APU core {pid}")
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
        for ts_us, value in points:
            trace_events.append({
                "name": name,
                "ph": "C",
                "ts": ts_us,
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            })

    other: Dict[str, object] = {"clock_hz": clock_hz}
    other.update(extra)
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def chrome_trace_json(collector_or_events, clock_hz: float = DEFAULT_CLOCK_HZ,
                      metadata: Optional[Dict[str, object]] = None,
                      indent: Optional[int] = None,
                      process_names: Optional[Dict[int, str]] = None,
                      counters: Optional[Sequence[CounterTrack]] = None) -> str:
    """The Chrome trace serialized to a JSON string."""
    return json.dumps(chrome_trace(collector_or_events, clock_hz, metadata,
                                   process_names, counters),
                      indent=indent)


def write_chrome_trace(path, collector_or_events,
                       clock_hz: float = DEFAULT_CLOCK_HZ,
                       metadata: Optional[Dict[str, object]] = None,
                       process_names: Optional[Dict[int, str]] = None,
                       counters: Optional[Sequence[CounterTrack]] = None) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    text = chrome_trace_json(collector_or_events, clock_hz, metadata,
                             indent=1, process_names=process_names,
                             counters=counters)
    with open(path, "w") as handle:
        handle.write(text)
    return str(path)
