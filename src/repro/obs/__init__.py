"""Structured event-trace observability for the simulator and framework.

``repro.obs`` turns the cycle-charging funnels into a typed event
stream: every charged operation becomes a
:class:`~repro.obs.events.TraceEvent` (op name, engine lane, start/end
cycle, folded count, section path, bytes moved) delivered to a bounded
:class:`~repro.obs.collector.TraceCollector`.  On top of the stream:

* exact aggregate counters -- cycles by lane/section, DMA bytes, the
  VR-occupancy high-water mark;
* Chrome ``trace_event`` JSON export (:mod:`repro.obs.export`),
  viewable in Perfetto;
* a plain-text timeline renderer (:mod:`repro.obs.timeline`);
* golden-trace serialization and diffing (:mod:`repro.obs.golden`) for
  the regression harness under ``tests/goldens/``.

Collection is off by default; activate it around any workload::

    from repro.obs import collecting, render_timeline

    with collecting() as trace:
        app.measured_latency_ms()
    print(render_timeline(trace))
"""

# Leaf modules (events, collector) must load before the renderers so the
# estimator's import of this package never recurses through repro.core.
from .events import (
    LANE_DMA,
    LANE_FAULT,
    LANE_HBM,
    LANE_INTEGRITY,
    LANE_PIO,
    LANE_SCALE,
    LANE_VCU,
    LANES,
    TraceEvent,
    lane_for_op,
)
from .collector import (
    TraceCollector,
    active_collector,
    collecting,
    set_collector,
)
from .export import chrome_trace, chrome_trace_json, write_chrome_trace
from .golden import golden_diff, render_cost_golden, render_trace_golden
from .timeline import render_lane_summary, render_timeline

__all__ = [
    "LANE_DMA",
    "LANE_FAULT",
    "LANE_HBM",
    "LANE_INTEGRITY",
    "LANE_PIO",
    "LANE_SCALE",
    "LANE_VCU",
    "LANES",
    "TraceCollector",
    "TraceEvent",
    "active_collector",
    "chrome_trace",
    "chrome_trace_json",
    "collecting",
    "golden_diff",
    "lane_for_op",
    "render_cost_golden",
    "render_lane_summary",
    "render_timeline",
    "render_trace_golden",
    "set_collector",
    "write_chrome_trace",
]
