"""Golden-trace serialization and human-readable diffing.

The regression harness pins canonical traces (Table 4/5 microbenchmarks,
Phoenix latency programs, the RAG pipeline) as plain-text goldens under
``tests/goldens/``.  The renderers here are deliberately built on the
collector's *aggregate* counters -- per-lane, per-section and per-op
totals -- so a golden is deterministic regardless of ring-buffer
capacity, yet still shifts whenever any Table 4/5 cost constant (or the
structure of a program) changes.  ``golden_diff`` turns a mismatch into
a unified diff so a failing test reads like a code review, not a hash
mismatch.
"""

from __future__ import annotations

import dataclasses
import difflib
from typing import Optional

from .collector import TraceCollector
from .events import LANES

__all__ = [
    "render_trace_golden",
    "render_cost_golden",
    "golden_diff",
]


def _fmt(value: float) -> str:
    """Fixed-precision cycle formatting (stable across platforms)."""
    return f"{value:.3f}"


def render_trace_golden(collector: TraceCollector, title: str = "trace") -> str:
    """Serialize a collected trace as deterministic golden text.

    One line per aggregate: total cycles, per-lane cycles/bytes,
    per-section cycles, and per-(op, lane) execution counts and cycle
    totals (sorted), with the VR high-water mark when tracked.
    """
    lines = [f"# golden trace: {title}"]
    lines.append(f"total_cycles {_fmt(collector.total_cycles)}")
    lines.append(f"total_events {collector.total_events}")
    if collector.vr_high_water:
        lines.append(f"vr_high_water {collector.vr_high_water}")
    known = [lane for lane in LANES if lane in collector.cycles_by_lane]
    extra = sorted(set(collector.cycles_by_lane) - set(known))
    for lane in known + extra:
        lines.append(
            f"lane {lane} cycles={_fmt(collector.cycles_by_lane[lane])} "
            f"bytes={collector.bytes_by_lane.get(lane, 0)}"
        )
    for section in sorted(collector.cycles_by_section):
        lines.append(
            f"section {section or '(unattributed)'} "
            f"cycles={_fmt(collector.cycles_by_section[section])}"
        )
    for (name, lane) in sorted(collector.op_totals):
        count, cycles, nbytes = collector.op_totals[(name, lane)]
        line = f"op {name} lane={lane} count={count} cycles={_fmt(cycles)}"
        if nbytes:
            line += f" bytes={nbytes}"
        lines.append(line)
    return "\n".join(lines) + "\n"


def render_cost_golden(costs, title: str) -> str:
    """Serialize a cost-table dataclass (Table 4 or 5) field by field.

    Pins every constant so an edit fails the golden with a one-line
    diff naming the changed field, instead of silently shifting every
    downstream figure.
    """
    lines = [f"# golden costs: {title}"]
    for field in dataclasses.fields(costs):
        lines.append(f"{field.name} {_fmt(getattr(costs, field.name))}")
    return "\n".join(lines) + "\n"


def golden_diff(expected: str, actual: str,
                name: str = "golden") -> Optional[str]:
    """Unified diff between golden and actual text; ``None`` if equal."""
    if expected == actual:
        return None
    diff = difflib.unified_diff(
        expected.splitlines(keepends=True),
        actual.splitlines(keepends=True),
        fromfile=f"{name} (golden)",
        tofile=f"{name} (actual)",
    )
    return "".join(diff)
