"""Typed trace events and the engine-lane taxonomy.

Every charged operation in the simulator (and in the closed-form
framework, which shares the :class:`~repro.core.estimator.LatencyEstimator`
recording funnel) can be materialized as a :class:`TraceEvent`: the op
name, the engine lane it occupied, its start/end cycle on that core's
timeline, the folded repeat count, the ``section()`` attribution path,
and the bytes it moved.  Lanes follow the paper's Fig. 3 engine split:

* ``VCU`` -- vector commands issued through the control processor
  (every GVML call, including the L1<->VR loads/stores of Table 4);
* ``DMA`` -- the two per-core DMA engines (``dma_*`` ops);
* ``PIO`` -- programmed I/O through the response FIFO (``pio_*``,
  ``rsp_*``) and the L3 indexed ``lookup``;
* ``HBM`` -- the simulated off-chip memory system (controller cycles,
  emitted by :class:`repro.hbm.dram.DRAMModel`);
* ``FAULT`` -- injected faults and the serving stack's reactions
  (stalls, outages, timeouts, retries, failover), emitted by
  :class:`repro.serve.simulator.ServingSimulator` so Perfetto shows
  outages alongside the work they disrupted;
* ``INTEGRITY`` -- silent-data-corruption events and the defenses
  (bit flips, detections, recomputes, scrub passes, undetected
  escapes), emitted by the :mod:`repro.integrity` subsystem and the
  serving simulator;
* ``SCALE`` -- the elastic control plane (autoscaler ticks, device
  attach/warm-up/detach/drain, admission shedding), emitted by
  :class:`repro.scale.simulator.ScaleSimulator` so Perfetto shows pool
  motion alongside the serving work that triggered it.

This module is dependency-free so that the recording hot paths can
import it without touching the rest of the package.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LANE_VCU",
    "LANE_DMA",
    "LANE_PIO",
    "LANE_HBM",
    "LANE_FAULT",
    "LANE_INTEGRITY",
    "LANE_SCALE",
    "LANES",
    "lane_for_op",
    "TraceEvent",
]

#: Vector commands issued through the CP/VCU.
LANE_VCU = "VCU"
#: The per-core DMA engines.
LANE_DMA = "DMA"
#: Programmed I/O through the RSP FIFO, plus L3 indexed lookup.
LANE_PIO = "PIO"
#: The off-chip memory system (controller clock domain).
LANE_HBM = "HBM"
#: Injected faults and the serving stack's reactions to them.
LANE_FAULT = "FAULT"
#: Silent data corruption and the integrity defenses.
LANE_INTEGRITY = "INTEGRITY"
#: The elastic control plane (autoscaling, admission, shedding).
LANE_SCALE = "SCALE"

#: Every known lane, in display order.
LANES = (LANE_VCU, LANE_DMA, LANE_PIO, LANE_HBM, LANE_FAULT,
         LANE_INTEGRITY, LANE_SCALE)

#: Op names charged outside the ``dma_`` / ``pio_`` prefixes that still
#: occupy the PIO path (element traffic through the response FIFO).
_PIO_OPS = frozenset({"lookup", "rsp_get", "rsp_set"})


#: Memoized name -> lane classifications.  The op vocabulary is small
#: and fixed, and ``lane_for_op`` sits on the cycle-charging hot path,
#: so repeat classifications must cost one dict hit.
_LANE_CACHE: dict = {}


def lane_for_op(name: str) -> str:
    """Classify an op name onto its engine lane.

    The charge sites use stable prefixes (``dma_l4_l2``, ``pio_st``,
    ``hbm2e_sequential``) so classification never needs a registry; any
    unrecognized name is a vector command and lands on the VCU lane.
    """
    lane = _LANE_CACHE.get(name)
    if lane is None:
        if name.startswith("dma_"):
            lane = LANE_DMA
        elif name.startswith("pio_") or name in _PIO_OPS:
            lane = LANE_PIO
        elif name.startswith(("hbm", "ddr", "dram")):
            lane = LANE_HBM
        elif name.startswith(("integrity_", "scrub")):
            lane = LANE_INTEGRITY
        elif name.startswith("fault_"):
            lane = LANE_FAULT
        elif name.startswith("scale_"):
            lane = LANE_SCALE
        else:
            lane = LANE_VCU
        _LANE_CACHE[name] = lane
    return lane


@dataclass(frozen=True)
class TraceEvent:
    """One charged operation on a core (or memory-system) timeline.

    ``cycles`` and ``bytes_moved`` are per execution; a folded loop of
    ``count`` identical commands contributes ``total_cycles`` /
    ``total_bytes`` to the lane totals, exactly matching the
    ``count=`` convention of the cost-charging APIs.
    """

    name: str
    lane: str
    start_cycle: float
    cycles: float
    count: int = 1
    section: str = ""
    bytes_moved: int = 0
    core_id: int = 0

    @property
    def total_cycles(self) -> float:
        """Cycles contributed by all repetitions of this event."""
        return self.cycles * self.count

    @property
    def end_cycle(self) -> float:
        """Cycle at which the folded command sequence retires."""
        return self.start_cycle + self.total_cycles

    @property
    def total_bytes(self) -> int:
        """Bytes moved by all repetitions of this event."""
        return self.bytes_moved * self.count
