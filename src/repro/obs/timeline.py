"""Plain-text rendering of a collected trace.

Builds terminal views from a :class:`~repro.obs.collector.TraceCollector`
using the same :mod:`repro.core.reporting` primitives as the CLI tables:
a per-lane/per-section summary (exact aggregates) and a Gantt-style
event timeline from the ring buffer.  Everything is monospace text; no
plotting dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.reporting import format_spans, format_table
from .collector import TraceCollector
from .events import LANES

__all__ = ["render_lane_summary", "render_timeline"]


def render_lane_summary(collector: TraceCollector,
                        clock_hz: Optional[float] = None) -> str:
    """Aligned table of cycles (and bytes) per engine lane."""
    total = collector.total_cycles or 1.0
    known = [lane for lane in LANES if lane in collector.cycles_by_lane]
    extra = sorted(set(collector.cycles_by_lane) - set(known))
    rows = []
    for lane in known + extra:
        cycles = collector.cycles_by_lane[lane]
        row = [lane, cycles, 100.0 * cycles / total,
               collector.bytes_by_lane.get(lane, 0)]
        if clock_hz is not None:
            row.append(cycles * 1e3 / clock_hz)
        rows.append(row)
    headers = ["lane", "cycles", "share%", "bytes"]
    if clock_hz is not None:
        headers.append("ms")
    return format_table(headers, rows)


def _section_rows(collector: TraceCollector) -> List[List[object]]:
    total = collector.total_cycles or 1.0
    rows = []
    for section in sorted(collector.cycles_by_section):
        cycles = collector.cycles_by_section[section]
        rows.append([section or "(unattributed)", cycles,
                     100.0 * cycles / total])
    return rows


def render_timeline(collector: TraceCollector, width: int = 60,
                    max_events: int = 40,
                    clock_hz: Optional[float] = None) -> str:
    """The full text view: totals, lane/section tables, event Gantt.

    The Gantt rows come from the bounded ring buffer (the first
    ``max_events`` retained events); the summary tables are exact even
    when the ring dropped events.
    """
    parts: List[str] = []
    header = (f"trace: {collector.total_events} events, "
              f"{collector.total_cycles:.0f} cycles, "
              f"{collector.total_bytes} bytes moved")
    if collector.dropped:
        header += f" ({collector.dropped} events evicted from ring)"
    parts.append(header)
    if collector.vr_high_water:
        parts.append(f"VR occupancy high-water mark: "
                     f"{collector.vr_high_water} registers")

    if collector.cycles_by_lane:
        parts.append("")
        parts.append("cycles by lane:")
        parts.append(render_lane_summary(collector, clock_hz))

    section_rows = _section_rows(collector)
    if section_rows and not (len(section_rows) == 1
                             and section_rows[0][0] == "(unattributed)"):
        parts.append("")
        parts.append("cycles by section:")
        parts.append(format_table(["section", "cycles", "share%"],
                                  section_rows))

    events = list(collector.events)[:max_events]
    if events:
        spans: List[Tuple[str, float, float]] = [
            (f"[{event.lane}] {event.name}"
             + (f" x{event.count}" if event.count != 1 else ""),
             event.start_cycle, event.total_cycles)
            for event in events
        ]
        extent = max(event.end_cycle for event in events)
        parts.append("")
        shown = ("timeline:" if len(events) == len(collector.events)
                 else f"timeline (first {len(events)} of "
                      f"{len(collector.events)} retained events):")
        parts.append(shown)
        parts.append(format_spans(spans, total=extent, width=width))
    return "\n".join(parts)
