"""Memory-level silent-data-corruption engine.

:class:`MemoryFaultInjector` is the functional half of the bit-flip
fault model: it attaches to an :class:`~repro.apu.device.APUDevice` via
``attach_sdc`` and corrupts real data on the two channels where upsets
land in practice:

* **VR writes** -- every ``APUCore.vr_write`` passes its fresh copy
  through :meth:`corrupt_vr_write`.  Transient ``"vr"`` flips pend until
  the next write to their target VR and are consumed exactly once;
  ``"stuck"`` faults are stuck-at-1 cells re-applied on *every* write to
  the target VR (an OR mask, like a shorted SRAM cell).
* **DMA payloads** -- functional read-side DMA/PIO paths pass the moved
  bytes through :meth:`corrupt_dma_payload`; a ``"dma"`` flip corrupts a
  ``burst_bits``-wide run of bits in one element of the next transfer.

Corruption is fully deterministic: scripted flips come from the seeded
:class:`~repro.faults.plan.BitFlipFault` entries of a ``FaultPlan``, and
the optional rate mode draws from its own ``numpy`` generator seeded at
construction.  Every actual data change is appended to :attr:`log` as a
:class:`FlipRecord`, which is what the property-based tests replay
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..faults.plan import BitFlipFault

__all__ = ["FlipRecord", "MemoryFaultInjector"]


@dataclass(frozen=True)
class FlipRecord:
    """One actual data corruption: where it hit and what it changed."""

    #: Which channel was corrupted: ``"vr"``, ``"dma"``, or ``"stuck"``.
    site: str
    #: Target VR index for VR-channel hits; -1 for DMA payloads.
    vr: int
    #: Element index within the vector / payload.
    element: int
    #: Lowest corrupted bit position.
    bit: int
    #: Element value before corruption.
    before: int
    #: Element value after corruption.
    after: int


class MemoryFaultInjector:
    """Deterministic bit-flip engine for the functional APU model.

    Parameters
    ----------
    flips:
        Transient :class:`BitFlipFault` entries (targets ``"vr"`` and
        ``"dma"``); each is consumed by the first matching write or
        transfer after attachment, in plan order.
    stuck:
        Persistent ``"stuck"`` faults: stuck-at-1 cells OR-ed into every
        write of the target VR.
    upset_rate:
        Optional per-operation upset probability (``0.0`` disables): on
        each VR write or DMA payload an independent draw decides whether
        a uniformly random (element, bit) flips.  Seeded, so replays are
        bit-identical for a fixed ``seed``.
    seed:
        Seed for the rate-mode generator.
    """

    def __init__(self, flips: Iterable[BitFlipFault] = (),
                 stuck: Iterable[BitFlipFault] = (),
                 upset_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= upset_rate <= 1.0:
            raise ValueError(
                f"upset_rate must be a probability in [0, 1], "
                f"got {upset_rate!r}")
        self._pending_vr: List[BitFlipFault] = []
        self._pending_dma: List[BitFlipFault] = []
        self._stuck: List[BitFlipFault] = []
        for fault in flips:
            if fault.persistent:
                raise ValueError(
                    f"stuck-at faults belong in the 'stuck' argument: {fault}")
            if fault.target == "vr":
                self._pending_vr.append(fault)
            else:
                self._pending_dma.append(fault)
        for fault in stuck:
            if not fault.persistent:
                raise ValueError(
                    f"transient fault passed as stuck-at: {fault}")
            self._stuck.append(fault)
        self.upset_rate = float(upset_rate)
        self._rng = np.random.default_rng(seed)
        #: Every corruption that changed data, in the order it happened.
        self.log: List[FlipRecord] = []
        self.n_vr_flips = 0
        self.n_dma_flips = 0
        self.n_stuck_hits = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_corruptions(self) -> int:
        """Total data changes across all channels."""
        return len(self.log)

    @property
    def pending(self) -> int:
        """Scripted transient flips not yet consumed."""
        return len(self._pending_vr) + len(self._pending_dma)

    # ------------------------------------------------------------------
    # Corruption channels (called from the APU functional model)
    # ------------------------------------------------------------------
    def corrupt_vr_write(self, vr: int, arr: np.ndarray) -> None:
        """Corrupt a VR write in place (``arr`` is the core's own copy)."""
        consumed: Optional[int] = None
        for i, fault in enumerate(self._pending_vr):
            if fault.vr == vr:
                consumed = i
                break
        if consumed is not None:
            fault = self._pending_vr.pop(consumed)
            element = fault.element % arr.size
            self._flip(arr, element, fault.bit, 1, site="vr", vr=vr)
            self.n_vr_flips += 1
        if self.upset_rate and self._rng.random() < self.upset_rate:
            element = int(self._rng.integers(0, arr.size))
            bit = int(self._rng.integers(0, 16))
            self._flip(arr, element, bit, 1, site="vr", vr=vr)
            self.n_vr_flips += 1
        for fault in self._stuck:
            if fault.vr != vr:
                continue
            element = fault.element % arr.size
            mask = np.uint16(1 << fault.bit)
            before = int(arr[element])
            if before & int(mask):
                continue  # cell already reads 1: the short is invisible
            arr[element] = np.uint16(before | int(mask))
            self.n_stuck_hits += 1
            self.log.append(FlipRecord(
                site="stuck", vr=vr, element=element, bit=fault.bit,
                before=before, after=int(arr[element])))

    def corrupt_dma_payload(self, data: np.ndarray) -> np.ndarray:
        """Return ``data`` with any pending DMA burst error applied.

        ``data`` may be a view into backing storage (``l4.read``), so the
        payload is copied before mutation.  Handles both ``uint8`` and
        ``uint16`` payload dtypes; the burst is clipped at the element's
        word width, matching a burst error inside one beat.
        """
        rate_hit = bool(
            self.upset_rate and self._rng.random() < self.upset_rate)
        if not self._pending_dma and not rate_hit:
            return data
        width = data.dtype.itemsize * 8
        out = data.copy()
        if out.size == 0:
            return out
        if self._pending_dma:
            fault = self._pending_dma.pop(0)
            element = fault.element % out.size
            bit = min(fault.bit, width - 1)
            n_bits = min(fault.burst_bits, width - bit)
            self._flip(out, element, bit, n_bits, site="dma", vr=-1)
            self.n_dma_flips += 1
        if rate_hit:
            element = int(self._rng.integers(0, out.size))
            bit = int(self._rng.integers(0, width))
            self._flip(out, element, bit, 1, site="dma", vr=-1)
            self.n_dma_flips += 1
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flip(self, arr: np.ndarray, element: int, bit: int, n_bits: int,
              site: str, vr: int) -> None:
        mask = 0
        for b in range(bit, bit + n_bits):
            mask |= 1 << b
        before = int(arr[element])
        arr[element] = arr.dtype.type(before ^ mask)
        self.log.append(FlipRecord(
            site=site, vr=vr, element=element, bit=bit,
            before=before, after=int(arr[element])))
