"""Memory-level silent-data-corruption engine.

:class:`MemoryFaultInjector` is the functional half of the bit-flip
fault model: it attaches to an :class:`~repro.apu.device.APUDevice` via
``attach_sdc`` and corrupts real data on the two channels where upsets
land in practice:

* **VR writes** -- every ``APUCore.vr_write`` passes its fresh copy
  through :meth:`corrupt_vr_write`.  Transient ``"vr"`` flips pend until
  the next write to their target VR and are consumed exactly once;
  ``"stuck"`` faults are stuck-at-1 cells re-applied on *every* write to
  the target VR (an OR mask, like a shorted SRAM cell).
* **DMA payloads** -- functional read-side DMA/PIO paths pass the moved
  bytes through :meth:`corrupt_dma_payload`; a ``"dma"`` flip corrupts a
  ``burst_bits``-wide run of bits in one element of the next transfer.

Corruption is fully deterministic: scripted flips come from the seeded
:class:`~repro.faults.plan.BitFlipFault` entries of a ``FaultPlan``, and
the optional rate mode draws from its own ``numpy`` generator seeded at
construction.  Every actual data change is appended to :attr:`log` as a
:class:`FlipRecord`, which is what the property-based tests replay
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..ecc import (
    ECCConfig,
    STATUS_DETECTED,
    VERDICT_CORRECTED,
    VERDICT_DETECTED,
    VERDICT_MISCORRECT,
    make_codec,
)
from ..faults.plan import BitFlipFault

__all__ = ["FlipRecord", "MemoryFaultInjector"]


@dataclass(frozen=True)
class FlipRecord:
    """One actual data corruption: where it hit and what it changed."""

    #: Which channel was corrupted: ``"vr"``, ``"dma"``, or ``"stuck"``.
    site: str
    #: Target VR index for VR-channel hits; -1 for DMA payloads.
    vr: int
    #: Element index within the vector / payload.
    element: int
    #: Lowest corrupted bit position.
    bit: int
    #: Element value before corruption.
    before: int
    #: Element value after corruption.
    after: int


class MemoryFaultInjector:
    """Deterministic bit-flip engine for the functional APU model.

    Parameters
    ----------
    flips:
        Transient :class:`BitFlipFault` entries (targets ``"vr"`` and
        ``"dma"``); each is consumed by the first matching write or
        transfer after attachment, in plan order.
    stuck:
        Persistent ``"stuck"`` faults: stuck-at-1 cells OR-ed into every
        write of the target VR.
    upset_rate:
        Optional per-operation upset probability (``0.0`` disables): on
        each VR write or DMA payload an independent draw decides whether
        a uniformly random (element, bit) flips.  Seeded, so replays are
        bit-identical for a fixed ``seed``.
    seed:
        Seed for the rate-mode generator.
    ecc:
        Optional enabled :class:`~repro.ecc.ECCConfig`.  When set,
        every corrupted write/transfer is post-processed through the
        configured codec: the affected codewords are re-encoded from
        their pre-upset data, the actual error pattern is applied, and
        the decoder's verdict takes effect on the stored bits --
        corrected codewords are restored, detected-uncorrectable ones
        keep the raw damage (the controller flags them), and
        beyond-capability miscorrections overwrite the word with the
        decoder's *wrong* correction.  Verdicts are counted and logged
        in :attr:`ecc_events`.
    """

    def __init__(self, flips: Iterable[BitFlipFault] = (),
                 stuck: Iterable[BitFlipFault] = (),
                 upset_rate: float = 0.0, seed: int = 0,
                 ecc: Optional[ECCConfig] = None):
        if not 0.0 <= upset_rate <= 1.0:
            raise ValueError(
                f"upset_rate must be a probability in [0, 1], "
                f"got {upset_rate!r}")
        self._pending_vr: List[BitFlipFault] = []
        self._pending_dma: List[BitFlipFault] = []
        self._stuck: List[BitFlipFault] = []
        for fault in flips:
            if fault.persistent:
                raise ValueError(
                    f"stuck-at faults belong in the 'stuck' argument: {fault}")
            if fault.target == "vr":
                self._pending_vr.append(fault)
            else:
                self._pending_dma.append(fault)
        for fault in stuck:
            if not fault.persistent:
                raise ValueError(
                    f"transient fault passed as stuck-at: {fault}")
            self._stuck.append(fault)
        self.upset_rate = float(upset_rate)
        self._rng = np.random.default_rng(seed)
        if ecc is not None and not ecc.enabled:
            raise ValueError(
                "pass ecc=None to disable protection; a disabled "
                "ECCConfig here is almost certainly a mistake")
        self.ecc = ecc
        self._codec = make_codec(ecc) if ecc is not None else None
        #: Every corruption that changed data, in the order it happened.
        self.log: List[FlipRecord] = []
        #: ECC decode verdicts: ``(site, codeword_index, verdict)`` per
        #: struck codeword, in the order the decoder saw them.
        self.ecc_events: List[Tuple[str, int, str]] = []
        self.n_vr_flips = 0
        self.n_dma_flips = 0
        self.n_stuck_hits = 0
        self.n_ecc_corrected = 0
        self.n_ecc_detected = 0
        self.n_ecc_miscorrected = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_corruptions(self) -> int:
        """Total data changes across all channels."""
        return len(self.log)

    @property
    def pending(self) -> int:
        """Scripted transient flips not yet consumed."""
        return len(self._pending_vr) + len(self._pending_dma)

    # ------------------------------------------------------------------
    # Corruption channels (called from the APU functional model)
    # ------------------------------------------------------------------
    def corrupt_vr_write(self, vr: int, arr: np.ndarray) -> None:
        """Corrupt a VR write in place (``arr`` is the core's own copy)."""
        orig = arr.copy() if self._codec is not None else None
        consumed: Optional[int] = None
        for i, fault in enumerate(self._pending_vr):
            if fault.vr == vr:
                consumed = i
                break
        if consumed is not None:
            fault = self._pending_vr.pop(consumed)
            element = fault.element % arr.size
            self._flip(arr, element, fault.bit, 1, site="vr", vr=vr)
            self.n_vr_flips += 1
        if self.upset_rate and self._rng.random() < self.upset_rate:
            element = int(self._rng.integers(0, arr.size))
            bit = int(self._rng.integers(0, 16))
            self._flip(arr, element, bit, 1, site="vr", vr=vr)
            self.n_vr_flips += 1
        for fault in self._stuck:
            if fault.vr != vr:
                continue
            element = fault.element % arr.size
            mask = np.uint16(1 << fault.bit)
            before = int(arr[element])
            if before & int(mask):
                continue  # cell already reads 1: the short is invisible
            arr[element] = np.uint16(before | int(mask))
            self.n_stuck_hits += 1
            self.log.append(FlipRecord(
                site="stuck", vr=vr, element=element, bit=fault.bit,
                before=before, after=int(arr[element])))
        if orig is not None:
            self._ecc_pass("vr", orig, arr)

    def corrupt_dma_payload(self, data: np.ndarray) -> np.ndarray:
        """Return ``data`` with any pending DMA burst error applied.

        ``data`` may be a view into backing storage (``l4.read``), so the
        payload is copied before mutation.  Handles both ``uint8`` and
        ``uint16`` payload dtypes; the burst is clipped at the element's
        word width, matching a burst error inside one beat.
        """
        rate_hit = bool(
            self.upset_rate and self._rng.random() < self.upset_rate)
        if not self._pending_dma and not rate_hit:
            return data
        width = data.dtype.itemsize * 8
        out = data.copy()
        if out.size == 0:
            return out
        if self._pending_dma:
            fault = self._pending_dma.pop(0)
            element = fault.element % out.size
            bit = min(fault.bit, width - 1)
            n_bits = min(fault.burst_bits, width - bit)
            self._flip(out, element, bit, n_bits, site="dma", vr=-1)
            self.n_dma_flips += 1
        if rate_hit:
            element = int(self._rng.integers(0, out.size))
            bit = int(self._rng.integers(0, width))
            self._flip(out, element, bit, 1, site="dma", vr=-1)
            self.n_dma_flips += 1
        if self._codec is not None:
            self._ecc_pass("dma", data, out)
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ecc_pass(self, site: str, orig: np.ndarray,
                  arr: np.ndarray) -> None:
        """Run the codec over every codeword an upset actually struck.

        ``orig`` is the pre-upset payload (the encode-side data),
        ``arr`` the damaged one.  The decoder's verdict lands on the
        stored bits: corrected codewords restore the original words,
        detected-uncorrectable ones keep the raw damage, and
        miscorrections overwrite with the decoder's wrong data.
        """
        assert self._codec is not None and self.ecc is not None
        codec = self._codec
        width = arr.dtype.itemsize * 8
        words = self.ecc.data_bits // width
        changed = np.nonzero(orig != arr)[0]
        struck = sorted({int(e) // words for e in changed})
        for cw in struck:
            lo = cw * words
            hi = min(lo + words, arr.size)
            data = 0
            error = 0
            for j in range(lo, hi):
                data |= int(orig[j]) << ((j - lo) * width)
                error |= (int(orig[j]) ^ int(arr[j])) << ((j - lo) * width)
            code = codec.encode(data)
            for b in range(self.ecc.data_bits):
                if error >> b & 1:
                    code ^= 1 << codec.data_position(b)
            decoded, status = codec.decode(code)
            if status == STATUS_DETECTED:
                verdict = VERDICT_DETECTED
                self.n_ecc_detected += 1
            elif decoded == data:
                verdict = VERDICT_CORRECTED
                self.n_ecc_corrected += 1
                for j in range(lo, hi):
                    arr[j] = orig[j]
            else:
                verdict = VERDICT_MISCORRECT
                self.n_ecc_miscorrected += 1
                for j in range(lo, hi):
                    arr[j] = arr.dtype.type(
                        decoded >> ((j - lo) * width) & ((1 << width) - 1))
            self.ecc_events.append((site, cw, verdict))

    def _flip(self, arr: np.ndarray, element: int, bit: int, n_bits: int,
              site: str, vr: int) -> None:
        mask = 0
        for b in range(bit, bit + n_bits):
            mask |= 1 << b
        before = int(arr[element])
        arr[element] = arr.dtype.type(before ^ mask)
        self.log.append(FlipRecord(
            site=site, vr=vr, element=element, bit=bit,
            before=before, after=int(arr[element])))
