"""Integrity-layer configuration and calibrated cycle costs.

:class:`IntegrityConfig` selects which defenses run and how hard they
retry; :class:`IntegrityCostModel` prices them.  The checksum and parity
costs are not hand-waved constants: calibration *executes the real GVML
checker sequences* on a throwaway timing-only core and reads the charged
cycles back out of its :class:`~repro.core.estimator.LatencyEstimator`,
so protection overhead inherits the Table 4/5 cost model (including the
simulator-only VCU issue overhead) automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..apu.core import APUCore
from ..core.params import APUParams, DEFAULT_PARAMS
from ..obs import collector as _trace_collector

__all__ = ["CRC_BYTES_PER_CYCLE", "IntegrityConfig", "IntegrityCostModel",
           "get_cost_model"]

#: Throughput of the modeled descriptor-side CRC engine.  A hardware
#: CRC-16 folds several bytes per clock; 4 bytes/cycle keeps the check
#: well under the DMA transfer cost it guards.
CRC_BYTES_PER_CYCLE = 4.0


@dataclass(frozen=True)
class IntegrityConfig:
    """What the integrity layer does and how persistent it is.

    Parameters
    ----------
    enabled:
        Master switch.  Disabled (the default) must leave every code
        path bit-identical to the unprotected build -- the zero-flip
        identity property test pins this.
    max_recomputes:
        Bounded-retry budget per checked unit of work (one MAC block,
        one top-k extraction, one checked DMA).  Exhausting it raises
        :class:`~repro.integrity.abft.IntegrityError` -- the signal that
        a fault is persistent and the shard needs failover, not retry.
    scrub_interval_s:
        Period of the background scrub pass over resident VMR slots;
        ``0.0`` disables scrubbing.  The pass costs
        :meth:`IntegrityCostModel.scrub_pass_cycles` each time and is
        charged as serving-capacity overhead.
    scrub_vrs:
        Number of resident vectors each scrub pass re-checksums.
    """

    enabled: bool = False
    max_recomputes: int = 3
    scrub_interval_s: float = 0.0
    scrub_vrs: int = 8

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ValueError(f"enabled must be a bool, got {self.enabled!r}")
        if not isinstance(self.max_recomputes, int) \
                or isinstance(self.max_recomputes, bool) \
                or self.max_recomputes < 1:
            raise ValueError(
                f"max_recomputes must be an integer >= 1, "
                f"got {self.max_recomputes!r}")
        if not isinstance(self.scrub_interval_s, (int, float)) \
                or isinstance(self.scrub_interval_s, bool) \
                or self.scrub_interval_s < 0.0:
            raise ValueError(
                f"scrub_interval_s must be a non-negative number, "
                f"got {self.scrub_interval_s!r}")
        if not isinstance(self.scrub_vrs, int) \
                or isinstance(self.scrub_vrs, bool) or self.scrub_vrs < 1:
            raise ValueError(
                f"scrub_vrs must be an integer >= 1, got {self.scrub_vrs!r}")
        # The device exposes VRs 0..23 (the same bound BitFlipFault
        # enforces on its ``vr`` field); a scrub pass cannot re-checksum
        # more registers than exist.
        if self.scrub_vrs > 24:
            raise ValueError(
                f"scrub_vrs must be at most the 24 architectural VRs, "
                f"got {self.scrub_vrs!r}")

    @property
    def scrubbing(self) -> bool:
        """Whether the periodic scrub pass is active."""
        return self.enabled and self.scrub_interval_s > 0.0


class IntegrityCostModel:
    """Cycle prices for the integrity machinery, under ``params``.

    Construction runs each checker sequence once on a private
    timing-only :class:`~repro.apu.core.APUCore` (no functional data, no
    trace collector) and records the charged cycles.
    """

    def __init__(self, params: APUParams = DEFAULT_PARAMS):
        self.params = params
        previous = _trace_collector.set_collector(None)
        try:
            core = APUCore(params, functional=False)
            g = core.gvml
            # Modular column checksum: one full-VR staged add reduction
            # plus the serial FIFO read of the resulting scalar.
            g.add_subgrp_s16(1, 0, params.vr_length, 1)
            g.get_element(1, 0)
            self.checksum_cycles = core.trace.total_cycles
            # Parity ladder: log2(length) shift/xor folding stages.
            core.reset_trace()
            g.cpy_16(1, 0)
            span = params.vr_length // 2
            while span >= 1:
                g.cpy_16(2, 1)
                g.shift_e(2, span, toward="head")
                g.xor_16(1, 1, 2)
                span //= 2
            g.get_element(1, 0)
            self.parity_cycles = core.trace.total_cycles
        finally:
            _trace_collector.set_collector(previous)

    def crc_cycles(self, nbytes: int) -> float:
        """Descriptor-side CRC-16 over an ``nbytes`` DMA payload."""
        return float(nbytes) / CRC_BYTES_PER_CYCLE

    def scrub_pass_cycles(self, scrub_vrs: int) -> float:
        """One background scrub sweep over ``scrub_vrs`` resident slots."""
        return scrub_vrs * self.crc_cycles(self.params.vr_bytes)

    def scrub_pass_seconds(self, scrub_vrs: int) -> float:
        """Scrub sweep cost in seconds at the core clock."""
        return self.scrub_pass_cycles(scrub_vrs) / self.params.clock_hz

    def checksum_seconds(self) -> float:
        """Column-checksum verification cost in seconds."""
        return self.checksum_cycles / self.params.clock_hz


_COST_MODELS: Dict[int, IntegrityCostModel] = {}


def get_cost_model(params: APUParams = DEFAULT_PARAMS) -> IntegrityCostModel:
    """Memoized :class:`IntegrityCostModel` for a parameter bundle.

    Calibration runs real (timing-only) GVML sequences, so it is cheap
    but not free; per-``params`` caching keeps checker helpers on hot
    paths from re-calibrating every call.
    """
    model = _COST_MODELS.get(id(params))
    if model is None or model.params is not params:
        model = IntegrityCostModel(params)
        _COST_MODELS[id(params)] = model
    return model
