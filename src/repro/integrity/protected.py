"""ABFT-protected retrieval: end-to-end verified, bounded recompute.

:class:`ProtectedAPURetriever` wraps the optimized
:class:`~repro.rag.retrieval.APURetriever` functional pipeline with the
checksum machinery of :mod:`repro.integrity.abft`:

1. **Verified distances.**  Each MAC block's accumulator VR is checked
   against the host-side column-checksum prediction
   (``dot(query, colsum(block)) mod 2**16`` -- the mod-``2**16``
   homomorphism makes the prediction exact for the wrapping u16
   arithmetic).  A mismatch triggers a full recompute of that block,
   bounded by :attr:`IntegrityConfig.max_recomputes`.
2. **Verified top-k.**  The verified score vectors are snapshotted, the
   expected extraction is replicated on the host (same masking and
   tie-breaking as :func:`~repro.rag.topk.apu_topk`), and the device
   result is compared.  Because ``apu_topk`` *destroys* its score VRs
   (padding is masked, each winner is zeroed out), a retry first
   restores the score VRs from the verified snapshots.

Under the standard ABFT single-error-per-checked-unit assumption, any
transient flip either leaves the data bit-identical (a benign
``q_d * 2**b = 0 (mod 2**16)`` operand flip) or is detected and healed
by recompute, so the returned top-k is bit-identical to a fault-free
run.  A fault that survives the recompute budget (a stuck-at cell)
raises :class:`~repro.integrity.abft.IntegrityError` -- the serving
layer's cue to fail the shard over instead of retrying forever.

The checkers themselves are assumed reliable (they read state through
the host backdoor rather than writable device VRs) and their cycle cost
is charged from the :class:`~repro.integrity.config.IntegrityCostModel`
calibration of the equivalent GVML sequences, under ``integrity_*`` op
names that land on the INTEGRITY trace lane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..apu.device import APUDevice
from ..core.params import APUParams, DEFAULT_PARAMS
from ..hbm import DRAMModel
from ..rag.corpus import MiniCorpus
from ..rag.retrieval import APURetriever
from ..rag.topk import apu_topk
from .abft import IntegrityError, host_checksum
from .config import IntegrityConfig, get_cost_model

__all__ = ["IntegrityError", "IntegrityStats", "ProtectedAPURetriever"]


@dataclass
class IntegrityStats:
    """Running totals of the protection machinery's activity."""

    #: Checksum / top-k verifications performed.
    n_checks: int = 0
    #: Verifications that found corrupted state.
    n_detected: int = 0
    #: Bounded recomputes issued to heal detections.
    n_recomputes: int = 0

    def reset(self) -> None:
        self.n_checks = 0
        self.n_detected = 0
        self.n_recomputes = 0

    def export_to(self, registry, shard: Optional[int] = None) -> None:
        """Accumulate these totals into a telemetry metrics registry.

        ``registry`` is a :class:`repro.telemetry.MetricsRegistry` (duck
        typed to keep this module import-light); an optional ``shard``
        labels the samples for per-device attribution.
        """
        labels = {} if shard is None else {"shard": str(shard)}
        registry.counter(
            "repro_abft_checks_total",
            "Checksum / top-k verifications performed",
        ).inc(self.n_checks, **labels)
        registry.counter(
            "repro_abft_detected_total",
            "Verifications that found corrupted state",
        ).inc(self.n_detected, **labels)
        registry.counter(
            "repro_abft_recomputes_total",
            "Bounded recomputes issued to heal detections",
        ).inc(self.n_recomputes, **labels)


class ProtectedAPURetriever(APURetriever):
    """The optimized APU retriever with ABFT verification wrapped in.

    Parameters
    ----------
    params, hbm:
        As for :class:`~repro.rag.retrieval.APURetriever`.
    config:
        Integrity knobs; ``enabled`` must be true (instantiating the
        protected retriever just to disable it is a config bug).
    """

    def __init__(self, params: APUParams = DEFAULT_PARAMS,
                 hbm: Optional[DRAMModel] = None,
                 config: IntegrityConfig = IntegrityConfig(enabled=True)):
        super().__init__(optimized=True, params=params, hbm=hbm)
        if not config.enabled:
            raise ValueError(
                "ProtectedAPURetriever requires an enabled IntegrityConfig")
        self.config = config
        self.stats = IntegrityStats()
        self._costs = get_cost_model(params)

    # ------------------------------------------------------------------
    # Verified functional pipeline
    # ------------------------------------------------------------------
    def retrieve_with_scores(self, corpus: MiniCorpus, query: np.ndarray,
                             k: int = 5,
                             device: Optional[APUDevice] = None,
                             ) -> List[tuple]:
        """Exact top-k with every stage verified and recompute-healed."""
        if device is None:
            device = APUDevice(self.params)
        score_vrs, valid_counts = self._verified_distances(
            device, corpus, query)
        return self._verified_topk(device, score_vrs, valid_counts, k)

    def _verified_distances(self, device: APUDevice, corpus: MiniCorpus,
                            query: np.ndarray,
                            ) -> Tuple[List[int], List[int]]:
        """Dim-major MAC blocks, each column-checksum verified."""
        core = device.core
        vlen = self.params.vr_length
        n_blocks = -(-corpus.n_chunks // vlen)
        if n_blocks > 8:
            raise ValueError("mini corpus too large for the functional demo")
        budget = self.config.max_recomputes
        score_vrs: List[int] = []
        valid_counts: List[int] = []
        for block in range(n_blocks):
            lo = block * vlen
            hi = min(lo + vlen, corpus.n_chunks)
            acc = 4 + block
            reference = self._block_reference(corpus, query, lo, hi)
            for attempt in range(budget + 1):
                self._mac_block(device, corpus, query, block)
                observed = host_checksum(core.vr_read(acc))
                core.charge_raw("integrity_checksum",
                                self._costs.checksum_cycles, nbytes=2)
                self.stats.n_checks += 1
                if observed == reference:
                    break
                self.stats.n_detected += 1
                core.charge_raw("integrity_detect", 0.0)
                if attempt == budget:
                    raise IntegrityError(
                        f"MAC block {block} checksum still wrong after "
                        f"{budget} recomputes (stuck-at fault?)")
                self.stats.n_recomputes += 1
                core.charge_raw("integrity_recompute", 0.0)
            score_vrs.append(acc)
            valid_counts.append(hi - lo)
        return score_vrs, valid_counts

    def _mac_block(self, device: APUDevice, corpus: MiniCorpus,
                   query: np.ndarray, block: int) -> None:
        """One temporal-mapping MAC chain (the parent kernel's inner loop)."""
        core = device.core
        g = core.gvml
        vlen = self.params.vr_length
        lo = block * vlen
        hi = min(lo + vlen, corpus.n_chunks)
        acc = 4 + block
        g.cpy_imm_16(acc, 0)
        for d in range(corpus.dim):
            column = np.zeros(vlen, dtype=np.uint16)
            column[: hi - lo] = corpus.embeddings[lo:hi, d]
            core.l1.store(40, column)
            g.load_16(0, 40)
            g.cpy_imm_16(1, int(query[d]))
            g.mul_u16(2, 0, 1)
            g.add_u16(acc, acc, 2)

    @staticmethod
    def _block_reference(corpus: MiniCorpus, query: np.ndarray,
                         lo: int, hi: int) -> int:
        """Host column-checksum prediction of the block's VR sum.

        ``sum_i dot(e_i, q) mod 2**16 == dot(colsum(E), q) mod 2**16``:
        exact for the device's wrapping u16 multiply/add because
        reduction mod ``2**16`` is a ring homomorphism.
        """
        block = corpus.embeddings[lo:hi].astype(np.int64)
        q = np.asarray(query, dtype=np.int64) & 0xFFFF
        return int((block.sum(axis=0) * q).sum() % 65536)

    # ------------------------------------------------------------------
    # Verified top-k
    # ------------------------------------------------------------------
    def _verified_topk(self, device: APUDevice, score_vrs: List[int],
                       valid_counts: List[int], k: int) -> List[tuple]:
        core = device.core
        verified = [core.vr_read(vr) for vr in score_vrs]
        expected = self._host_topk(verified, valid_counts, k)
        budget = self.config.max_recomputes
        for attempt in range(budget + 1):
            result = apu_topk(device, score_vrs, k, valid_counts)
            core.charge_raw("integrity_verify",
                            self._costs.crc_cycles(4 * k), nbytes=4 * k)
            self.stats.n_checks += 1
            if result == expected:
                return result
            self.stats.n_detected += 1
            core.charge_raw("integrity_detect", 0.0)
            if attempt == budget:
                raise IntegrityError(
                    f"top-{k} extraction still wrong after {budget} "
                    f"recomputes (stuck-at fault?)")
            self.stats.n_recomputes += 1
            core.charge_raw("integrity_recompute", 0.0)
            # apu_topk masked padding and zeroed each winner in the score
            # VRs; restore them from the verified snapshots before retrying.
            for vr, snapshot in zip(score_vrs, verified):
                core.vr_write(vr, snapshot)
        raise AssertionError("unreachable")

    @staticmethod
    def _host_topk(verified: Sequence[np.ndarray],
                   valid_counts: Sequence[int],
                   k: int) -> List[Tuple[int, int]]:
        """Replicate ``apu_topk`` exactly on the verified host copies.

        Same padding mask (positions ``>= valid`` zeroed), same
        tie-breaks (lowest VR first, then first position), same
        winner-knockout loop -- so equality with the device result means
        the device extraction was uncorrupted.
        """
        arrays = [np.array(v, dtype=np.uint16, copy=True) for v in verified]
        bases: List[int] = []
        running = 0
        for arr, valid in zip(arrays, valid_counts):
            arr[valid:] = 0
            bases.append(running)
            running += valid
        maxima = [int(arr.max()) for arr in arrays]
        results: List[Tuple[int, int]] = []
        for _ in range(k):
            best = max(range(len(arrays)), key=lambda i: (maxima[i], -i))
            value = maxima[best]
            position = int(np.argmax(arrays[best] == value))
            results.append((bases[best] + position, value))
            arrays[best][position] = 0
            maxima[best] = int(arrays[best].max())
        return results
