"""Silent-data-corruption injection and ABFT defenses.

The compute-in-SRAM device computes *inside* the bit-slices that store
its data, so a single upset bit in a vector register or a DMA burst
error corrupts answers silently instead of crashing -- a failure mode
the node-level fault layer (stalls/outages) cannot express.  This
package provides both halves of the story:

* **Injection** (:mod:`repro.integrity.inject`): a
  :class:`MemoryFaultInjector` that corrupts real functional state --
  VR writes, DMA payloads, stuck-at cells -- driven by the seeded
  :class:`~repro.faults.plan.BitFlipFault` entries of a
  :class:`~repro.faults.FaultPlan`, so corruption replays
  deterministically.
* **Detection/recovery** (:mod:`repro.integrity.abft`,
  :mod:`repro.integrity.protected`): algorithm-based fault tolerance
  for the GVML kernels -- modular column checksums for the MAC
  reduction, parity tags on VR copies, CRC-checked DMA transfers, a
  periodic scrub pass -- and a :class:`ProtectedAPURetriever` whose
  top-k results are bit-identical to the fault-free baseline under any
  bounded number of transient flips.
* **Cost accounting** (:mod:`repro.integrity.config`): an
  :class:`IntegrityConfig` and cycle costs *calibrated by running the
  real checker ops* through the
  :class:`~repro.core.estimator.LatencyEstimator`, so protection
  overhead shows up honestly in Table 4/5-anchored timings.
"""

from .abft import (
    IntegrityError,
    checked_l4_to_l1,
    crc16,
    host_checksum,
    parity_tag,
    protected_cpy_16,
    scrub_pass,
    vr_checksum,
    vr_parity,
)
from .config import IntegrityConfig, IntegrityCostModel, get_cost_model
from .inject import FlipRecord, MemoryFaultInjector
from .protected import IntegrityStats, ProtectedAPURetriever

__all__ = [
    "FlipRecord",
    "IntegrityConfig",
    "IntegrityCostModel",
    "IntegrityError",
    "IntegrityStats",
    "MemoryFaultInjector",
    "ProtectedAPURetriever",
    "checked_l4_to_l1",
    "crc16",
    "get_cost_model",
    "host_checksum",
    "parity_tag",
    "protected_cpy_16",
    "scrub_pass",
    "vr_checksum",
    "vr_parity",
]
