"""Algorithm-based fault tolerance primitives for the GVML kernels.

Three checker families, matched to the three corruption channels of
:class:`~repro.integrity.inject.MemoryFaultInjector`:

* **Modular column checksums** (:func:`vr_checksum` /
  :func:`host_checksum`).  Addition and multiplication on the device
  wrap modulo ``2**16``, and ``x -> x mod 2**16`` is a ring
  homomorphism, so the host can predict the full-VR sum of a MAC
  accumulator from column sums of the operand block.  Any single-bit
  upset in an accumulator write perturbs the sum by ``+/- 2**b != 0
  (mod 2**16)`` -- always detected.
* **Parity tags** (:func:`parity_tag` / :func:`vr_parity` /
  :func:`protected_cpy_16`) for VR moves and copies, where the data
  should arrive bit-identical: a single XOR-reduced word catches any
  odd-weight corruption.
* **CRC-16 descriptors** (:func:`crc16` / :func:`checked_l4_to_l1`) for
  DMA transfers, where burst errors flip short *runs* of bits that a
  single parity word could miss.

:func:`scrub_pass` sweeps resident VMR slots against recorded CRCs,
catching upsets in data at rest before the next query consumes them.
All checker work is charged through the core's
:class:`~repro.core.estimator.LatencyEstimator` under ``integrity_*`` /
``scrub*`` op names, which the observability layer routes to the
dedicated INTEGRITY trace lane.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import numpy as np

from ..apu.core import APUCore
from ..apu.memory import MemHandle
from .config import get_cost_model

__all__ = [
    "IntegrityError",
    "checked_l4_to_l1",
    "crc16",
    "host_checksum",
    "parity_tag",
    "protected_cpy_16",
    "scrub_pass",
    "vr_checksum",
    "vr_parity",
]


class IntegrityError(RuntimeError):
    """Raised when corruption persists past the bounded-retry budget.

    This is the integrity layer's "give up" signal: a transient flip
    would have been healed by recomputation, so a persistent mismatch
    means a stuck-at fault -- the caller should fail the shard over, not
    keep retrying.
    """


# ----------------------------------------------------------------------
# Host-side checker arithmetic
# ----------------------------------------------------------------------
def _build_crc_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint16)
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) if crc & 0x8000 else (crc << 1)
            crc &= 0xFFFF
        table[byte] = np.uint16(crc)
    return table


_CRC_TABLE = _build_crc_table()


def crc16(data: np.ndarray) -> int:
    """CRC-16/CCITT-FALSE over the raw bytes of ``data``."""
    raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    crc = 0xFFFF
    for byte in raw.tolist():
        crc = ((crc << 8) & 0xFFFF) ^ int(_CRC_TABLE[((crc >> 8) ^ byte) & 0xFF])
    return crc


def parity_tag(values: np.ndarray) -> int:
    """XOR of all 16-bit elements: the tag a copy must preserve."""
    arr = np.asarray(values, dtype=np.uint16)
    if arr.size == 0:
        return 0
    return int(np.bitwise_xor.reduce(arr))


def host_checksum(values: np.ndarray) -> int:
    """Element sum modulo ``2**16`` (signed/unsigned agree mod 2**16)."""
    return int(np.asarray(values, dtype=np.uint64).sum() % 65536)


# ----------------------------------------------------------------------
# Device-side checker kernels (real GVML ops, real cycle charges)
# ----------------------------------------------------------------------
def vr_checksum(core: APUCore, vr: int, scratch: int) -> Optional[int]:
    """Full-VR modular sum computed *on the device*.

    One staged ``add_subgrp_s16`` reduction (group = whole vector,
    subgroup = 1) leaves the wrapped sum in element 0 of ``scratch``;
    a serial FIFO ``get_element`` returns it.  ``None`` in timing-only
    mode (cycles are still charged).
    """
    g = core.gvml
    g.add_subgrp_s16(scratch, vr, core.params.vr_length, 1)
    return g.get_element(scratch, 0)


def vr_parity(core: APUCore, vr: int, scratch_a: int,
              scratch_b: int) -> Optional[int]:
    """Full-VR XOR reduction computed on the device.

    A ``log2(length)`` shift/XOR folding ladder: each stage XORs the
    vector with itself shifted toward the head by half the remaining
    span, leaving the reduction in element 0.
    """
    g = core.gvml
    g.cpy_16(scratch_a, vr)
    span = core.params.vr_length // 2
    while span >= 1:
        g.cpy_16(scratch_b, scratch_a)
        g.shift_e(scratch_b, span, toward="head")
        g.xor_16(scratch_a, scratch_a, scratch_b)
        span //= 2
    return g.get_element(scratch_a, 0)


# ----------------------------------------------------------------------
# Protected data movement
# ----------------------------------------------------------------------
def protected_cpy_16(core: APUCore, dst: int, src: int,
                     max_retries: int = 3) -> int:
    """Parity-tag-checked VR copy; returns the number of attempts.

    The tag is computed from the source before the move and re-checked
    on the destination after; a mismatch re-issues the copy up to
    ``max_retries`` extra times before raising :class:`IntegrityError`.
    The tag check is charged as ``integrity_parity`` (descriptor-side
    hardware, priced like the CRC engine).
    """
    costs = get_cost_model(core.params)
    check_cycles = costs.crc_cycles(core.params.vr_bytes)
    if not core.functional:
        core.gvml.cpy_16(dst, src)
        core.charge_raw("integrity_parity", check_cycles,
                        nbytes=core.params.vr_bytes)
        return 1
    expected = parity_tag(core.vr_read(src))
    for attempt in range(1, max_retries + 2):
        core.gvml.cpy_16(dst, src)
        core.charge_raw("integrity_parity", check_cycles,
                        nbytes=core.params.vr_bytes)
        if parity_tag(core.vr_read(dst)) == expected:
            return attempt
        core.charge_raw("integrity_detect", 0.0)
    raise IntegrityError(
        f"VR copy {src} -> {dst} still corrupt after "
        f"{max_retries} retries (stuck-at fault?)")


def checked_l4_to_l1(core: APUCore, vmr_slot: int, src: MemHandle,
                     max_retries: int = 3) -> int:
    """CRC-checked full-vector DMA; returns the number of attempts.

    The descriptor carries a CRC-16 of the source region; after the
    transfer the landed vector is re-CRC'd and compared.  Burst errors
    injected into the payload force a re-transfer (the retry reads the
    same clean source), bounded by ``max_retries``.
    """
    costs = get_cost_model(core.params)
    nbytes = core.params.vr_bytes
    check_cycles = costs.crc_cycles(nbytes)
    if not core.functional:
        core.dma.l4_to_l1_32k(vmr_slot, src)
        core.charge_raw("integrity_crc", check_cycles, nbytes=nbytes)
        return 1
    expected = crc16(core.l4.read(src, nbytes, np.uint16))
    for attempt in range(1, max_retries + 2):
        core.dma.l4_to_l1_32k(vmr_slot, src)
        core.charge_raw("integrity_crc", check_cycles, nbytes=nbytes)
        if crc16(core.l1.load(vmr_slot)) == expected:
            return attempt
        core.charge_raw("integrity_detect", 0.0)
    raise IntegrityError(
        f"DMA into VMR slot {vmr_slot} still corrupt after "
        f"{max_retries} retries (stuck-at fault?)")


# ----------------------------------------------------------------------
# Background scrubbing
# ----------------------------------------------------------------------
def scrub_pass(core: APUCore, slot_crcs: Mapping[int, int]) -> List[int]:
    """Re-CRC resident VMR slots against recorded values.

    Returns the slots whose stored data no longer matches -- upsets that
    hit data *at rest*, which no in-flight checker can see.  Each slot
    check is charged as ``scrub_check``; repair is the caller's job
    (typically :func:`checked_l4_to_l1` from the L4 master copy).
    """
    costs = get_cost_model(core.params)
    check_cycles = costs.crc_cycles(core.params.vr_bytes)
    failing: List[int] = []
    for slot, expected in sorted(slot_crcs.items()):
        core.charge_raw("scrub_check", check_cycles,
                        nbytes=core.params.vr_bytes)
        if not core.functional:
            continue
        if crc16(core.l1.load(slot)) != expected:
            failing.append(slot)
    return failing
