"""Fig. 15: top-5 retrieval energy, APU vs NVIDIA A6000.

Paper anchors: 54.4x-117.9x energy reduction; at 200 GB the APU energy
splits static 71.4% / compute 24.7% / DRAM 2.7% / other 1.1% /
cache 0.005%.
"""

import pytest

from repro.rag import fig15_energy_comparison


def test_fig15_energy(benchmark, report):
    points = benchmark(fig15_energy_comparison)

    report("Fig. 15: top-5 retrieval energy comparison")
    report(f"  {'corpus':8s} {'APU J':>10s} {'GPU J':>10s} {'ratio':>8s}")
    for label, point in points.items():
        report(f"  {label:8s} {point.apu_energy.total_j:10.3f} "
               f"{point.gpu_energy_j:10.2f} {point.efficiency_ratio:7.1f}x")
    fractions = points["200GB"].apu_energy.fractions()
    report("  APU energy split at 200 GB "
           "(paper: static 71.4%, compute 24.7%, DRAM 2.7%, other 1.1%, "
           "cache 0.005%):")
    report("   " + ", ".join(
        f"{k} {v * 100:.3f}%" for k, v in fractions.items()))

    ratios = [p.efficiency_ratio for p in points.values()]
    assert min(ratios) == pytest.approx(54.4, rel=0.15)
    assert max(ratios) == pytest.approx(117.9, rel=0.15)
    assert fractions["static"] == pytest.approx(0.714, abs=0.03)
    assert fractions["compute"] == pytest.approx(0.247, abs=0.03)
