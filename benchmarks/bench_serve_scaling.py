"""Shard-scaling sweep for the serving simulator (extension).

Drives the 200 GB corpus at a saturating offered load across 1/2/4/8
shard devices and reports sustained throughput, tail latency, and
utilization.  Every request fans out to all shards (scatter-gather), so
capacity is set by the per-shard batch rate: smaller shards finish
batches faster, giving near-linear throughput scaling until the fixed
per-batch costs (query staging, per-shard top-k, return) and the host
merge stop shrinking.

Runs two ways: under pytest-benchmark (the ``test_`` entry point,
paper-style table on the terminal) and as a plain script --
``python benchmarks/bench_serve_scaling.py --json`` emits the metric
dict that ``benchmarks/check_bench_regression.py`` gates CI on.
"""

import argparse
import json

from repro.rag import PAPER_CORPORA
from repro.serve import BatchPolicy, ServeConfig, ServingSimulator

SHARD_COUNTS = (1, 2, 4, 8)
OFFERED_QPS = 1200.0  # above even the 8-shard capacity -> saturation
N_REQUESTS = 256


def _run_sweep():
    reports = {}
    for n_shards in SHARD_COUNTS:
        config = ServeConfig(
            spec=PAPER_CORPORA["200GB"],
            n_shards=n_shards,
            batch=BatchPolicy(max_batch=16, max_wait_s=2e-3),
            qps=OFFERED_QPS,
            n_requests=N_REQUESTS,
            seed=0,
            slo_s=5.0,
        )
        reports[n_shards] = ServingSimulator(config).run()
    return reports


def collect_metrics():
    """Deterministic scalar metrics keyed for the CI regression gate."""
    metrics = {}
    for n_shards, rep in _run_sweep().items():
        metrics[f"shards{n_shards}"] = {
            "throughput_qps": rep.throughput_qps,
            "tti_p50_ms": rep.tti.p50_s * 1e3,
            "tti_p99_ms": rep.tti.p99_s * 1e3,
            "mean_utilization": (sum(rep.shard_utilization)
                                 / len(rep.shard_utilization)),
            "n_batches": rep.n_batches,
        }
    return {"serve_scaling": metrics}


def test_serve_shard_scaling(benchmark, report):
    reports = benchmark(_run_sweep)

    report(f"Serving shard scaling: 200GB corpus, {OFFERED_QPS:g} qps "
           f"offered, {N_REQUESTS} requests")
    report(f"  {'shards':>6s} {'qps':>8s} {'p50 ms':>9s} {'p99 ms':>9s} "
           f"{'util%':>6s} {'batches':>8s}")
    for n_shards, rep in reports.items():
        util = sum(rep.shard_utilization) / len(rep.shard_utilization)
        report(f"  {n_shards:6d} {rep.throughput_qps:8.1f} "
               f"{rep.tti.p50_s * 1e3:9.2f} {rep.tti.p99_s * 1e3:9.2f} "
               f"{util * 100:6.1f} {rep.n_batches:8d}")

    # Acceptance: throughput grows monotonically with the shard count.
    qps = [reports[n].throughput_qps for n in SHARD_COUNTS]
    assert all(b > a for a, b in zip(qps, qps[1:])), qps
    # Under saturation every shard stays busy nearly the whole run.
    for rep in reports.values():
        assert min(rep.shard_utilization) > 0.5
    # Sharding cuts the tail: p99 TTI strictly improves 1 -> 4 shards.
    assert reports[4].tti.p99_s < reports[1].tti.p99_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)
    metrics = collect_metrics()
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        for group, rows in metrics.items():
            print(group)
            for key, row in rows.items():
                print(f"  {key}: {row}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
