"""Ablation: ENNS vs ANNS recall (the Section 5.3 motivation).

The paper motivates exact search on compute-in-SRAM by the accuracy
ANNS sacrifices on large corpora (quoting 22-53% downstream loss).
This bench sweeps the IVF probe budget and reports recall@5 against the
exact index alongside the modeled CPU latency -- the trade-off the APU
dissolves by making exact search fast.
"""

import numpy as np

from repro.baselines.anns import IndexIVFFlat, ivf_recall_at_k
from repro.baselines.cpu import CPUModel
from repro.baselines.faiss_like import IndexFlatIP


def _corpus(n_clusters=32, per_cluster=80, dim=32, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(n_clusters, dim))
    vectors = np.vstack([
        center + rng.normal(scale=0.8, size=(per_cluster, dim))
        for center in centers
    ]).astype(np.float32)
    queries = (vectors[rng.integers(0, len(vectors), 40)]
               + rng.normal(scale=0.6, size=(40, dim)).astype(np.float32))
    return vectors, queries


def test_ablation_anns_recall(benchmark, report):
    vectors, queries = _corpus()
    exact = IndexFlatIP(vectors.shape[1])
    exact.add(vectors)
    cpu = CPUModel()
    embedding_bytes = 2.5e9  # the 200 GB corpus scale

    def run():
        rows = []
        for nprobe in (1, 2, 4, 8, 16, 32):
            index = IndexIVFFlat(vectors.shape[1], nlist=32,
                                 nprobe=nprobe, seed=1)
            index.train(vectors)
            index.add(vectors)
            rows.append((
                nprobe,
                ivf_recall_at_k(index, exact, queries, k=5),
                index.scanned_fraction(),
                index.cpu_latency_seconds(embedding_bytes, cpu) * 1e3,
            ))
        return rows

    rows = benchmark(run)
    exact_ms = cpu.retrieval_seconds(embedding_bytes) * 1e3
    report("Ablation: IVF-flat ANNS recall vs exact search")
    report(f"  {'nprobe':>7s} {'recall@5':>9s} {'scanned':>8s} "
           f"{'CPU ms':>8s}   (exact: recall 1.000, {exact_ms:.0f} ms)")
    for nprobe, recall, fraction, ms in rows:
        report(f"  {nprobe:7d} {recall:9.3f} {fraction:7.1%} {ms:8.1f}")

    recalls = [r[1] for r in rows]
    # Recall is monotone in probes; the low-probe regime loses enough
    # accuracy (>= ~15% of neighbors) to justify exact search.
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert recalls[-1] == 1.0
    assert recalls[0] < 0.85
    # ...while full recall costs the full scan time ANNS was avoiding.
    assert rows[-1][3] > 0.8 * exact_ms
