"""Fig. 14: end-to-end RAG inference time across platforms.

Paper anchors: retrieval speedups over CPU 6.3/4.8/6.6x, end-to-end
gains 1.05/1.15/1.75x, GPU-level final latency.
"""

import pytest

from repro.rag import PAPER_CORPORA, fig14_comparison

E2E_TARGETS = {"10GB": 1.05, "50GB": 1.15, "200GB": 1.75}
RETRIEVAL_TARGETS = {"10GB": 6.3, "50GB": 4.8, "200GB": 6.6}


def test_fig14_end_to_end(benchmark, report):
    entries = {e.platform: e for e in benchmark(fig14_comparison)}

    report("Fig. 14: inference time breakdown (time-to-first-token, ms)")
    report(f"  {'platform':16s}" + "".join(
        f"{label:>10s}" for label in PAPER_CORPORA))
    for platform, entry in entries.items():
        cells = "".join(f"{entry.ttft_ms[label]:10.1f}"
                        for label in PAPER_CORPORA)
        report(f"  {platform:16s}{cells}")
    report("  retrieval-only (ms):")
    for platform, entry in entries.items():
        cells = "".join(f"{entry.retrieval_ms[label]:10.2f}"
                        for label in PAPER_CORPORA)
        report(f"  {platform:16s}{cells}")

    for label in PAPER_CORPORA:
        retrieval_speedup = (entries["cpu"].retrieval_ms[label]
                             / entries["apu_all_opts"].retrieval_ms[label])
        e2e_speedup = (entries["cpu"].ttft_ms[label]
                       / entries["apu_all_opts"].ttft_ms[label])
        report(f"  {label}: retrieval speedup {retrieval_speedup:.2f}x "
               f"(paper {RETRIEVAL_TARGETS[label]}), e2e {e2e_speedup:.2f}x "
               f"(paper {E2E_TARGETS[label]})")
        assert retrieval_speedup == pytest.approx(
            RETRIEVAL_TARGETS[label], rel=0.25)
        assert e2e_speedup == pytest.approx(E2E_TARGETS[label], rel=0.12)
        # GPU-level end-to-end latency.
        assert (entries["apu_all_opts"].ttft_ms[label]
                / entries["gpu"].ttft_ms[label]) < 1.25
