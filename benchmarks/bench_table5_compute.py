"""Table 5: computation operation latencies on the simulator."""

import pytest

from repro.apu.device import APUDevice
from repro.core.params import DEFAULT_PARAMS

C = DEFAULT_PARAMS.compute
ISSUE = DEFAULT_PARAMS.effects.vcu_issue_cycles

#: (gvml method name, args, Table 5 op name)
CASES = [
    ("and_16", (2, 0, 1), "and_16"),
    ("or_16", (2, 0, 1), "or_16"),
    ("not_16", (2, 0), "not_16"),
    ("xor_16", (2, 0, 1), "xor_16"),
    ("sr_imm_16", (2, 0, 3), "ashift"),
    ("add_u16", (2, 0, 1), "add_u16"),
    ("add_s16", (2, 0, 1), "add_s16"),
    ("sub_u16", (2, 0, 1), "sub_u16"),
    ("sub_s16", (2, 0, 1), "sub_s16"),
    ("popcnt_16", (2, 0), "popcnt_16"),
    ("mul_u16", (2, 0, 1), "mul_u16"),
    ("mul_s16", (2, 0, 1), "mul_s16"),
    ("mul_f16", (2, 0, 1), "mul_f16"),
    ("div_u16", (2, 0, 1), "div_u16"),
    ("div_s16", (2, 0, 1), "div_s16"),
    ("eq_16", (0, 0, 1), "eq_16"),
    ("gt_u16", (0, 0, 1), "gt_u16"),
    ("lt_u16", (0, 0, 1), "lt_u16"),
    ("lt_gf16", (0, 0, 1), "lt_gf16"),
    ("ge_u16", (0, 0, 1), "ge_u16"),
    ("le_u16", (0, 0, 1), "le_u16"),
    ("recip_u16", (2, 0), "recip_u16"),
    ("exp_f16", (2, 0), "exp_f16"),
    ("sin_fx", (2, 0), "sin_fx"),
    ("cos_fx", (2, 0), "cos_fx"),
    ("count_m", (0,), "count_m"),
]


@pytest.mark.parametrize("method, args, op", CASES, ids=[c[0] for c in CASES])
def test_table5_each_op(method, args, op, benchmark):
    def run():
        device = APUDevice(functional=False)
        getattr(device.core.gvml, method)(*args)
        return device.core.cycles

    cycles = benchmark(run)
    assert cycles == pytest.approx(C.cost(op) + ISSUE)


def test_table5_summary(report, benchmark):
    benchmark(lambda: None)
    report("Table 5: computation latencies (cycles; simulator adds "
           f"{ISSUE:.0f}-cycle VCU issue)")
    report(f"{'operation':12s} {'paper':>8s} {'simulated':>10s}")
    for method, args, op in CASES:
        device = APUDevice(functional=False)
        getattr(device.core.gvml, method)(*args)
        report(f"{op:12s} {C.cost(op):8.0f} {device.core.cycles:10.0f}")


def test_table5_reduction_eq1(report, benchmark):
    """The add_subgrp_s16 row: Eq. 1 against the staged ladder."""
    from repro.core.reduction_model import (
        fit_reduction_coefficients, simulated_sg_add_cycles,
    )

    fit = benchmark(fit_reduction_coefficients)
    report("add_subgrp_s16: Eq. 1 fit vs staged-ladder simulation")
    report(f"{'(r, s)':>16s} {'ladder':>9s} {'Eq. 1':>9s}")
    for r, s in [(32768, 1), (32768, 256), (8192, 1024), (1024, 1)]:
        ladder = simulated_sg_add_cycles(r, s)
        eq1 = fit.predict(r, s)
        report(f"{f'({r}, {s})':>16s} {ladder:9.1f} {eq1:9.1f}")
    assert fit.r_squared > 0.999
