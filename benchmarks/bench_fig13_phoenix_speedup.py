"""Fig. 13: Phoenix latency vs single- and multi-threaded CPU.

Paper anchors: vs 1T CPU mean 41.8x / geomean 14.4x / peak 128.3x;
vs 16T CPU mean 12.5x / geomean 2.6x / max 68.1x.
"""

import pytest

from repro.phoenix import PhoenixSuite


def test_fig13_speedup_comparison(benchmark, report):
    suite = PhoenixSuite()
    rows = benchmark(suite.fig13_comparison)

    report("Fig. 13: latency normalized to the 1T Xeon baseline "
           "(values are APU speedups)")
    variants = suite.variant_labels()
    header = f"  {'application':18s} " + " ".join(
        f"{v:>9s}" for v in variants
    ) + f" {'vs 16T':>8s}"
    report(header)
    for row in rows:
        cells = " ".join(
            f"{row.cpu_1t_ms / row.apu_variant_ms[v]:9.2f}" for v in variants
        )
        report(f"  {row.app:18s} {cells} {row.speedup_16t():8.2f}")

    agg = suite.aggregate_speedups()
    report(f"  aggregates vs 1T : mean {agg['mean_vs_1t']:.1f}x "
           f"geomean {agg['geomean_vs_1t']:.1f}x peak {agg['peak_vs_1t']:.1f}x "
           f"(paper 41.8 / 14.4 / 128.3)")
    report(f"  aggregates vs 16T: mean {agg['mean_vs_16t']:.1f}x "
           f"geomean {agg['geomean_vs_16t']:.1f}x peak {agg['peak_vs_16t']:.1f}x "
           f"(paper 12.5 / 2.6 / 68.1)")

    assert agg["mean_vs_1t"] == pytest.approx(41.8, rel=0.25)
    assert agg["peak_vs_1t"] == pytest.approx(128.3, rel=0.25)
    assert agg["mean_vs_16t"] == pytest.approx(12.5, rel=0.25)
    # All-opts dominates every per-app variant family.
    for row in rows:
        assert row.apu_variant_ms["all opts"] == min(
            row.apu_variant_ms.values()
        )
