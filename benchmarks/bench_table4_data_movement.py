"""Table 4: data-movement operation latencies, analytical vs simulated.

Runs each operation on the timing simulator and prints the paper's
measured model next to the simulator's charge (which adds the
second-order effects the closed-form model omits).
"""

import pytest

from repro.apu.device import APUDevice
from repro.core.params import DEFAULT_PARAMS

MV = DEFAULT_PARAMS.movement

#: (label, analytical cycles, callable charging the op on a core)
CASES = [
    ("dma_l4_l3 (1 MB)", MV.dma_l4_l3(1 << 20),
     lambda c: c.dma.l4_to_l3(None, 1 << 20)),
    ("dma_l4_l2 (16 KB)", MV.dma_l4_l2(16384),
     lambda c: c.dma.l4_to_l2(None, 16384)),
    ("dma_l2_l1", MV.dma_l2_l1, lambda c: c.dma.l2_to_l1(0)),
    ("dma_l4_l1", MV.dma_l4_l1, lambda c: c.dma.l4_to_l1_32k(0)),
    ("dma_l1_l4", MV.dma_l1_l4, lambda c: c.dma.l1_to_l4_32k(None, 0)),
    ("pio_ld (n=100)", MV.pio_ld(100), lambda c: c.dma.pio_ld(0, n=100)),
    ("pio_st (n=100)", MV.pio_st(100),
     lambda c: c.dma.pio_st(None, 0, n=100)),
    ("lookup (sigma=1000)", MV.lookup(1000),
     lambda c: c.dma.lookup_16(0, None, 1000)),
    ("load / store", MV.vr_load, lambda c: c.gvml.load_16(0, 0)),
    ("cpy", MV.cpy, lambda c: c.gvml.cpy_16(1, 0)),
    ("cpy_subgrp", MV.cpy_subgrp,
     lambda c: c.gvml.cpy_subgrp_16_grp(1, 0, 1024)),
    ("cpy_imm", MV.cpy_imm, lambda c: c.gvml.cpy_imm_16(0, 7)),
    ("shift_e (k=8)", MV.shift_e(8), lambda c: c.gvml.shift_e(0, 8)),
    ("shift_e4 (k=8)", MV.shift_e4(8), lambda c: c.gvml.shift_e4(0, 8)),
]


@pytest.mark.parametrize("label, analytical, charge",
                         CASES, ids=[c[0] for c in CASES])
def test_table4_each_op(label, analytical, charge, benchmark):
    def run():
        device = APUDevice(functional=False)
        charge(device.core)
        return device.core.cycles

    simulated = benchmark(run)
    # The simulator may add issue/refresh overhead but never undercuts
    # the analytical model by more than rounding.
    assert simulated >= analytical * 0.999
    assert simulated <= analytical * 1.10 + 10


def test_table4_summary(report, benchmark):
    benchmark(lambda: None)
    report("Table 4: data movement, analytical (paper) vs simulator cycles")
    report(f"{'operation':22s} {'analytical':>12s} {'simulated':>12s} {'delta':>7s}")
    for label, analytical, charge in CASES:
        device = APUDevice(functional=False)
        charge(device.core)
        simulated = device.core.cycles
        delta = (simulated - analytical) / analytical * 100
        report(f"{label:22s} {analytical:12.1f} {simulated:12.1f} {delta:+6.2f}%")
