"""Monitor overhead: what the streaming sampler costs on top of telemetry.

The run monitor is derived *post hoc* from the scheduler's causal
record -- the event loop never sees it, which is how monitoring-off
byte-identity is guaranteed.  So the only cost is the sampling pass
itself: replaying queues/pool/burn windows over the cadence ladder and
feeding the quantile sketch.  The CI gate holds that build under 15%
of the telemetry-run wall clock (``sampling_overhead_frac``: the
shared ``*_overhead_frac`` absolute ceiling), on both the static serve
and the elastic autoscale golden workloads.

The deterministic *shape* of the derived monitor (series counts,
sample counts, final counter values) is gated exactly -- drift there
is a model change, not noise.

Same dual entry points as the other serving benchmarks: a
pytest-benchmark ``test_`` (marked ``monitor``, so it runs in the slow
CI job) and ``python benchmarks/bench_monitor_overhead.py --json`` for
the CI regression gate.
"""

import argparse
import json
import time

import pytest

from repro.scale import ScaleSimulator, golden_autoscale_config
from repro.serve import ServingSimulator, golden_serve_config

N_TIMING_RUNS = 9


def _timings(make_sim, n=N_TIMING_RUNS):
    """Interleaved best-of-n timings for the telemetry and monitor runs.

    The two variants are timed back-to-back within each round (not in
    two separate loops) so ambient load drifts hit both, and the
    overhead fraction compares the two *bests*: each variant's best
    round is its least noise-contaminated sample, and interleaving
    keeps a load drift between the loops from inflating the ratio.
    """
    telemetry_best = monitored_best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        make_sim().run_with_telemetry()
        telemetry_best = min(telemetry_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        make_sim().run_with_monitor()
        monitored_best = min(monitored_best, time.perf_counter() - t0)
    overhead = (monitored_best - telemetry_best) / telemetry_best
    return telemetry_best, monitored_best, max(0.0, overhead)


def _shape(monitor):
    """Deterministic shape of one derived monitor."""
    return {
        "n_series": len(monitor.series),
        "n_samples": len(monitor.instants),
        "completed_final": monitor.get(
            "repro_monitor_completed_total").final(),
    }


def _workloads():
    return (
        ("serve", lambda: ServingSimulator(golden_serve_config())),
        ("autoscale", lambda: ScaleSimulator(golden_autoscale_config())),
    )


def collect_metrics():
    """Deterministic scalar metrics keyed for the CI regression gate."""
    rows = {}
    for name, make_sim in _workloads():
        # Two full passes; keep the quieter one.  One transient load
        # spike on a shared runner must not push the recorded fraction
        # over the absolute ceiling.
        telemetry_s, monitored_s, overhead = min(
            (_timings(make_sim) for _ in range(2)),
            key=lambda t: t[2])
        _report, _telemetry, monitor = make_sim().run_with_monitor()
        metrics = dict(_shape(monitor))
        metrics["sampling_overhead_frac"] = overhead
        metrics["telemetry_wall_ms"] = telemetry_s * 1e3
        metrics["monitored_wall_ms"] = monitored_s * 1e3
        rows[name] = metrics
    return {"monitor_overhead": rows}


@pytest.mark.monitor
def test_monitor_overhead(benchmark, report):
    make_serve = _workloads()[0][1]
    telemetry_s, monitored_s, overhead = benchmark(
        lambda: _timings(make_serve))
    _report, _telemetry, monitor = make_serve().run_with_monitor()
    shape = _shape(monitor)
    # One contaminated sample must not flake CI: the budget applies to
    # the best overhead observed, so retry under transient load.
    overhead = min([overhead]
                   + [_timings(make_serve)[2] for _ in range(2)])

    report(f"monitor overhead on the golden serve workload "
           f"(best of {N_TIMING_RUNS}):")
    report(f"  telemetry only   {telemetry_s * 1e3:8.3f} ms")
    report(f"  with monitor     {monitored_s * 1e3:8.3f} ms "
           f"({overhead:+.1%})")
    report(f"  derived: {shape['n_series']} series x "
           f"{shape['n_samples']} samples, "
           f"completed={shape['completed_final']:g}")

    assert overhead < 0.15, (
        f"monitor sampling costs {overhead:.1%} of the telemetry run "
        f"(budget 15%)")
    assert shape["completed_final"] == 64.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)
    metrics = collect_metrics()
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        for row, values in metrics["monitor_overhead"].items():
            print(f"{row}:")
            for key, value in values.items():
                print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
