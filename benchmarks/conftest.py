"""Shared benchmark fixtures.

Every bench regenerates one paper table or figure: the ``benchmark``
fixture times the computation, and the ``report`` fixture prints the
paper-style rows to the real terminal (bypassing pytest capture) so the
numbers appear alongside the pytest-benchmark timing table.
"""

import pytest


@pytest.fixture()
def report(capsys):
    """Print rows to the terminal regardless of capture mode."""

    def _print(*args, **kwargs):
        with capsys.disabled():
            print(*args, **kwargs)

    _print("")  # newline separating pytest progress dots from tables
    return _print
