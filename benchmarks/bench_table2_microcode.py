"""Table 2: micro-operations on the bit-processor state.

Times bit-serial arithmetic built from the Table 2 operation set and
reports the micro-op counts each vector instruction expands to.
"""

import numpy as np

from repro.apu import microcode as mc
from repro.apu.bitproc import BitProcessorArray


def _fresh_bank():
    rng = np.random.default_rng(0)
    bank = BitProcessorArray(columns=2048)
    bank.load_u16(0, rng.integers(0, 65536, 2048).astype(np.uint16))
    bank.load_u16(1, rng.integers(0, 65536, 2048).astype(np.uint16))
    return bank


def test_table2_bit_parallel_logic(benchmark, report):
    bank = _fresh_bank()

    def run():
        before = bank.micro_ops
        mc.op_and(bank, 2, 0, 1)
        mc.op_xor(bank, 3, 0, 1)
        mc.op_not(bank, 4, 0)
        return bank.micro_ops - before

    micro_ops = benchmark(run)
    report("Table 2: bit-parallel boolean ops on 2048-column bank")
    report(f"  and+xor+not micro-ops: {micro_ops}")
    assert micro_ops == 7


def test_table2_bit_serial_add(benchmark, report):
    bank = _fresh_bank()
    a, b = bank.read_u16(0), bank.read_u16(1)

    def run():
        before = bank.micro_ops
        mc.add_u16(bank, 4, 0, 1, carry=22, scratch=23)
        return bank.micro_ops - before

    micro_ops = benchmark(run)
    assert (bank.read_u16(4) == a + b).all()
    report("Table 2: ripple-carry add_u16 via RL/neighbor micro-ops")
    report(f"  micro-ops per 16-bit add: {micro_ops}")
    assert micro_ops > 100  # bit-serial carries cost real micro-ops


def test_table2_gvl_equality(benchmark, report):
    bank = _fresh_bank()

    def run():
        before = bank.micro_ops
        mc.eq_16(bank, 6, 0, 1, scratch=20)
        return bank.micro_ops - before

    micro_ops = benchmark(run)
    report(f"Table 2: eq_16 through the global vertical latch: "
           f"{micro_ops} micro-ops")
    expected = bank.read_u16(0) == bank.read_u16(1)
    del expected
