"""Ablation: HBM2e vs the device's native DDR4 (Section 5.3.1's premise).

The paper replaces the Leda-E's 23.8 GB/s DDR with simulated HBM2e
"to mitigate an off-chip memory bottleneck".  This bench quantifies
that substitution's effect on RAG retrieval.
"""

from repro.hbm import make_ddr4, make_hbm2e
from repro.rag import APURetriever, PAPER_CORPORA


def test_ablation_hbm_vs_ddr(benchmark, report):
    def run():
        rows = {}
        for label, spec in PAPER_CORPORA.items():
            hbm = APURetriever(optimized=True, hbm=make_hbm2e())
            ddr = APURetriever(optimized=True, hbm=make_ddr4())
            rows[label] = (
                hbm.latency_breakdown(spec),
                ddr.latency_breakdown(spec),
            )
        return rows

    rows = benchmark(run)
    report("Ablation: embedding stream over HBM2e vs native DDR4 (ms)")
    report(f"  {'corpus':8s} {'HBM load':>10s} {'DDR load':>10s} "
           f"{'HBM total':>10s} {'DDR total':>10s}")
    for label, (hbm, ddr) in rows.items():
        report(f"  {label:8s} {hbm.load_embedding * 1e3:10.2f} "
               f"{ddr.load_embedding * 1e3:10.2f} {hbm.total * 1e3:10.2f} "
               f"{ddr.total * 1e3:10.2f}")

    # DDR4 makes the embedding stream the dominant stage at 200 GB.
    hbm200, ddr200 = rows["200GB"]
    assert ddr200.load_embedding > 10 * hbm200.load_embedding
    assert ddr200.load_embedding > ddr200.calc_distance / 2


def test_ablation_memory_patterns(report, benchmark):
    """Access-pattern sensitivity of the HBM model."""
    report("  HBM2e effective bandwidth by pattern (2.4 GB stream):")
    benchmark(make_hbm2e().transfer_seconds, 2.4576e9, "sequential")
    for pattern in ("sequential", "chunked", "random"):
        bw = make_hbm2e().effective_bandwidth(2.4576e9, pattern)
        report(f"    {pattern:10s} {bw / 1e9:7.1f} GB/s")
    seq = make_hbm2e().effective_bandwidth(2.4576e9, "sequential")
    rnd = make_hbm2e().effective_bandwidth(2.4576e9, "random")
    assert seq > 5 * rnd
