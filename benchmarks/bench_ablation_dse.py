"""Ablation: design-space exploration with the analytical framework.

The paper positions the framework for "architectural design space
exploration by enabling the tuning of key design parameters".  This
bench sweeps the parameters the optimizations interact with -- lookup
slope, subgroup-copy cost, DMA bandwidth, shift cost -- against the
fully-optimized binary-matmul workload and reports sensitivities.
"""

from repro.core.dse import DesignSpaceExplorer
from repro.core.params import DEFAULT_PARAMS
from repro.opt.reduction import MatmulCostModel, MatmulShape


def matmul_latency_us(params):
    """All-opts 1024^3 binary matmul under a parameterization."""
    model = MatmulCostModel(MatmulShape(1024, 1024, 64), params)
    return params.cycles_to_us(model.all_opts().total)


SWEEPS = {
    "movement.lookup_per_entry": [1.7875, 3.575, 7.15, 14.3],
    "movement.cpy_subgrp": [41.0, 82.0, 164.0],
    "movement.dma_l4_l1": [11136.0, 22272.0, 44544.0],
    "movement.shift_e_per_elem": [93.25, 186.5, 373.0, 746.0],
    "dram_bandwidth": [11.9e9, 23.8e9, 47.6e9, 95.2e9],
}


def test_ablation_design_space(benchmark, report):
    explorer = DesignSpaceExplorer(matmul_latency_us, DEFAULT_PARAMS)
    results = benchmark(explorer.sensitivity_report, SWEEPS)

    report("Ablation: parameter sensitivity of the optimized matmul")
    report(f"  {'parameter':28s} {'baseline':>10s} {'best':>10s} "
           f"{'sensitivity':>12s}")
    for name, sweep in results.items():
        report(f"  {name:28s} {sweep.baseline_latency_us:10.1f} "
               f"{sweep.best.latency_us:10.1f} {sweep.sensitivity():12.3f}")

    # The optimized kernel is bulk-DMA bound: the full-vector DMA cost
    # must matter more than the (already minimized) shift cost.
    assert (results["movement.dma_l4_l1"].sensitivity()
            > results["movement.shift_e_per_elem"].sensitivity())
    # Broadcast lookups still on the critical path -> nonzero sensitivity.
    assert results["movement.lookup_per_entry"].sensitivity() > 0.05


def test_ablation_next_generation_point(report, benchmark):
    """A 'next-gen' APU: 1 GHz clock, 4x lookup, HBM-class DRAM."""
    from repro.core.dse import evolve_nested

    params = DEFAULT_PARAMS.evolve(clock_hz=1e9, dram_bandwidth=400e9)
    params = evolve_nested(params, "movement.lookup_per_entry", 7.15 / 4)
    current = benchmark(matmul_latency_us, DEFAULT_PARAMS)
    nextgen = matmul_latency_us(params)
    report(f"  next-gen projection: {current:.1f} us -> {nextgen:.1f} us "
           f"({current / nextgen:.2f}x)")
    assert nextgen < current
