"""Ablation: Phoenix latency scaling with input size.

Sweeps the streaming applications across input sizes to confirm the
latency programs scale linearly in data volume (they are stream-bound)
and that the APU-vs-CPU verdicts of Fig. 13 are not artifacts of the
paper's specific input sizes.
"""

from repro.phoenix import LinearRegression, StringMatch, WordCount


def _scaled(cls, factor):
    return cls.with_input_scale(factor)


def test_ablation_phoenix_input_scaling(benchmark, report):
    factors = (0.25, 0.5, 1.0, 2.0, 4.0)

    def run():
        table = {}
        for cls in (LinearRegression, StringMatch, WordCount):
            table[cls.name] = [
                _scaled(cls, f).measured_latency_ms() for f in factors
            ]
        return table

    table = benchmark(run)
    report("Ablation: latency (ms) vs input-size factor")
    report(f"  {'application':18s}" + "".join(f"{f:>9.2f}x" for f in factors))
    for app, latencies in table.items():
        report(f"  {app:18s}" + "".join(f"{v:9.2f}" for v in latencies))

    for app, latencies in table.items():
        # Monotone in input size...
        assert all(b > a for a, b in zip(latencies, latencies[1:])), app
        # ...and near-linear: 16x the data within 2x of 16x the time.
        ratio = latencies[-1] / latencies[0]
        assert 8.0 < ratio < 32.0, app


def test_ablation_speedup_stability(report, benchmark):
    """APU-over-CPU speedup is size-stable for stream-bound apps (the
    CPU instruction count scales with the data too)."""

    def run():
        rows = {}
        for cls in (LinearRegression, StringMatch):
            speedups = []
            for factor in (0.5, 1.0, 2.0):
                app = _scaled(cls, factor)
                apu_ms = app.measured_latency_ms()
                cpu_ms = app.cpu_latency_ms(threads=1) * factor
                speedups.append(cpu_ms / apu_ms)
            rows[cls.name] = speedups
        return rows

    rows = benchmark(run)
    report("Ablation: speedup vs 1T CPU across input scales")
    for app, speedups in rows.items():
        report(f"  {app:18s} " + "  ".join(f"{s:6.1f}x" for s in speedups))
        spread = max(speedups) / min(speedups)
        assert spread < 1.5, app
