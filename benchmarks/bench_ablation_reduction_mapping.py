"""Ablation: spatial vs temporal reduction mapping across shapes.

The communication-aware mapping planner (Section 4.2) should pick
temporal for the paper's workloads but spatial when outputs are tiny
and the reduction axis is huge -- this bench maps the crossover.
"""

from repro.opt.reduction import MatmulCostModel, MatmulShape, ReductionMapping


def test_ablation_mapping_crossover(benchmark, report):
    shapes = [
        MatmulShape(1024, 1024, 64),   # the paper's microbenchmark
        MatmulShape(4096, 1024, 64),
        MatmulShape(256, 2048, 128),
        MatmulShape(16, 512, 2048),
        MatmulShape(1, 4, 8192),       # dot-product-like
        MatmulShape(2, 8, 4096),
    ]

    def run():
        rows = []
        for shape in shapes:
            model = MatmulCostModel(shape)
            rows.append((
                shape,
                model.baseline().total,
                model.temporal().total,
                model.choose_mapping(),
            ))
        return rows

    rows = benchmark(run)
    report("Ablation: reduction-mapping planner decisions")
    report(f"  {'(M, N, K)':>20s} {'spatial Mcyc':>13s} "
           f"{'temporal Mcyc':>14s} {'choice':>10s}")
    for shape, spatial, temporal, choice in rows:
        label = f"({shape.m}, {shape.n}, {shape.k_words})"
        report(f"  {label:>20s} {spatial / 1e6:13.2f} "
               f"{temporal / 1e6:14.2f} {choice.value:>10s}")

    decisions = {(r[0].m, r[0].n, r[0].k_words): r[3] for r in rows}
    assert decisions[(1024, 1024, 64)] is ReductionMapping.TEMPORAL
    assert decisions[(1, 4, 8192)] is ReductionMapping.SPATIAL
