"""Protection-tier design-space sweep: escapes vs charged ECC cost.

Three layers of evidence behind the "which code do I buy" table:

* **Escape capability** -- exhaustive burst classification per tier:
  every (start bit, word offset) placement of a 1..4-bit burst inside
  a 64-bit codeword is decoded and tallied as corrected / detected /
  miscorrected.  A *silent escape* is a miscorrection (or, with no
  code at all, any upset).  SEC-DED must show zero escapes for single
  bits and doubles, BCH t must show zero up to ``t``-bit bursts, and
  the unprotected arm is nonzero everywhere.
* **Functional confirmation** -- the real retrieval kernel under a
  seeded single-bit upset stream with the codec attached to the
  injector: protected answers stay bit-identical to the fault-free
  baseline while the unprotected arm measurably corrupts.
* **Serving tax** -- the golden ECC deployment re-run per tier:
  sustained qps, TTI p99, and the ``n/k`` storage inflation, all
  charged through the latency model; plus a
  :class:`~repro.core.dse.DesignSpaceExplorer` clock sweep of the
  per-batch cost showing how the decode tax scales with the device
  clock.

The recommendation table picks, per burst width, the cheapest tier
with zero silent escapes and the cheapest that fully *corrects* (no
data loss, no retries).

Dual entry points like the other serving benchmarks: a pytest test
(marked ``ecc``, slow CI job) and ``python benchmarks/bench_ecc_dse.py
--json`` feeding the ``BENCH_ecc.json`` regression gate.
"""

import argparse
import dataclasses
import json

import pytest

from repro.apu.device import APUDevice
from repro.core.dse import DesignSpaceExplorer
from repro.core.params import DEFAULT_PARAMS
from repro.ecc import (
    ECCConfig,
    ECCCostModel,
    VERDICT_CORRECTED,
    VERDICT_DETECTED,
    make_codec,
)
from repro.integrity import MemoryFaultInjector
from repro.rag.corpus import MiniCorpus
from repro.rag.retrieval import APURetriever
from repro.serve import ServingSimulator, golden_ecc_config

#: Protection tiers, weakest to strongest; None is the unprotected arm.
TIERS = (
    ("none", None),
    ("secded", ECCConfig(enabled=True, tier="secded")),
    ("bch_t2", ECCConfig(enabled=True, tier="bch", t=2)),
    ("bch_t3", ECCConfig(enabled=True, tier="bch", t=3)),
)
BURST_WIDTHS = (1, 2, 3, 4)
#: Functional single-bit upset rates (per VR write / DMA payload).
UPSET_RATES = (0.0, 1e-2, 4e-2)
N_QUERIES = 4
CORPUS_CHUNKS = 32768
CORPUS_DIM = 8
CORPUS_SEED = 7
K = 5
CLOCK_SWEEP_HZ = (1e9, 2e9, 4e9)


def _burst_patterns(width):
    """Every placement of a ``width``-bit burst in a 64-bit codeword,
    as data-bit index sets (bursts stay inside one 16-bit word, the
    DMA beat geometry the injector models)."""
    for word in range(4):
        for start in range(0, 16 - width + 1):
            yield {word * 16 + start + i for i in range(width)}


def _run_capability_grid():
    """{tier: {width: verdict tallies}} by exhaustive classification."""
    grid = {}
    for name, cfg in TIERS:
        codec = make_codec(cfg) if cfg is not None else None
        grid[name] = {}
        for width in BURST_WIDTHS:
            tally = {"corrected": 0, "detected": 0, "escapes": 0}
            for pattern in _burst_patterns(width):
                if codec is None:
                    tally["escapes"] += 1  # raw damage always ships
                    continue
                verdict = codec.classify(pattern)
                if verdict == VERDICT_CORRECTED:
                    tally["corrected"] += 1
                elif verdict == VERDICT_DETECTED:
                    tally["detected"] += 1
                else:
                    tally["escapes"] += 1
            grid[name][width] = tally
    return grid


def _run_functional_sweep():
    """Real retrieval under seeded single-bit upsets, per tier."""
    corpus = MiniCorpus(n_chunks=CORPUS_CHUNKS, dim=CORPUS_DIM,
                        seed=CORPUS_SEED)
    queries = [corpus.sample_query() for _ in range(N_QUERIES)]
    plain = APURetriever(optimized=True)
    baselines = [plain.retrieve_with_scores(corpus, q, K) for q in queries]

    rows = {}
    for name, cfg in TIERS:
        rows[name] = {}
        for rate in UPSET_RATES:
            row = {"injected": 0, "corrected": 0, "flagged": 0,
                   "mismatches": 0}
            for q, (query, baseline) in enumerate(zip(queries, baselines)):
                device = APUDevice()
                injector = MemoryFaultInjector(
                    upset_rate=rate, seed=1000 * q + 1, ecc=cfg)
                device.attach_sdc(injector)
                result = plain.retrieve_with_scores(corpus, query, K,
                                                    device)
                row["injected"] += injector.n_corruptions
                row["corrected"] += injector.n_ecc_corrected
                row["flagged"] += injector.n_ecc_detected
                if result != baseline:
                    row["mismatches"] += 1
            rows[name][rate] = row
    return rows


def _run_serve_grid():
    """Golden ECC deployment per tier: throughput and charged costs."""
    base = golden_ecc_config()
    grid = {}
    for name, cfg in TIERS:
        config = dataclasses.replace(
            base, ecc=cfg if cfg is not None else ECCConfig())
        report = ServingSimulator(config).run()
        row = {
            "qps": report.throughput_qps,
            "tti_p99_ms": report.tti.p99_s * 1e3,
            "sdc_escapes": report.n_sdc_escapes,
            "storage_factor": 1.0,
        }
        if cfg is not None:
            costs = ECCCostModel(make_codec(cfg), DEFAULT_PARAMS.clock_hz)
            row["storage_factor"] = costs.storage_factor
            row["corrected"] = report.n_ecc_corrected
            row["detected"] = report.n_ecc_detected
            row["miscorrected"] = report.n_ecc_miscorrections
        grid[name] = row
    return grid


def _run_clock_dse():
    """Per-tier DSE: batch cost vs device clock (decode tax scaling)."""
    from repro.serve.simulator import ShardServiceModel

    base = golden_ecc_config()
    sweeps = {}
    for name, cfg in TIERS:
        def batch_latency_us(params, cfg=cfg):
            model = ShardServiceModel(base.spec, base.n_shards, k=base.k,
                                      params=params, ecc=cfg)
            return model.batch_seconds(0, base.batch.max_batch) * 1e6

        explorer = DesignSpaceExplorer(batch_latency_us, DEFAULT_PARAMS)
        result = explorer.sweep("clock_hz", CLOCK_SWEEP_HZ)
        sweeps[name] = {
            "baseline_us": result.baseline_latency_us,
            "best_clock_hz": result.best.value,
            "best_us": result.best.latency_us,
            "sensitivity": result.sensitivity(),
        }
    return sweeps


def _recommend(capability):
    """Cheapest tier (tier order = cost order) per burst width."""
    table = {}
    for width in BURST_WIDTHS:
        zero_escape = next(
            (name for name, _ in TIERS
             if capability[name][width]["escapes"] == 0), None)
        full_correct = next(
            (name for name, _ in TIERS
             if capability[name][width]["escapes"] == 0
             and capability[name][width]["detected"] == 0), None)
        table[width] = {"zero_escape": zero_escape,
                        "full_correction": full_correct}
    return table


def collect_metrics():
    """Deterministic scalar metrics keyed for the CI regression gate."""
    capability = _run_capability_grid()
    metrics = {}
    for name, widths in capability.items():
        metrics[f"capability_{name}"] = {
            f"w{width}_{kind}": count
            for width, tally in widths.items()
            for kind, count in tally.items()
        }
    for name, rates in _run_functional_sweep().items():
        metrics[f"functional_{name}"] = {
            f"rate{rate:g}_{kind}": count
            for rate, row in rates.items()
            for kind, count in row.items()
        }
    for name, row in _run_serve_grid().items():
        renamed = {"throughput_qps": row.pop("qps"),
                   "tti_p99_ms": row.pop("tti_p99_ms")}
        renamed.update(row)
        metrics[f"serve_{name}"] = renamed
    for name, sweep in _run_clock_dse().items():
        metrics[f"dse_{name}"] = dict(sweep)
    return {"ecc_dse": metrics}


@pytest.mark.ecc
def test_ecc_protection_dse(benchmark, report):
    capability = benchmark(_run_capability_grid)
    functional = _run_functional_sweep()
    serve = _run_serve_grid()
    dse = _run_clock_dse()
    recommendation = _recommend(capability)

    report("ECC capability grid: verdicts over every burst placement "
           "in a 64-bit codeword")
    report(f"  {'tier':>8s} " + " ".join(
        f"{'w' + str(w) + ' c/d/e':>14s}" for w in BURST_WIDTHS))
    for name, _ in TIERS:
        cells = []
        for width in BURST_WIDTHS:
            tally = capability[name][width]
            cells.append(f"{tally['corrected']:4d}/{tally['detected']:4d}"
                         f"/{tally['escapes']:4d}")
        report(f"  {name:>8s} " + " ".join(cells))
    report("  serving tax on the golden ECC deployment:")
    for name, row in serve.items():
        report(f"    {name:>8s}: {row['qps']:6.1f} qps, "
               f"tti p99 {row['tti_p99_ms']:8.2f} ms, "
               f"storage x{row['storage_factor']:.3f}")
    report("  recommendation (cheapest tier per burst width):")
    for width, rec in recommendation.items():
        report(f"    {width}-bit bursts: zero-escape={rec['zero_escape']}"
               f", full-correction={rec['full_correction']}")

    # The unprotected arm ships every upset, at every width.
    for width in BURST_WIDTHS:
        assert capability["none"][width]["escapes"] > 0
    # SEC-DED: zero escapes for singles (all corrected) and doubles
    # (all detected); beyond capability it demonstrably miscorrects.
    assert capability["secded"][1] == {
        "corrected": 64, "detected": 0, "escapes": 0}
    assert capability["secded"][2]["escapes"] == 0
    assert capability["secded"][2]["corrected"] == 0
    assert capability["secded"][3]["escapes"] > 0
    # BCH t: zero escapes up to t-bit bursts, all fully corrected.
    for t, name in ((2, "bch_t2"), (3, "bch_t3")):
        for width in BURST_WIDTHS:
            if width <= t:
                assert capability[name][width]["escapes"] == 0
                assert capability[name][width]["detected"] == 0
    # Functional confirmation under real injection: protected answers
    # never drift from the baseline; unprotected ones do.
    top = max(UPSET_RATES)
    assert functional["none"][top]["mismatches"] > 0
    for name in ("secded", "bch_t2", "bch_t3"):
        for rate in UPSET_RATES:
            row = functional[name][rate]
            assert row["mismatches"] == 0, (name, rate, row)
            if row["injected"]:
                assert row["corrected"] >= 1, (name, rate, row)
    # The protection is charged: stronger codes cost strictly more per
    # batch (the DSE baseline isolates the modeled cost from the run
    # dynamics, where a SEC-DED shard death reshapes throughput) and
    # strictly more storage.
    order = [name for name, _ in TIERS]
    costs = [dse[name]["baseline_us"] for name in order]
    assert costs == sorted(costs) and len(set(costs)) == len(costs)
    factors = [serve[name]["storage_factor"] for name in order]
    assert factors == sorted(factors) and len(set(factors)) == len(factors)
    # ...and it pays for itself: the unprotected golden run ships SDC
    # escapes that BCH t=3 eliminates entirely.
    assert serve["none"]["sdc_escapes"] > 0
    assert serve["bch_t3"]["sdc_escapes"] == 0
    # The recommendation table is the headline: SEC-DED suffices for
    # singles and doubles, burst tolerance requires BCH.
    assert recommendation[1] == {"zero_escape": "secded",
                                 "full_correction": "secded"}
    assert recommendation[2]["zero_escape"] == "secded"
    assert recommendation[2]["full_correction"] == "bch_t2"
    assert recommendation[3]["full_correction"] == "bch_t3"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)
    metrics = collect_metrics()
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        for group, rows in metrics.items():
            print(group)
            for key, row in rows.items():
                print(f"  {key}: {row}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
