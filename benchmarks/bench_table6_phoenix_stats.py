"""Table 6: Phoenix workload statistics (instruction counts)."""

from repro.phoenix import PhoenixSuite


def test_table6_statistics(benchmark, report):
    suite = PhoenixSuite()
    rows = benchmark(suite.table6_stats)

    report("Table 6: Phoenix workload statistics")
    report(f"  {'application':18s} {'input':>14s} {'CPU inst':>12s} "
           f"{'APU ucode inst':>15s}")
    for row in rows:
        cpu = (f"{row['cpu_instructions'] / 1e9:.1f}B"
               if row["cpu_instructions"] else "--")
        report(f"  {row['app']:18s} {row['input_size']:>14s} {cpu:>12s} "
               f"{row['apu_ucode_instructions'] / 1e6:14.2f}M")

    by_app = {r["app"]: r for r in rows}
    assert by_app["string_match"]["cpu_instructions"] == 101.8e9
    for row in rows:
        assert row["apu_ucode_instructions"] > 0
