"""Table 7: analytical-framework validation (measured vs predicted).

Paper anchors: per-app error between +2.3% and -6.2%, mean accuracy
97.3%.  "Measured" here is the cycle-accounting simulator (second-order
effects on), "predicted" the closed-form framework (effects off).
"""

from repro.phoenix import PhoenixSuite

PAPER_ROWS = {
    "histogram": (1644.8, +0.32),
    "linear_regression": (92.3, +2.3),
    "matrix_multiply": (421.3, -4.5),
    "kmeans": (1.6, -6.2),
    "reverse_index": (182.0, -0.49),
    "string_match": (90.9, +1.8),
    "word_count": (3.2, -3.1),
}


def test_table7_validation(benchmark, report):
    suite = PhoenixSuite()
    rows = benchmark(suite.table7_validation)

    report("Table 7: measured (simulator) vs predicted (framework)")
    report(f"  {'application':18s} {'meas ms':>10s} {'pred ms':>10s} "
           f"{'error':>8s} {'paper ms':>9s} {'paper err':>9s}")
    for row in rows:
        paper_ms, paper_err = PAPER_ROWS[row.app]
        report(f"  {row.app:18s} {row.measured_ms:10.2f} "
               f"{row.predicted_ms:10.2f} {row.error * 100:+7.2f}% "
               f"{paper_ms:9.1f} {paper_err:+8.2f}%")
    accuracy = suite.mean_accuracy()
    report(f"  mean framework accuracy: {accuracy * 100:.2f}% (paper 97.3%)")

    assert accuracy > 0.95
    for row in rows:
        assert abs(row.error) < 0.062  # paper's worst case
        assert 0.6 * PAPER_ROWS[row.app][0] < row.measured_ms \
            < 1.4 * PAPER_ROWS[row.app][0]
