"""Table 8: compute-in-SRAM retrieval latency breakdown.

Paper anchors (totals): no-opt 21.8 / 129.5 / 539.2 ms, all-opts
3.9 / 20.6 / 84.2 ms at 10/50/200 GB.
"""

import pytest

from repro.rag import APURetriever, PAPER_CORPORA

PAPER = {
    #        no-opt total, all-opts total (ms)
    "10GB": (21.8, 3.9),
    "50GB": (129.5, 20.6),
    "200GB": (539.2, 84.2),
}

STAGES = ("load_embedding", "load_query", "calc_distance",
          "topk_aggregation", "return_topk", "total")


def test_table8_breakdown(benchmark, report):
    def run():
        out = {}
        for label, spec in PAPER_CORPORA.items():
            out[label] = (
                APURetriever(optimized=False).latency_breakdown(spec),
                APURetriever(optimized=True).latency_breakdown(spec),
            )
        return out

    results = benchmark(run)
    report("Table 8: retrieval latency breakdown (ms)")
    for variant, idx in (("No Opt", 0), ("All Opts", 1)):
        report(f"  Compute-in-SRAM {variant}")
        report("  " + f"{'stage':18s}" + "".join(
            f"{label:>10s}" for label in PAPER_CORPORA))
        for stage in STAGES:
            cells = "".join(
                f"{results[label][idx].as_ms()[stage]:10.3f}"
                for label in PAPER_CORPORA
            )
            report(f"  {stage:18s}{cells}")

    for label, (paper_noopt, paper_opt) in PAPER.items():
        noopt, opt = results[label]
        assert noopt.total * 1e3 == pytest.approx(paper_noopt, rel=0.35)
        assert opt.total * 1e3 == pytest.approx(paper_opt, rel=0.35)
        # Both columns are distance-dominated, as in the paper.
        assert opt.calc_distance > 0.5 * opt.total
