"""Fig. 2: roofline of matrix-multiplication kernels on the APU.

Places the four Fig. 12 kernels at their (operational intensity,
performance) coordinates against the 16-bit-MAC compute roof and the
device-DRAM bandwidth roof.
"""

from repro.core.roofline import KernelPoint, RooflineModel
from repro.opt.matmul import STAGE_ORDER, run_all_stages
from repro.opt.reduction import MatmulShape


def test_fig02_roofline(benchmark, report):
    shape = MatmulShape(m=1024, n=1024, k_words=64)

    def run():
        results = run_all_stages(1024, 1024, 1024, functional=False)
        points = []
        for stage in STAGE_ORDER:
            result = results[stage]
            points.append(KernelPoint(
                name=stage,
                operational_intensity=result.operational_intensity,
                performance=result.performance_ops(shape),
            ))
        return points

    points = benchmark(run)
    roofline = RooflineModel()
    report("Fig. 2: matmul kernels on the APU roofline")
    report(f"  compute roof: {roofline.peak_compute_ops / 1e12:.2f} TOPS "
           f"(16-bit MAC), memory roof: "
           f"{roofline.memory_bandwidth / 1e9:.1f} GB/s, "
           f"ridge at OI {roofline.ridge_point:.1f}")
    report(f"  {'kernel':10s} {'OI':>8s} {'GOPS':>8s} {'attainable':>11s} "
           f"{'efficiency':>10s} {'bound':>8s}")
    sides = roofline.classify(points)
    for point in points:
        attainable = roofline.attainable(point.operational_intensity)
        report(f"  {point.name:10s} {point.operational_intensity:8.2f} "
               f"{point.performance / 1e9:8.2f} {attainable / 1e9:11.2f} "
               f"{roofline.efficiency(point):10.3f} {sides[point.name]:>8s}")

    # Optimizations push OI (and achieved performance) monotonically up.
    ois = [p.operational_intensity for p in points]
    perfs = [p.performance for p in points]
    assert ois == sorted(ois)
    assert perfs == sorted(perfs)
    # The baseline sits near the memory roof; tailored data movement
    # approaches the compute roof (the Fig. 2 observation).
    assert sides["baseline"] == "memory"
    assert points[-1].operational_intensity > roofline.ridge_point
