"""10x load-spike benchmark: static pool vs elastic autoscale + shed.

The canonical overload story for the elastic control plane: a 10 GB
corpus served by 2 devices (capacity ~1974 qps at batch 8) takes a
sustained 10x arrival spike -- 250 qps floor jumping to 2500 qps for a
full second.  The static pool has no recourse: the queue grows for the
entire spike and p99 TTI lands ~40% past the SLO with single-digit
attainment.  The elastic pool scales 2 -> 6 devices (capacity
~4012 qps) within a few control ticks, sheds a bounded slice of
low-priority traffic while the attaches warm, and holds p99 inside a
couple of milliseconds of the SLO with > 0.9 goodput.

Runs two ways: under pytest-benchmark (the ``test_`` entry point,
paper-style table on the terminal) and as a plain script --
``python benchmarks/bench_scale_spike.py --json`` emits the metric
dict that ``benchmarks/check_bench_regression.py`` gates CI on.
"""

import argparse
import json

from repro.rag import PAPER_CORPORA
from repro.scale import (
    AdmissionPolicy,
    AutoscalePolicy,
    ScaleConfig,
    ScalePolicy,
    ScaleSimulator,
)
from repro.serve import BatchPolicy, ServeConfig, spike_arrival_times

FLOOR_QPS = 250.0
SPIKE_MULTIPLIER = 10.0
SPIKE_START_S = 0.050
SPIKE_DURATION_S = 1.0
N_REQUESTS = 2048
#: GenerationModel prefill is ~501.6 ms, so this budgets ~10 ms of
#: queueing + retrieval + merge -- tight enough that an unabsorbed
#: spike shows up immediately as SLO burn.
SLO_S = 0.512

#: Spike-responder policy: jump straight to the 6-device ceiling
#: (scale_up_step=4 from the 2-device floor), re-evaluate every 5 ms,
#: and hold each verdict for 40 ms so the pool does not thrash while
#: the queue drains through the freshly warmed devices.
SPIKE_POLICY = ScalePolicy(
    autoscale=AutoscalePolicy(
        min_shards=2,
        max_shards=6,
        control_interval_s=0.005,
        scale_up_step=4,
        cooldown_s=0.040,
    ),
    admission=AdmissionPolicy(shed_queue_batches=4.0),
)


def _serve_config():
    return ServeConfig(
        spec=PAPER_CORPORA["10GB"],
        n_shards=2,
        batch=BatchPolicy(max_batch=8, max_wait_s=2e-3),
        qps=FLOOR_QPS,
        n_requests=N_REQUESTS,
        seed=0,
        slo_s=SLO_S,
    )


def _arrivals():
    return tuple(spike_arrival_times(
        FLOOR_QPS, N_REQUESTS, seed=0,
        spike_start_s=SPIKE_START_S,
        spike_duration_s=SPIKE_DURATION_S,
        spike_multiplier=SPIKE_MULTIPLIER))


def _run_pair():
    arrivals = _arrivals()
    static = ScaleSimulator(
        ScaleConfig(serve=_serve_config(), arrivals=arrivals)).run()
    elastic = ScaleSimulator(
        ScaleConfig(serve=_serve_config(), policy=SPIKE_POLICY,
                    arrivals=arrivals)).run()
    return static, elastic


def collect_metrics():
    """Deterministic scalar metrics keyed for the CI regression gate."""
    static, elastic = _run_pair()
    return {"scale_spike": {
        "static": {
            "throughput_qps": static.throughput_qps,
            "tti_p50_ms": static.tti.p50_s * 1e3,
            "tti_p99_ms": static.tti.p99_s * 1e3,
            "slo_attainment": static.slo_attainment,
        },
        "autoscale": {
            "throughput_qps": elastic.throughput_qps,
            "tti_p50_ms": elastic.tti.p50_s * 1e3,
            "tti_p99_ms": elastic.tti.p99_s * 1e3,
            "goodput": elastic.goodput,
            "slo_attainment": elastic.slo_attainment,
            "n_shed": elastic.n_shed,
            "n_attaches": elastic.n_attaches,
            "pool_max": elastic.pool_max,
            "warmup_total_s": elastic.warmup_total_s,
        },
    }}


def test_spike_static_vs_autoscale(benchmark, report):
    static, elastic = benchmark(_run_pair)

    report(f"10x spike: {FLOOR_QPS:g} qps floor -> "
           f"{FLOOR_QPS * SPIKE_MULTIPLIER:g} qps for "
           f"{SPIKE_DURATION_S:g} s, {N_REQUESTS} requests, "
           f"SLO {SLO_S * 1e3:g} ms")
    report(f"  {'pool':>10s} {'qps':>8s} {'p50 ms':>8s} {'p99 ms':>8s} "
           f"{'attain':>7s} {'goodput':>8s} {'shed':>5s}")
    report(f"  {'static-2':>10s} {static.throughput_qps:8.1f} "
           f"{static.tti.p50_s * 1e3:8.1f} {static.tti.p99_s * 1e3:8.1f} "
           f"{static.slo_attainment:7.3f} {'-':>8s} {'-':>5s}")
    report(f"  {'elastic-2:6':>10s} {elastic.throughput_qps:8.1f} "
           f"{elastic.tti.p50_s * 1e3:8.1f} "
           f"{elastic.tti.p99_s * 1e3:8.1f} "
           f"{elastic.slo_attainment:7.3f} {elastic.goodput:8.3f} "
           f"{elastic.n_shed:5d}")

    # The static pool cannot absorb the spike: the queue grows for the
    # whole spike window and the tail blows ~40% past the SLO.
    assert static.tti.p99_s > 1.3 * SLO_S
    assert static.slo_attainment < 0.2
    # Autoscale + shedding bounds the tail within a few ms of the SLO
    # and keeps goodput above 0.9 -- the acceptance criterion.
    assert elastic.tti.p99_s < SLO_S + 5e-3
    assert elastic.goodput > 0.9
    assert elastic.pool_max == SPIKE_POLICY.autoscale.max_shards
    # Shedding stays a bounded slice of offered load, not a collapse.
    assert elastic.n_shed < 0.1 * N_REQUESTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)
    metrics = collect_metrics()
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        for group, rows in metrics.items():
            print(group)
            for key, row in rows.items():
                print(f"  {key}: {row}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
