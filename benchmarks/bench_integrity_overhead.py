"""SDC sweep: detection coverage vs escape rate vs protection cost.

Drives the functional retrieval kernel under a
:class:`repro.integrity.MemoryFaultInjector` at several memory-upset
rates, with and without ABFT protection, and measures the three numbers
that justify the integrity layer:

* **Detection coverage** -- with protection on, every run's top-k must
  be bit-identical to the fault-free baseline (bounded recomputes are
  the allowed cost; an :class:`~repro.integrity.IntegrityError`
  escalation counts separately as a give-up, never as silent error).
* **Escape rate** -- the same injector with protection off measurably
  corrupts answers: mismatched top-k and lost recall.
* **Throughput cost** -- at the serving layer, the verify/scrub cycles
  charged through the latency model shave sustained qps; the sweep
  reports protected vs unprotected throughput on the golden serve
  deployment.

Same dual entry points as the other serving benchmarks: a
pytest-benchmark ``test_`` (marked ``integrity``, so it runs in the
slow CI job) and ``python benchmarks/bench_integrity_overhead.py
--json`` for the CI regression gate.
"""

import argparse
import dataclasses
import json

import pytest

from repro.apu.device import APUDevice
from repro.integrity import (
    IntegrityConfig,
    IntegrityError,
    MemoryFaultInjector,
    ProtectedAPURetriever,
)
from repro.rag.corpus import MiniCorpus
from repro.rag.retrieval import APURetriever
from repro.serve import ServingSimulator, golden_integrity_config

# Upsets strike uniformly across the 32K-element VR, so the corpus
# fills the whole vector -- with a short corpus most flips would land
# in masked padding and the unprotected arm would look spuriously safe.
UPSET_RATES = (0.0, 2e-3, 1e-2, 4e-2)
N_QUERIES = 6
CORPUS_CHUNKS = 32768
CORPUS_DIM = 8
CORPUS_SEED = 7
K = 5


def _recall(result, baseline):
    """Fraction of the fault-free top-k ids the run still returned."""
    want = {index for index, _ in baseline}
    got = {index for index, _ in result}
    return len(want & got) / len(want)


def _run_sweep():
    """{rate: row} over the upset-rate grid, protected and not."""
    corpus = MiniCorpus(n_chunks=CORPUS_CHUNKS, dim=CORPUS_DIM,
                        seed=CORPUS_SEED)
    queries = [corpus.sample_query() for _ in range(N_QUERIES)]
    plain = APURetriever(optimized=True)
    baselines = [plain.retrieve_with_scores(corpus, q, K) for q in queries]

    rows = {}
    for rate in UPSET_RATES:
        protected = ProtectedAPURetriever()
        row = {"injected_protected": 0, "injected_unprotected": 0,
               "detections": 0, "recomputes": 0, "protected_escapes": 0,
               "protected_giveups": 0, "unprotected_mismatches": 0,
               "unprotected_recall": 0.0}
        recalls = []
        for q, (query, baseline) in enumerate(zip(queries, baselines)):
            seed = 1000 * q + 1  # distinct, fixed draw stream per query

            device = APUDevice()
            injector = MemoryFaultInjector(upset_rate=rate, seed=seed)
            device.attach_sdc(injector)
            protected.stats.reset()
            try:
                result = protected.retrieve_with_scores(
                    corpus, query, K, device)
            except IntegrityError:
                row["protected_giveups"] += 1
            else:
                if result != baseline:
                    row["protected_escapes"] += 1
            row["injected_protected"] += injector.n_corruptions
            row["detections"] += protected.stats.n_detected
            row["recomputes"] += protected.stats.n_recomputes

            device = APUDevice()
            injector = MemoryFaultInjector(upset_rate=rate, seed=seed)
            device.attach_sdc(injector)
            result = plain.retrieve_with_scores(corpus, query, K, device)
            row["injected_unprotected"] += injector.n_corruptions
            if result != baseline:
                row["unprotected_mismatches"] += 1
            recalls.append(_recall(result, baseline))

        row["unprotected_recall"] = sum(recalls) / len(recalls)
        rows[rate] = row
    return rows


def _run_serve_pair():
    """Golden SDC deployment, protected vs unprotected reports."""
    protected_cfg = golden_integrity_config()
    unprotected_cfg = dataclasses.replace(protected_cfg,
                                          integrity=IntegrityConfig())
    return (ServingSimulator(protected_cfg).run(),
            ServingSimulator(unprotected_cfg).run())


def collect_metrics():
    """Deterministic scalar metrics keyed for the CI regression gate."""
    metrics = {}
    for rate, row in _run_sweep().items():
        metrics[f"rate{rate:g}"] = dict(row)
    protected, unprotected = _run_serve_pair()
    metrics["serve"] = {
        "protected_qps": protected.throughput_qps,
        "unprotected_qps": unprotected.throughput_qps,
        "protected_tti_p99_ms": protected.tti.p99_s * 1e3,
        "detected": protected.n_corruptions_detected,
        "recomputed": protected.n_recomputes,
        "protected_sdc": protected.n_sdc_escapes,
        "unprotected_sdc": unprotected.n_sdc_escapes,
        "protected_intact": protected.mean_intact_coverage,
        "unprotected_intact": unprotected.mean_intact_coverage,
    }
    return {"integrity_overhead": metrics}


@pytest.mark.integrity
def test_integrity_overhead_sweep(benchmark, report):
    rows = benchmark(_run_sweep)
    protected, unprotected = _run_serve_pair()

    report(f"SDC sweep: {CORPUS_CHUNKS}-chunk corpus, {N_QUERIES} queries "
           f"per upset rate, top-{K}")
    report(f"  {'rate':>8s} {'injected':>8s} {'detect':>6s} {'recomp':>6s} "
           f"{'escape':>6s} {'giveup':>6s} {'sdc':>4s} {'recall%':>8s}")
    for rate, row in rows.items():
        report(f"  {rate:8g} {row['injected_protected']:8d} "
               f"{row['detections']:6d} {row['recomputes']:6d} "
               f"{row['protected_escapes']:6d} {row['protected_giveups']:6d} "
               f"{row['unprotected_mismatches']:4d} "
               f"{row['unprotected_recall'] * 100:8.2f}")
    report(f"  serve: protected {protected.throughput_qps:.1f} qps vs "
           f"unprotected {unprotected.throughput_qps:.1f} qps; "
           f"intact {protected.mean_intact_coverage * 100:.2f}% vs "
           f"{unprotected.mean_intact_coverage * 100:.2f}%")

    clean = rows[0.0]
    # Zero upsets: nothing injected, nothing detected, nothing recomputed.
    assert clean["injected_protected"] == 0 and clean["detections"] == 0
    assert clean["recomputes"] == 0 and clean["unprotected_mismatches"] == 0
    assert clean["unprotected_recall"] == 1.0
    injected_any = False
    for rate, row in rows.items():
        # Protection never lets a corrupted answer through: every run is
        # bit-identical to the baseline or an explicit escalation.
        assert row["protected_escapes"] == 0, (rate, row)
        # Every injected corruption the checked state absorbed shows up.
        if row["injected_protected"]:
            assert row["detections"] >= 1, (rate, row)
        injected_any |= bool(row["injected_unprotected"])
    assert injected_any, "sweep rates too low to inject anything"
    top = rows[max(UPSET_RATES)]
    # The same fault pressure without protection measurably corrupts.
    assert top["unprotected_mismatches"] > 0
    assert top["unprotected_recall"] < 1.0
    # Serving layer: detection is complete and recovery keeps answers
    # intact, at a visible (charged-through) throughput cost.
    assert protected.n_sdc_escapes == 0 < unprotected.n_sdc_escapes
    assert protected.n_corruptions_detected > 0
    assert protected.mean_intact_coverage > unprotected.mean_intact_coverage
    assert protected.throughput_qps < unprotected.throughput_qps


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)
    metrics = collect_metrics()
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        for group, rows in metrics.items():
            print(group)
            for key, row in rows.items():
                print(f"  {key}: {row}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
