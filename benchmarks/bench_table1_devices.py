"""Table 1: device comparison (GSI APU vs Xeon 8280 vs A100 vs IPU)."""

from repro.core.params import DEVICE_SPECS


def test_table1_device_comparison(benchmark, report):
    def build():
        rows = []
        for spec in DEVICE_SPECS.values():
            rows.append((
                spec.name, spec.compute_units, spec.process_nm,
                spec.clock_hz / 1e9, spec.peak_tops,
                spec.on_chip_memory_mb, spec.on_chip_bandwidth_tbs,
                spec.tdp_w, spec.tops_per_watt,
            ))
        return rows

    rows = benchmark(build)
    report("Table 1: device comparison")
    header = (f"{'device':18s} {'compute units':18s} {'nm':>4s} {'GHz':>5s} "
              f"{'TOPS':>5s} {'MB':>6s} {'TB/s':>5s} {'TDP':>5s} {'TOPS/W':>7s}")
    report(header)
    for name, units, nm, ghz, tops, mb, tbs, tdp, tpw in rows:
        report(f"{name:18s} {units:18s} {nm:4d} {ghz:5.1f} {tops:5.0f} "
               f"{mb:6.1f} {tbs:5.0f} {tdp:5.0f} {tpw:7.2f}")
    apu = DEVICE_SPECS["gsi_apu"]
    assert all(apu.tops_per_watt >= s.tops_per_watt
               for s in DEVICE_SPECS.values())
