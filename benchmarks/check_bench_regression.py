"""CI benchmark-regression gate for the serving benchmarks.

Collects the deterministic metric dicts from ``bench_serve_scaling``
and ``bench_fault_degradation`` and enforces two properties against
the committed baseline (``benchmarks/BENCH_serve.json``):

* **Determinism** -- every metric collected twice in the same process
  must be *bit-identical* (the simulators are seeded discrete-event
  models; any drift is a bug, not noise).
* **No regression** -- throughput-like metrics (``*_qps``) must not
  fall more than ``--tolerance`` (default 10%) below the baseline, and
  latency-like metrics (``*_ms``) must not rise more than the same
  fraction above it.  Exact metrics (coverage, counts) must match the
  baseline bit-for-bit -- they are model outputs, not timings.

Refresh the baseline after a reviewed model change with::

    python benchmarks/check_bench_regression.py --update

which is what the CI ``update-bench`` label path runs.
"""

import argparse
import importlib
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
BASELINE_PATH = BENCH_DIR / "BENCH_serve.json"
BENCH_MODULES = ("bench_serve_scaling", "bench_fault_degradation")
#: Metric-name suffixes gated with relative tolerance (timing-like).
HIGHER_IS_BETTER = ("_qps",)
LOWER_IS_BETTER = ("_ms",)


def collect_all():
    """Metric dict {bench: {row: {metric: value}}} from every module."""
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    merged = {}
    for name in BENCH_MODULES:
        module = importlib.import_module(name)
        metrics = module.collect_metrics()
        overlap = set(metrics) & set(merged)
        if overlap:
            raise RuntimeError(f"duplicate metric groups: {sorted(overlap)}")
        merged.update(metrics)
    return merged


def flatten(metrics):
    """{"group/row/metric": value} for uniform comparison."""
    flat = {}
    for group, rows in metrics.items():
        for row, values in rows.items():
            for metric, value in values.items():
                flat[f"{group}/{row}/{metric}"] = value
    return flat


def check_determinism(first, second):
    """Bit-identical replay or a list of drifting keys."""
    drifted = [key for key in sorted(set(first) | set(second))
               if first.get(key) != second.get(key)]
    return [f"DETERMINISM DRIFT {key}: {first.get(key)!r} != "
            f"{second.get(key)!r}" for key in drifted]


def check_regressions(baseline, current, tolerance):
    failures = []
    for key in sorted(baseline):
        base = baseline[key]
        if key not in current:
            failures.append(f"MISSING metric {key} (baseline {base!r})")
            continue
        value = current[key]
        if key.endswith(HIGHER_IS_BETTER):
            floor = base * (1.0 - tolerance)
            if value < floor:
                failures.append(
                    f"REGRESSION {key}: {value:.3f} < {floor:.3f} "
                    f"(baseline {base:.3f}, tolerance {tolerance:.0%})")
        elif key.endswith(LOWER_IS_BETTER):
            ceiling = base * (1.0 + tolerance)
            if value > ceiling:
                failures.append(
                    f"REGRESSION {key}: {value:.3f} > {ceiling:.3f} "
                    f"(baseline {base:.3f}, tolerance {tolerance:.0%})")
        elif value != base:
            failures.append(
                f"EXACT-METRIC DRIFT {key}: {value!r} != baseline {base!r}")
    for key in sorted(set(current) - set(baseline)):
        failures.append(
            f"NEW metric {key} not in baseline (run with --update)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from the "
                             "current metrics")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance for *_qps / *_ms metrics")
    args = parser.parse_args(argv)

    first = flatten(collect_all())
    second = flatten(collect_all())
    failures = check_determinism(first, second)
    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)} determinism failure(s)")
        return 1

    if args.update:
        args.baseline.write_text(
            json.dumps(first, indent=2, sort_keys=True) + "\n")
        print(f"baseline refreshed: {args.baseline} "
              f"({len(first)} metrics)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update")
        return 1
    baseline = json.loads(args.baseline.read_text())
    failures = check_regressions(baseline, first, args.tolerance)
    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)} benchmark gate failure(s)")
        return 1
    print(f"benchmark gate OK: {len(baseline)} metrics within "
          f"{args.tolerance:.0%} of baseline, replay bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
