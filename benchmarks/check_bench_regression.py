"""CI benchmark-regression gate for the serving benchmarks.

Collects the deterministic metric dicts from the registered benchmark
suites and enforces two properties against each suite's committed
baseline:

* **Determinism** -- every metric collected twice in the same process
  must be *bit-identical* (the simulators are seeded discrete-event
  models; any drift is a bug, not noise).
* **No regression** -- throughput-like metrics (``*_qps``) must not
  fall more than ``--tolerance`` (default 10%) below the baseline, and
  latency-like metrics (``*_ms``) must not rise more than the same
  fraction above it.  Exact metrics (coverage, counts) must match the
  baseline bit-for-bit -- they are model outputs, not timings.

Suites (``--suite`` restricts to one; default is all):

* ``serve`` -- ``BENCH_serve.json`` from ``bench_serve_scaling`` +
  ``bench_fault_degradation``.
* ``integrity`` -- ``BENCH_integrity.json`` from
  ``bench_integrity_overhead`` (the SDC sweep).
* ``telemetry`` -- ``BENCH_telemetry.json`` from
  ``bench_telemetry_overhead`` (causal-tracing collection cost).
* ``simcore`` -- ``BENCH_simcore.json`` from ``bench_simcore_events``
  (the vectorized core's million-query event rate).

Wall-clock-derived suffixes get special treatment because they are
measured, not simulated: ``*_overhead_frac`` is held under an absolute
ceiling (0.15) rather than compared to the baseline, ``*_speedup_x``
is held above an absolute floor (100: the vectorized core's headline
claim), ``*_events_per_s`` is gated relative to the baseline like a
throughput but with a widened tolerance (3x the default, so 30%)
because sub-100ms wall timings on shared runners jitter past 10%
even with best-of-N sampling, and ``*_wall_ms`` is informational
only.  All are exempt from the bit-identical-replay determinism
check.  The *hard* perf gates for the vectorized core are therefore
``_speedup_x`` -- ambient contention slows both engines, so the ratio
is stable where the absolute rates are not -- and ``bit_identical``.

Refresh a baseline after a reviewed model change with::

    python benchmarks/check_bench_regression.py --update

which is what the CI ``update-bench`` label path runs.
"""

import argparse
import importlib
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
#: suite name -> (baseline file, benchmark modules feeding it)
SUITES = {
    "serve": ("BENCH_serve.json",
              ("bench_serve_scaling", "bench_fault_degradation")),
    "integrity": ("BENCH_integrity.json",
                  ("bench_integrity_overhead",)),
    "telemetry": ("BENCH_telemetry.json",
                  ("bench_telemetry_overhead",)),
    "simcore": ("BENCH_simcore.json",
                ("bench_simcore_events",)),
    "scale": ("BENCH_scale.json",
              ("bench_scale_spike",)),
}
#: Metric-name suffixes gated with relative tolerance (timing-like).
HIGHER_IS_BETTER = ("_qps", "_events_per_s")
LOWER_IS_BETTER = ("_ms",)
#: Wall-clock measurements: nondeterministic by nature, so exempt from
#: the replay check.  ``*_overhead_frac`` is gated against an absolute
#: ceiling, ``*_speedup_x`` above an absolute floor; ``*_wall_ms`` is
#: recorded for humans but never gated; ``*_events_per_s`` is relative-
#: gated above but still wall-clock-derived, hence replay-exempt.
ABSOLUTE_CEILINGS = {"_overhead_frac": 0.15}
ABSOLUTE_FLOORS = {"_speedup_x": 100.0}
INFORMATIONAL = ("_wall_ms",)
#: Wall-clock *rates* keep a relative gate but widen the tolerance:
#: the measured runs are tens of milliseconds, so runner contention
#: swings them further than deterministic model outputs ever move.
WALL_CLOCK_RATE = ("_events_per_s",)
WALL_CLOCK_RATE_MULT = 3.0
WALL_CLOCK = tuple(ABSOLUTE_CEILINGS) + tuple(ABSOLUTE_FLOORS) \
    + INFORMATIONAL + ("_events_per_s",)


def collect_suite(modules):
    """Metric dict {bench: {row: {metric: value}}} from the modules."""
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    merged = {}
    for name in modules:
        module = importlib.import_module(name)
        metrics = module.collect_metrics()
        overlap = set(metrics) & set(merged)
        if overlap:
            raise RuntimeError(f"duplicate metric groups: {sorted(overlap)}")
        merged.update(metrics)
    return merged


def flatten(metrics):
    """{"group/row/metric": value} for uniform comparison."""
    flat = {}
    for group, rows in metrics.items():
        for row, values in rows.items():
            for metric, value in values.items():
                flat[f"{group}/{row}/{metric}"] = value
    return flat


def check_determinism(first, second):
    """Bit-identical replay or a list of drifting keys."""
    drifted = [key for key in sorted(set(first) | set(second))
               if not key.endswith(WALL_CLOCK)
               and first.get(key) != second.get(key)]
    return [f"DETERMINISM DRIFT {key}: {first.get(key)!r} != "
            f"{second.get(key)!r}" for key in drifted]


def check_regressions(baseline, current, tolerance):
    failures = []
    for key in sorted(baseline):
        base = baseline[key]
        if key not in current:
            failures.append(f"MISSING metric {key} (baseline {base!r})")
            continue
        value = current[key]
        ceiling_suffix = next((s for s in ABSOLUTE_CEILINGS
                               if key.endswith(s)), None)
        floor_suffix = next((s for s in ABSOLUTE_FLOORS
                             if key.endswith(s)), None)
        if ceiling_suffix is not None:
            ceiling = ABSOLUTE_CEILINGS[ceiling_suffix]
            if value > ceiling:
                failures.append(
                    f"REGRESSION {key}: {value:.3f} > absolute ceiling "
                    f"{ceiling:.3f}")
        elif floor_suffix is not None:
            floor = ABSOLUTE_FLOORS[floor_suffix]
            if value < floor:
                failures.append(
                    f"REGRESSION {key}: {value:.3f} < absolute floor "
                    f"{floor:.3f}")
        elif key.endswith(INFORMATIONAL):
            pass  # wall-clock context for humans, never gated
        elif key.endswith(HIGHER_IS_BETTER):
            tol = tolerance
            if key.endswith(WALL_CLOCK_RATE):
                tol = tolerance * WALL_CLOCK_RATE_MULT
            floor = base * (1.0 - tol)
            if value < floor:
                failures.append(
                    f"REGRESSION {key}: {value:.3f} < {floor:.3f} "
                    f"(baseline {base:.3f}, tolerance {tol:.0%})")
        elif key.endswith(LOWER_IS_BETTER):
            ceiling = base * (1.0 + tolerance)
            if value > ceiling:
                failures.append(
                    f"REGRESSION {key}: {value:.3f} > {ceiling:.3f} "
                    f"(baseline {base:.3f}, tolerance {tolerance:.0%})")
        elif value != base:
            failures.append(
                f"EXACT-METRIC DRIFT {key}: {value!r} != baseline {base!r}")
    for key in sorted(set(current) - set(baseline)):
        failures.append(
            f"NEW metric {key} not in baseline (run with --update)")
    return failures


def run_suite(suite, args) -> int:
    """Gate (or refresh) one suite; returns a process exit code."""
    baseline_name, modules = SUITES[suite]
    baseline_path = BENCH_DIR / baseline_name

    first = flatten(collect_suite(modules))
    second = flatten(collect_suite(modules))
    failures = check_determinism(first, second)
    if failures:
        print("\n".join(failures))
        print(f"\n[{suite}] {len(failures)} determinism failure(s)")
        return 1

    if args.update:
        baseline_path.write_text(
            json.dumps(first, indent=2, sort_keys=True) + "\n")
        print(f"[{suite}] baseline refreshed: {baseline_path} "
              f"({len(first)} metrics)")
        return 0

    if not baseline_path.exists():
        print(f"[{suite}] no baseline at {baseline_path}; "
              f"run with --update")
        return 1
    baseline = json.loads(baseline_path.read_text())
    failures = check_regressions(baseline, first, args.tolerance)
    if failures:
        print("\n".join(failures))
        print(f"\n[{suite}] {len(failures)} benchmark gate failure(s)")
        return 1
    print(f"[{suite}] benchmark gate OK: {len(baseline)} metrics within "
          f"{args.tolerance:.0%} of baseline, replay bit-identical")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline(s) from the "
                             "current metrics")
    parser.add_argument("--suite", choices=sorted(SUITES), default=None,
                        help="gate only one suite (default: all)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance for *_qps / *_ms metrics")
    args = parser.parse_args(argv)

    suites = [args.suite] if args.suite else sorted(SUITES)
    return max(run_suite(suite, args) for suite in suites)


if __name__ == "__main__":
    raise SystemExit(main())
