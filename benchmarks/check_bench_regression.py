"""CI benchmark-regression gate for the serving benchmarks.

Collects the deterministic metric dicts from the registered benchmark
suites and enforces two properties against each suite's committed
baseline:

* **Determinism** -- every metric collected twice in the same process
  must be *bit-identical* (the simulators are seeded discrete-event
  models; any drift is a bug, not noise).
* **No regression** -- throughput-like metrics (``*_qps``) must not
  fall more than ``--tolerance`` (default 10%) below the baseline, and
  latency-like metrics (``*_ms``) must not rise more than the same
  fraction above it.  Exact metrics (coverage, counts) must match the
  baseline bit-for-bit -- they are model outputs, not timings.

Suites (``--suite`` restricts to one; default is all).  A suite is a
list of ``(baseline file, benchmark modules)`` pairs, each gated
independently so a new benchmark lands with its own baseline file
instead of invalidating an existing one:

* ``serve`` -- ``BENCH_serve.json`` from ``bench_serve_scaling`` +
  ``bench_fault_degradation``.
* ``integrity`` -- ``BENCH_integrity.json`` from
  ``bench_integrity_overhead`` (the SDC sweep).
* ``telemetry`` -- ``BENCH_telemetry.json`` from
  ``bench_telemetry_overhead`` (causal-tracing collection cost).
* ``simcore`` -- ``BENCH_simcore.json`` from ``bench_simcore_events``
  (the vectorized core's million-query event rate).
* ``scale`` -- ``BENCH_scale.json`` from ``bench_scale_spike`` (the
  10x load spike) and ``BENCH_scale_faults.json`` from
  ``bench_scale_faults`` (spike + shard deaths + SDC upsets).
* ``ecc`` -- ``BENCH_ecc.json`` from ``bench_ecc_dse`` (the
  protection-tier capability grid, charged decode costs, and the
  clock design-space sweep).
* ``monitor`` -- ``BENCH_monitor.json`` from ``bench_monitor_overhead``
  (the streaming-sampler build cost on top of a telemetry run).

When ``$GITHUB_STEP_SUMMARY`` is set (any GitHub Actions job), every
gated baseline also appends a per-metric delta table (baseline vs
current, % change) to the job summary, so reviewers see *how far*
each metric moved, not just pass/fail.

Wall-clock-derived suffixes get special treatment because they are
measured, not simulated: ``*_overhead_frac`` is held under an absolute
ceiling (0.15) rather than compared to the baseline, ``*_speedup_x``
is held above an absolute floor (100: the vectorized core's headline
claim), ``*_events_per_s`` is gated relative to the baseline like a
throughput but with a widened tolerance (3x the default, so 30%)
because sub-100ms wall timings on shared runners jitter past 10%
even with best-of-N sampling, and ``*_wall_ms`` is informational
only.  All are exempt from the bit-identical-replay determinism
check.  The *hard* perf gates for the vectorized core are therefore
``_speedup_x`` -- ambient contention slows both engines, so the ratio
is stable where the absolute rates are not -- and ``bit_identical``.

Refresh a baseline after a reviewed model change with::

    python benchmarks/check_bench_regression.py --update

which is what the CI ``update-bench`` label path runs.
"""

import argparse
import importlib
import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
_SRC_DIR = BENCH_DIR.parent / "src"
if str(_SRC_DIR) not in sys.path:
    sys.path.insert(0, str(_SRC_DIR))
#: suite name -> ((baseline file, benchmark modules feeding it), ...)
SUITES = {
    "serve": (("BENCH_serve.json",
               ("bench_serve_scaling", "bench_fault_degradation")),),
    "integrity": (("BENCH_integrity.json",
                   ("bench_integrity_overhead",)),),
    "telemetry": (("BENCH_telemetry.json",
                   ("bench_telemetry_overhead",)),),
    "simcore": (("BENCH_simcore.json",
                 ("bench_simcore_events",)),),
    "scale": (("BENCH_scale.json",
               ("bench_scale_spike",)),
              ("BENCH_scale_faults.json",
               ("bench_scale_faults",))),
    "ecc": (("BENCH_ecc.json",
             ("bench_ecc_dse",)),),
    "monitor": (("BENCH_monitor.json",
                 ("bench_monitor_overhead",)),),
}
# The tolerance policy (suffix classes, absolute ceilings/floors, the
# gate itself) lives in ``repro.monitor.tolerance`` so the cross-run
# differ (``repro diff``) reproduces this gate's verdicts exactly.
from repro.monitor.tolerance import WALL_CLOCK, gate_failures  # noqa: E402


def collect_suite(modules):
    """Metric dict {bench: {row: {metric: value}}} from the modules."""
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    merged = {}
    for name in modules:
        module = importlib.import_module(name)
        metrics = module.collect_metrics()
        overlap = set(metrics) & set(merged)
        if overlap:
            raise RuntimeError(f"duplicate metric groups: {sorted(overlap)}")
        merged.update(metrics)
    return merged


def flatten(metrics):
    """{"group/row/metric": value} for uniform comparison."""
    flat = {}
    for group, rows in metrics.items():
        for row, values in rows.items():
            for metric, value in values.items():
                flat[f"{group}/{row}/{metric}"] = value
    return flat


def check_determinism(first, second):
    """Bit-identical replay or a list of drifting keys."""
    drifted = [key for key in sorted(set(first) | set(second))
               if not key.endswith(WALL_CLOCK)
               and first.get(key) != second.get(key)]
    return [f"DETERMINISM DRIFT {key}: {first.get(key)!r} != "
            f"{second.get(key)!r}" for key in drifted]


def check_regressions(baseline, current, tolerance):
    """The shared gate from ``repro.monitor.tolerance`` (same verdicts)."""
    return gate_failures(baseline, current, tolerance)


def delta_table(title, baseline, current):
    """GitHub-flavored markdown delta table for one gated baseline."""
    lines = [f"### Benchmark deltas: `{title}`", "",
             "| metric | baseline | current | change |",
             "| --- | ---: | ---: | ---: |"]
    for key in sorted(set(baseline) | set(current)):
        base = baseline.get(key)
        value = current.get(key)
        if base is None:
            change = "new"
        elif value is None:
            change = "missing"
        elif base == value:
            change = "="
        elif isinstance(base, (int, float)) and base != 0:
            change = f"{(value - base) / base:+.2%}"
        else:
            change = "changed"
        fmt = lambda v: "--" if v is None else (
            f"{v:.4g}" if isinstance(v, float) else str(v))
        lines.append(f"| `{key}` | {fmt(base)} | {fmt(value)} | {change} |")
    lines.append("")
    return "\n".join(lines) + "\n"


def write_step_summary(text):
    """Append to the GitHub Actions job summary when running in CI."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as handle:
        handle.write(text)


def run_baseline(suite, baseline_name, modules, args) -> int:
    """Gate (or refresh) one baseline file; returns an exit code."""
    baseline_path = BENCH_DIR / baseline_name

    first = flatten(collect_suite(modules))
    second = flatten(collect_suite(modules))
    failures = check_determinism(first, second)
    if failures:
        print("\n".join(failures))
        print(f"\n[{suite}] {len(failures)} determinism failure(s)")
        return 1

    if args.update:
        baseline_path.write_text(
            json.dumps(first, indent=2, sort_keys=True) + "\n")
        print(f"[{suite}] baseline refreshed: {baseline_path} "
              f"({len(first)} metrics)")
        return 0

    if not baseline_path.exists():
        print(f"[{suite}] no baseline at {baseline_path}; "
              f"run with --update")
        return 1
    baseline = json.loads(baseline_path.read_text())
    write_step_summary(delta_table(
        f"{suite}: {baseline_name}", baseline, first))
    failures = check_regressions(baseline, first, args.tolerance)
    if failures:
        print("\n".join(failures))
        print(f"\n[{suite}] {len(failures)} benchmark gate failure(s) "
              f"against {baseline_name}")
        return 1
    print(f"[{suite}] benchmark gate OK: {len(baseline)} metrics within "
          f"{args.tolerance:.0%} of {baseline_name}, replay bit-identical")
    return 0


def run_suite(suite, args) -> int:
    """Gate (or refresh) every baseline in one suite."""
    return max(run_baseline(suite, baseline_name, modules, args)
               for baseline_name, modules in SUITES[suite])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline(s) from the "
                             "current metrics")
    parser.add_argument("--suite", choices=sorted(SUITES), default=None,
                        help="gate only one suite (default: all)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance for *_qps / *_ms metrics")
    args = parser.parse_args(argv)

    suites = [args.suite] if args.suite else sorted(SUITES)
    return max(run_suite(suite, args) for suite in suites)


if __name__ == "__main__":
    raise SystemExit(main())
