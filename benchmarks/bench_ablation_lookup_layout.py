"""Ablation: lookup-table size vs data layout (the Fig. 11 mechanism).

Sweeps broadcast-window shapes and reports the lookup table each layout
requires plus the resulting Table 4 lookup latency -- the quantity the
broadcast-friendly transform minimizes.
"""

from repro.core.params import DEFAULT_PARAMS
from repro.opt.layout import Layout, broadcast_friendly, lookup_table_entries


def test_ablation_lookup_table_sizes(benchmark, report):
    shapes = [(3, 6), (8, 8), (32, 64), (32, 2048), (128, 512)]

    def run():
        rows = []
        for rows_n, cols_n in shapes:
            rm = Layout.row_major((rows_n, cols_n))
            bf = broadcast_friendly(rm, window_dim=0)
            rm_table = lookup_table_entries(rm, 0, rows_n, sweep_dim=1)
            bf_table = lookup_table_entries(bf, 1, rows_n, sweep_dim=0)
            rows.append((rows_n, cols_n, rm_table, bf_table))
        return rows

    rows = benchmark(run)
    lookup = DEFAULT_PARAMS.movement.lookup
    report("Ablation: lookup-table size, row-major vs broadcast-friendly")
    report(f"  {'window x sweep':>15s} {'row-major':>10s} {'bf':>6s} "
           f"{'rm cycles':>10s} {'bf cycles':>10s} {'saving':>8s}")
    for rows_n, cols_n, rm_table, bf_table in rows:
        rm_cycles, bf_cycles = lookup(rm_table), lookup(bf_table)
        report(f"  {f'{rows_n} x {cols_n}':>15s} {rm_table:10d} "
               f"{bf_table:6d} {rm_cycles:10.0f} {bf_cycles:10.0f} "
               f"{rm_cycles / bf_cycles:7.1f}x")

    # Fig. 11's 18 -> 3 case plus the general guarantee.
    assert rows[0][2:] == (18, 3)
    for rows_n, _, rm_table, bf_table in rows:
        assert bf_table == rows_n
        assert bf_table <= rm_table
