"""Faults-under-spike benchmark: static reroute vs fault-aware failover.

The fault story for the elastic control plane: a 50 GB corpus served by
8 devices (capacity ~1300 qps at batch 8 -- slice scan dominates at
this corpus scale, so capacity grows with pool size) takes a sustained
6x arrival spike to 1500 qps while two of the eight devices die
permanently mid-spike and two survivors see transient SDC upsets
(caught and healed by ABFT on both sides, so the integrity tax is paid
equally).  The static pool's only recourse is PR 3's reroute: requests
lose the dead shards' coverage, retries and the ABFT tax eat into an
already-insufficient capacity, and the tail runs ~35% past the SLO
with attainment in the low twenties.  The fault-aware elastic pool
treats each death as violation pressure: the controller answers with a
cooldown-bypassing failover attach, the replacement warms its slice
through the simulated HBM, and spike pressure independently grows the
pool toward its 12-slot ceiling -- goodput and p99 strictly dominate
the static run.

Runs two ways: under pytest-benchmark (the ``test_`` entry point,
paper-style table on the terminal) and as a plain script --
``python benchmarks/bench_scale_faults.py --json`` emits the metric
dict that ``benchmarks/check_bench_regression.py`` gates CI on.
"""

import argparse
import json

from repro.faults import BitFlipFault, FaultPlan, OutageFault
from repro.integrity import IntegrityConfig
from repro.rag import PAPER_CORPORA
from repro.scale import (
    AdmissionPolicy,
    AutoscalePolicy,
    ScaleConfig,
    ScalePolicy,
    ScaleSimulator,
)
from repro.serve import BatchPolicy, RetryPolicy, ServeConfig, \
    spike_arrival_times

FLOOR_QPS = 250.0
SPIKE_MULTIPLIER = 6.0
SPIKE_START_S = 0.050
SPIKE_DURATION_S = 1.2
N_REQUESTS = 2048
N_SHARDS = 8
CORPUS = "50GB"
SLO_S = 0.512

#: Two permanent deaths mid-spike (the 2-of-8 failure story) plus a
#: burst of transient VR upsets on a survivor -- detected and healed by
#: ABFT, so the integrity machinery is exercised without a third death.
FAULTS = FaultPlan(
    outages=(
        OutageFault(shard_id=2, start_s=0.150),
        OutageFault(shard_id=5, start_s=0.300),
    ),
    bit_flips=(
        BitFlipFault(shard_id=1, t_s=0.200, target="vr", vr=3, bit=11,
                     element=513),
        BitFlipFault(shard_id=1, t_s=0.450, target="vr", vr=7, bit=2,
                     element=64),
        BitFlipFault(shard_id=6, t_s=0.700, target="vr", vr=5, bit=9,
                     element=2048),
    ),
)
RETRY = RetryPolicy(timeout_s=0.012, max_retries=2,
                    backoff_base_s=1e-3, backoff_cap_s=8e-3)
INTEGRITY = IntegrityConfig(enabled=True, max_recomputes=3,
                            scrub_interval_s=0.050, scrub_vrs=8)

#: Failover-responder policy: the pool floor is the full 8-device
#: deployment, with 4 spare slots -- enough that the spike can grow
#: the pool AND both deaths still find a free replacement slot (a dead
#: slot is never reused, so failover headroom must outlive the spike's
#: own scale-up).
FAILOVER_POLICY = ScalePolicy(
    autoscale=AutoscalePolicy(
        min_shards=8,
        max_shards=12,
        control_interval_s=0.005,
        scale_up_step=2,
        cooldown_s=0.040,
    ),
    admission=AdmissionPolicy(shed_queue_batches=4.0),
)


def _serve_config():
    return ServeConfig(
        spec=PAPER_CORPORA[CORPUS],
        n_shards=N_SHARDS,
        batch=BatchPolicy(max_batch=8, max_wait_s=2e-3),
        qps=FLOOR_QPS,
        n_requests=N_REQUESTS,
        seed=0,
        slo_s=SLO_S,
        faults=FAULTS,
        retry=RETRY,
        integrity=INTEGRITY,
    )


def _arrivals():
    return tuple(spike_arrival_times(
        FLOOR_QPS, N_REQUESTS, seed=0,
        spike_start_s=SPIKE_START_S,
        spike_duration_s=SPIKE_DURATION_S,
        spike_multiplier=SPIKE_MULTIPLIER))


def _run_pair():
    arrivals = _arrivals()
    static = ScaleSimulator(
        ScaleConfig(serve=_serve_config(), arrivals=arrivals)).run()
    elastic = ScaleSimulator(
        ScaleConfig(serve=_serve_config(), policy=FAILOVER_POLICY,
                    arrivals=arrivals)).run()
    return static, elastic


def collect_metrics():
    """Deterministic scalar metrics keyed for the CI regression gate."""
    static, elastic = _run_pair()
    return {"scale_faults": {
        "static": {
            "throughput_qps": static.throughput_qps,
            "tti_p50_ms": static.tti.p50_s * 1e3,
            "tti_p99_ms": static.tti.p99_s * 1e3,
            # The static run completes every request (reroute), so its
            # within-SLO-of-offered goodput *is* its attainment.
            "goodput": static.slo_attainment,
            "n_shard_failures": static.n_shard_failures,
            "degraded_requests": static.degraded_requests,
            "n_corruptions_detected": static.n_corruptions_detected,
            "n_sdc_escapes": static.n_sdc_escapes,
        },
        "failover": {
            "throughput_qps": elastic.throughput_qps,
            "tti_p50_ms": elastic.tti.p50_s * 1e3,
            "tti_p99_ms": elastic.tti.p99_s * 1e3,
            "goodput": elastic.goodput,
            "slo_attainment": elastic.slo_attainment,
            "n_shed": elastic.n_shed,
            "n_shard_failures": elastic.n_shard_failures,
            "n_failovers": elastic.n_failovers,
            "degraded_requests": elastic.degraded_requests,
            "n_corruptions_detected": elastic.n_corruptions_detected,
            "n_sdc_escapes": elastic.n_sdc_escapes,
            "pool_max": elastic.pool_max,
        },
    }}


def test_faults_static_vs_failover(benchmark, report):
    static, elastic = benchmark(_run_pair)

    report(f"{SPIKE_MULTIPLIER:g}x spike + 2-of-{N_SHARDS} deaths + SDC: "
           f"{FLOOR_QPS:g} qps floor -> "
           f"{FLOOR_QPS * SPIKE_MULTIPLIER:g} qps for "
           f"{SPIKE_DURATION_S:g} s, {N_REQUESTS} requests, "
           f"SLO {SLO_S * 1e3:g} ms")
    report(f"  {'pool':>12s} {'qps':>8s} {'p50 ms':>8s} {'p99 ms':>8s} "
           f"{'goodput':>8s} {'dead':>5s} {'f/over':>6s} {'shed':>5s}")
    report(f"  {'static-8':>12s} {static.throughput_qps:8.1f} "
           f"{static.tti.p50_s * 1e3:8.1f} {static.tti.p99_s * 1e3:8.1f} "
           f"{static.slo_attainment:8.3f} {static.n_shard_failures:5d} "
           f"{'-':>6s} {'-':>5s}")
    report(f"  {'elastic-8:12':>12s} {elastic.throughput_qps:8.1f} "
           f"{elastic.tti.p50_s * 1e3:8.1f} "
           f"{elastic.tti.p99_s * 1e3:8.1f} "
           f"{elastic.goodput:8.3f} {elastic.n_shard_failures:5d} "
           f"{elastic.n_failovers:6d} {elastic.n_shed:5d}")

    # Both runs see the same deaths and the same (healed) upsets.
    assert static.n_shard_failures == 2
    assert elastic.n_shard_failures == 2
    assert static.n_sdc_escapes == elastic.n_sdc_escapes == 0
    # The controller answered the deaths with replacement attaches.
    assert elastic.n_failovers >= 1
    # The acceptance criterion: fault-aware elasticity strictly
    # dominates the rerouting static pool on both axes.
    assert elastic.goodput > static.slo_attainment
    assert elastic.tti.p99_s < static.tti.p99_s
    # And not merely relatively: the static tail blows ~35% past the
    # SLO while failover holds p99 within a few ms of it.
    assert static.tti.p99_s > 1.3 * SLO_S
    assert elastic.tti.p99_s < SLO_S + 5e-3
    assert elastic.goodput > 0.9


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)
    metrics = collect_metrics()
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        for group, rows in metrics.items():
            print(group)
            for key, row in rows.items():
                print(f"  {key}: {row}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
