"""Ablation: multi-query retrieval batching (extension).

The single-query latencies of Table 8 leave the shared embedding
stream idle between queries; batching amortizes it.  This bench sweeps
the batch size at each corpus scale and reports per-query latency and
sustained throughput.
"""

from repro.rag import BatchedAPURetrieval, PAPER_CORPORA


def test_ablation_batching(benchmark, report):
    model = BatchedAPURetrieval()
    batch_sizes = (1, 4, 16, 64)

    def run():
        return {
            label: model.throughput_curve(spec, batch_sizes)
            for label, spec in PAPER_CORPORA.items()
        }

    curves = benchmark(run)
    report("Ablation: batched retrieval (per-query ms / qps)")
    report("  " + f"{'corpus':8s}" + "".join(
        f"{f'batch {b}':>18s}" for b in batch_sizes))
    for label, curve in curves.items():
        cells = "".join(
            f"{point.per_query_seconds * 1e3:8.2f}/{point.queries_per_second:7.1f}"
            f"  "
            for point in curve
        )
        report(f"  {label:8s}{cells}")

    for curve in curves.values():
        per_query = [point.per_query_seconds for point in curve]
        assert per_query == sorted(per_query, reverse=True)
        # Amortization buys at least 2x per-query latency at batch 64.
        assert per_query[0] / per_query[-1] > 2.0
