"""Graceful-degradation sweep: outage fraction vs serving quality.

Kills ``0 .. N/2`` of the 8 shard devices mid-run (hard outage at a
fixed instant) and measures what survives under each failover policy:
sustained throughput, p99 time-to-interactive, and the exact corpus
coverage (= expected recall@k under round-robin placement) of the
answers.  ``reroute`` trades latency for coverage -- survivors re-scan
the orphaned slices, so post-death requests regain full recall at
higher per-batch cost; ``degraded`` trades coverage for latency -- the
dead slices stay dark and every later answer is a partial top-k.

Same dual entry points as ``bench_serve_scaling``: a pytest-benchmark
``test_`` and ``python benchmarks/bench_fault_degradation.py --json``
for the CI regression gate.
"""

import argparse
import json

from repro.faults import FaultPlan, OutageFault
from repro.rag import PAPER_CORPORA
from repro.serve import BatchPolicy, RetryPolicy, ServeConfig, \
    ServingSimulator

N_SHARDS = 8
DEAD_SHARD_COUNTS = (0, 1, 2, 4)
FAILOVER_MODES = ("reroute", "degraded")
OFFERED_QPS = 1200.0
N_REQUESTS = 256
OUTAGE_AT_S = 0.05  # mid-run: arrivals span ~0.21 s at 1200 qps


def _config(n_dead: int, failover: str) -> ServeConfig:
    outages = tuple(OutageFault(shard_id=shard_id, start_s=OUTAGE_AT_S)
                    for shard_id in range(n_dead))
    return ServeConfig(
        spec=PAPER_CORPORA["200GB"],
        n_shards=N_SHARDS,
        batch=BatchPolicy(max_batch=16, max_wait_s=2e-3),
        qps=OFFERED_QPS,
        n_requests=N_REQUESTS,
        seed=0,
        slo_s=5.0,
        faults=FaultPlan(outages=outages),
        retry=RetryPolicy(timeout_s=0.05, max_retries=2,
                          backoff_base_s=1e-3, backoff_cap_s=8e-3),
        failover=failover,
    )


def _run_sweep():
    reports = {}
    for failover in FAILOVER_MODES:
        for n_dead in DEAD_SHARD_COUNTS:
            reports[(failover, n_dead)] = ServingSimulator(
                _config(n_dead, failover)).run()
    return reports


def collect_metrics():
    """Deterministic scalar metrics keyed for the CI regression gate."""
    metrics = {}
    for (failover, n_dead), rep in _run_sweep().items():
        metrics[f"{failover}/dead{n_dead}"] = {
            "throughput_qps": rep.throughput_qps,
            "tti_p99_ms": rep.tti.p99_s * 1e3,
            "mean_coverage": rep.mean_coverage,
            "min_coverage": rep.min_coverage,
            "degraded_requests": rep.degraded_requests,
            "n_shard_failures": rep.n_shard_failures,
        }
    return {"fault_degradation": metrics}


def test_fault_degradation_sweep(benchmark, report):
    reports = benchmark(_run_sweep)

    report(f"Fault degradation: 200GB corpus, {N_SHARDS} shards, "
           f"outage at {OUTAGE_AT_S * 1e3:g} ms, {OFFERED_QPS:g} qps "
           f"offered")
    report(f"  {'mode':>9s} {'dead':>4s} {'qps':>8s} {'p99 ms':>9s} "
           f"{'cover%':>7s} {'min%':>6s} {'degraded':>8s}")
    for (failover, n_dead), rep in reports.items():
        report(f"  {failover:>9s} {n_dead:4d} {rep.throughput_qps:8.1f} "
               f"{rep.tti.p99_s * 1e3:9.2f} {rep.mean_coverage * 100:7.2f} "
               f"{rep.min_coverage * 100:6.2f} {rep.degraded_requests:8d}")

    fault_free = {f: reports[(f, 0)] for f in FAILOVER_MODES}
    for failover, rep in fault_free.items():
        # Zero dead shards: full coverage, nothing degraded, and both
        # modes identical to each other (the policy never engages).
        assert rep.mean_coverage == 1.0 and rep.degraded_requests == 0
        assert rep.throughput_qps == fault_free["reroute"].throughput_qps
    for failover in FAILOVER_MODES:
        covers = [reports[(failover, n)].mean_coverage
                  for n in DEAD_SHARD_COUNTS]
        # Coverage decays monotonically with the outage fraction...
        assert all(b < a or (a == b == 1.0)
                   for a, b in zip(covers, covers[1:])), (failover, covers)
        for n_dead in DEAD_SHARD_COUNTS:
            rep = reports[(failover, n_dead)]
            # ...but the deployment never stops answering.
            assert rep.n_completed == N_REQUESTS
            assert rep.n_shard_failures == n_dead
            # Degraded mode can never beat the live-shard fraction.
            if failover == "degraded" and n_dead:
                assert rep.mean_coverage < 1.0
                assert rep.min_coverage >= 0.0
    for n_dead in DEAD_SHARD_COUNTS[1:]:
        # Reroute recovers coverage that degraded mode forfeits.
        assert reports[("reroute", n_dead)].mean_coverage \
            > reports[("degraded", n_dead)].mean_coverage


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)
    metrics = collect_metrics()
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        for group, rows in metrics.items():
            print(group)
            for key, row in rows.items():
                print(f"  {key}: {row}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
