"""Fig. 12: binary matmul runtime breakdown across the optimization ladder.

Paper anchors: baseline 226.3 ms, all optimizations 12.0 ms (18.9x).
"""

from repro.opt.matmul import STAGE_ORDER, run_all_stages

SECTIONS = ("LD LHS", "LD RHS", "VR Ops", "ST")


def test_fig12_breakdown(benchmark, report):
    results = benchmark(run_all_stages, 1024, 1024, 1024, functional=False)

    report("Fig. 12: 1024^3 binary matmul breakdown (ms)")
    report(f"  {'stage':10s} " + " ".join(f"{s:>8s}" for s in SECTIONS)
           + f" {'total':>9s}")
    for stage in STAGE_ORDER:
        result = results[stage]
        cells = " ".join(
            f"{result.breakdown_ms.get(section, 0.0):8.2f}"
            for section in SECTIONS
        )
        report(f"  {stage:10s} {cells} {result.latency_ms:9.2f}")
    speedup = (results['baseline'].latency_ms
               / results['opt1+2+3'].latency_ms)
    report(f"  overall speedup: {speedup:.1f}x (paper: 18.9x; "
           f"baseline 226.3 ms -> 12.0 ms)")

    assert results["baseline"].latency_ms > 150
    assert results["opt1+2+3"].latency_ms < 25
    # Baseline is store-bound; the ladder kills each bottleneck in turn.
    base = results["baseline"].breakdown_ms
    assert base["ST"] == max(base.values())
    assert results["opt1"].breakdown_ms["ST"] < base["ST"] / 20
