"""Telemetry overhead: what causal tracing costs the simulator.

Telemetry is collected in two phases with very different budgets:

* **In-loop collection** -- while the event loop runs, the only
  instrumentation is a pass-through wrapper on the service-time
  callable that records one (memoized) stage table per dispatched
  batch.  This is the part that could slow the simulator down, and the
  CI gate holds it under 15% of the telemetry-off wall clock
  (``collection_overhead_frac``).
* **Post-hoc build** -- span trees, critical paths, and the metrics
  registry are derived *after* the run from the scheduler's causal
  record (that is how bit-identity is guaranteed), so their cost is
  analysis you only pay when you ask for telemetry.  Reported as
  informational ``*_wall_ms`` metrics, not gated: wall-clock noise
  would make a hard bound flaky, and the build cannot perturb results.

The deterministic shape of the derived telemetry (span counts, chain
lengths, conservation error) *is* gated exactly -- any drift there is
a model change, not noise.

Same dual entry points as the other serving benchmarks: a
pytest-benchmark ``test_`` (marked ``telemetry``, so it runs in the
slow CI job) and ``python benchmarks/bench_telemetry_overhead.py
--json`` for the CI regression gate.
"""

import argparse
import json
import time

import pytest

from repro.core.params import DEFAULT_PARAMS
from repro.serve import ServingSimulator, golden_serve_config
from repro.telemetry import conservation_error_cycles

N_TIMING_RUNS = 9
CLOCK = DEFAULT_PARAMS.clock_hz


def _best_wall_s(fn, n=N_TIMING_RUNS):
    """Best-of-n wall clock: the least noise-contaminated sample."""
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _timings():
    config = golden_serve_config()
    plain_s = _best_wall_s(lambda: ServingSimulator(config).run())
    collecting_s = _best_wall_s(
        lambda: ServingSimulator(config)._simulate_capturing())
    full_s = _best_wall_s(
        lambda: ServingSimulator(config).run_with_telemetry())
    return plain_s, collecting_s, full_s


def _shape():
    """Deterministic telemetry shape of the golden serve workload."""
    _report, telemetry = \
        ServingSimulator(golden_serve_config()).run_with_telemetry()
    worst = max(abs(conservation_error_cycles(path, CLOCK))
                for path in telemetry.critical_paths)
    return {
        "n_traces": len(telemetry.traces),
        "n_spans": sum(t.n_spans() for t in telemetry.traces),
        "n_chain_segments": sum(len(p.segments)
                                for p in telemetry.critical_paths),
        "n_metrics": len(telemetry.registry),
        "worst_conservation_nanocycles": round(worst * 1e9),
    }


def collect_metrics():
    """Deterministic scalar metrics keyed for the CI regression gate."""
    plain_s, collecting_s, full_s = _timings()
    metrics = dict(_shape())
    metrics["collection_overhead_frac"] = \
        max(0.0, (collecting_s - plain_s) / plain_s)
    metrics["plain_wall_ms"] = plain_s * 1e3
    metrics["collecting_wall_ms"] = collecting_s * 1e3
    metrics["full_telemetry_wall_ms"] = full_s * 1e3
    return {"telemetry_overhead": {"serve": metrics}}


@pytest.mark.telemetry
def test_telemetry_overhead(benchmark, report):
    plain_s, collecting_s, full_s = benchmark(_timings)
    shape = _shape()
    # One contaminated sample must not flake CI: the budget applies to
    # the best overhead observed, so retry under transient load.
    overhead = min((c - p) / p
                   for p, c, _ in [(plain_s, collecting_s, full_s)]
                   + [_timings() for _ in range(2)])

    report(f"telemetry overhead on the golden serve workload "
           f"(best of {N_TIMING_RUNS}):")
    report(f"  telemetry off      {plain_s * 1e3:8.3f} ms")
    report(f"  in-loop collection {collecting_s * 1e3:8.3f} ms "
           f"({overhead:+.1%})")
    report(f"  with span build    {full_s * 1e3:8.3f} ms")
    report(f"  derived: {shape['n_traces']} traces, "
           f"{shape['n_spans']} spans, {shape['n_metrics']} metrics, "
           f"worst conservation {shape['worst_conservation_nanocycles']} "
           f"nanocycles")

    assert overhead < 0.15, (
        f"in-loop telemetry collection costs {overhead:.1%} "
        f"of the telemetry-off run (budget 15%)")
    assert shape["n_traces"] == 64
    assert shape["worst_conservation_nanocycles"] < 1e6  # << 1e-3 cycles


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)
    metrics = collect_metrics()
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        for key, value in metrics["telemetry_overhead"]["serve"].items():
            print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
