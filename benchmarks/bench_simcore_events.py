"""Event-rate benchmark for the vectorized simulation core.

Drives a million-query saturated Poisson stream (200 GB corpus, 8
shards, full batches of 16) through ``VectorizedScheduler.run_arrays``
and the same workload's leading slice through the scalar
``DiscreteEventScheduler``, and reports simulated events per
wall-second for both.  The CI gate (``check_bench_regression.py
--suite simcore``) holds:

* ``*_events_per_s`` within 10% of the committed baseline (relative,
  like the throughput metrics -- but exempt from the bit-identical
  replay check, because wall clocks are measured, not simulated);
* ``queries_speedup_x`` above an absolute floor of 100 (the headline:
  the vectorized core simulates >= 100x more queries per wall-second);
* the simulated shape (batch count, event count, horizon) and the
  ``bit_identical`` flag -- computed by running *both* engines on the
  scalar slice and comparing ``ScheduleResult`` for equality --
  bit-for-bit.

Timings are best-of-n to shed scheduler noise and cold-start page
faults; the scalar engine runs a 1/32 slice (31,250 queries) so the
gate stays under a minute, and rates are compared per-query so the
slice size cancels out.
"""

import argparse
import json
import time

import pytest

from repro.rag.corpus import PAPER_CORPORA
from repro.serve import BatchPolicy, ServeConfig, ServingSimulator, \
    poisson_arrival_times, poisson_arrivals
from repro.serve.scheduler import DiscreteEventScheduler
from repro.simcore import VectorizedScheduler

N_VECTORIZED = 1_000_000
N_SCALAR = 31_250  # 1/32 slice: same stream, tractable scalar wall time
OFFERED_QPS = 20_000.0  # far above capacity -> saturated full batches
N_SHARDS = 8
SEED = 0
N_VEC_RUNS = 5
N_SCALAR_RUNS = 3
SPEEDUP_FLOOR = 100.0

_POLICY = BatchPolicy(max_batch=16, max_wait_s=2e-3)


def _service_model():
    """The anchored 200 GB / 8-shard batch-service model (the same one
    ``ServeConfig`` deployments use -- not a synthetic stand-in)."""
    config = ServeConfig(
        spec=PAPER_CORPORA["200GB"], n_shards=N_SHARDS, batch=_POLICY,
        qps=OFFERED_QPS, n_requests=N_SCALAR, seed=SEED, slo_s=5.0)
    return ServingSimulator(config).service_model.batch_seconds


def _best_wall_s(fn, n):
    """Best-of-n wall clock: the least noise-contaminated sample."""
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure():
    service = _service_model()
    arrivals = poisson_arrival_times(OFFERED_QPS, N_VECTORIZED, SEED)
    vectorized = VectorizedScheduler(N_SHARDS, _POLICY, service)

    arrays = vectorized.run_arrays(arrivals)  # shape + warm-up run
    vec_wall_s = _best_wall_s(
        lambda: vectorized.run_arrays(arrivals), N_VEC_RUNS)

    requests = poisson_arrivals(OFFERED_QPS, N_SCALAR, SEED)
    scalar = DiscreteEventScheduler(N_SHARDS, _POLICY, service)
    scalar_result = scalar.run(requests)
    scalar_wall_s = _best_wall_s(lambda: scalar.run(requests),
                                 N_SCALAR_RUNS)
    scalar_events = N_SCALAR * N_SHARDS + 2 * len(scalar_result.batches)

    # Bit-identity on the scalar slice: the full ScheduleResult from
    # both engines must compare equal (this is also what the
    # differential suite proves exhaustively; here it guards the
    # benchmark's own workload).
    vec_result = VectorizedScheduler(N_SHARDS, _POLICY, service).run(
        requests)
    return {
        "arrays": arrays,
        "vec_wall_s": vec_wall_s,
        "scalar_wall_s": scalar_wall_s,
        "scalar_events": scalar_events,
        "bit_identical": int(vec_result == scalar_result),
    }


def collect_metrics():
    """Deterministic scalar metrics keyed for the CI regression gate."""
    m = _measure()
    arrays = m["arrays"]
    vec_qps = N_VECTORIZED / m["vec_wall_s"]
    scalar_qps = N_SCALAR / m["scalar_wall_s"]
    return {"simcore_events": {"million_query": {
        "vectorized_events_per_s": arrays.n_events / m["vec_wall_s"],
        "scalar_events_per_s": m["scalar_events"] / m["scalar_wall_s"],
        "queries_speedup_x": vec_qps / scalar_qps,
        "vectorized_wall_ms": m["vec_wall_s"] * 1e3,
        "scalar_wall_ms": m["scalar_wall_s"] * 1e3,
        "n_batches": arrays.n_batches,
        "n_events": arrays.n_events,
        "horizon_s": arrays.horizon_s,
        "bit_identical": m["bit_identical"],
    }}}


@pytest.mark.simcore
def test_simcore_event_rate(benchmark, report):
    m = benchmark(_measure)
    arrays = m["arrays"]
    vec_qps = N_VECTORIZED / m["vec_wall_s"]
    scalar_qps = N_SCALAR / m["scalar_wall_s"]
    speedup = vec_qps / scalar_qps

    report(f"simcore event rate: {N_VECTORIZED:,} queries, "
           f"{N_SHARDS} shards, saturated at {OFFERED_QPS:g} qps offered")
    report(f"  vectorized {arrays.n_events / m['vec_wall_s']:14,.0f} "
           f"events/s ({vec_qps:,.0f} queries/s, "
           f"{m['vec_wall_s'] * 1e3:.1f} ms)")
    report(f"  scalar     {m['scalar_events'] / m['scalar_wall_s']:14,.0f} "
           f"events/s ({scalar_qps:,.0f} queries/s on the "
           f"{N_SCALAR:,}-query slice)")
    report(f"  speedup    {speedup:.1f}x queries per wall-second")

    assert m["bit_identical"] == 1
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized core is only {speedup:.1f}x faster than scalar "
        f"(floor {SPEEDUP_FLOOR:g}x)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true",
                        help="emit metrics as JSON on stdout")
    args = parser.parse_args(argv)
    metrics = collect_metrics()
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        for key, value in metrics["simcore_events"]["million_query"].items():
            print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
