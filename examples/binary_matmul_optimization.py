"""The Section 4 optimization ladder on binary matrix multiplication.

Walks the motivating example end to end:

1. validates every kernel stage functionally at small scale,
2. reproduces the Fig. 12 breakdown at the paper's 1024^3 scale,
3. prints the Fig. 2 roofline placement, and
4. shows the closed-form Eqs. 2-14 trajectory next to the simulator.

Run:  python examples/binary_matmul_optimization.py
"""

import numpy as np

from repro.core.roofline import KernelPoint, RooflineModel
from repro.opt.matmul import STAGE_ORDER, reference_binary_matmul, run_all_stages
from repro.opt.reduction import MatmulCostModel, MatmulShape


def main():
    # --- 1. Functional validation ------------------------------------
    rng = np.random.default_rng(0)
    m, n, k = 8, 2048, 64
    a = rng.integers(0, 2, (m, k)).astype(np.uint8)
    b = rng.integers(0, 2, (k, n)).astype(np.uint8)
    reference = reference_binary_matmul(a, b)
    functional = run_all_stages(m, n, k, functional=True, a_bits=a, b_bits=b)
    for stage in STAGE_ORDER:
        assert (functional[stage].c == reference).all(), stage
    print(f"all {len(STAGE_ORDER)} kernel stages match the XNOR-net "
          f"reference on a {m}x{n}x{k} problem\n")

    # --- 2. Fig. 12 at paper scale ------------------------------------
    results = run_all_stages(1024, 1024, 1024, functional=False)
    print("Fig. 12 ladder at 1024^3 (paper: 226.3 ms -> 12.0 ms):")
    for stage in STAGE_ORDER:
        r = results[stage]
        parts = ", ".join(f"{k_}: {v:.1f}" for k_, v in r.breakdown_ms.items())
        print(f"  {stage:10s} {r.latency_ms:7.2f} ms   ({parts})")
    speedup = results["baseline"].latency_ms / results["opt1+2+3"].latency_ms
    print(f"  overall: {speedup:.1f}x\n")

    # --- 3. Roofline placement ----------------------------------------
    shape = MatmulShape(1024, 1024, 64)
    roofline = RooflineModel()
    print(f"roofline: ridge at OI {roofline.ridge_point:.1f} ops/byte")
    for stage in STAGE_ORDER:
        r = results[stage]
        point = KernelPoint(stage, r.operational_intensity,
                            r.performance_ops(shape))
        print(f"  {stage:10s} OI {point.operational_intensity:7.2f}  "
              f"{point.performance / 1e9:6.1f} GOPS  "
              f"eff {roofline.efficiency(point) * 100:5.1f}%")

    # --- 4. The closed-form Eqs. 2-14 ---------------------------------
    model = MatmulCostModel(shape)
    print("\nanalytical trajectory (Eqs. 2-14, ms):",
          {k_: round(v, 1) for k_, v in model.stage_totals_ms().items()})
    print("recommended mapping:", model.choose_mapping().value)


if __name__ == "__main__":
    main()
