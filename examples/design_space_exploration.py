"""Architectural design-space exploration with the analytical framework.

Uses the framework the way Section 3 advertises: sweep key design
parameters against real workload models (the optimized binary matmul
and the RAG distance sweep) and rank them by sensitivity -- guidance
for a next-generation compute-in-SRAM part.

Run:  python examples/design_space_exploration.py
"""

from repro.core import DesignSpaceExplorer, LatencyEstimator
from repro.core import api
from repro.core.params import DEFAULT_PARAMS
from repro.opt.reduction import MatmulCostModel, MatmulShape


def matmul_workload(params):
    """All-opts 1024^3 binary matmul latency (us)."""
    model = MatmulCostModel(MatmulShape(1024, 1024, 64), params)
    return params.cycles_to_us(model.all_opts().total)


def rag_distance_workload(params):
    """The RAG distance sweep expressed through the Fig. 6 API (us)."""
    est = LatencyEstimator(params)
    with est.ctx():
        blocks, dims = 100, 384  # 3.3M chunks, 384 dims
        api.gvml_load_16(count=blocks * dims)
        api.gvml_cpy_imm_16(count=blocks * dims)
        api.gvml_mul_f16(count=blocks * dims)
        api.gvml_add_s16(count=blocks * dims)
        api.gvml_add_subgrp_s16(32768, 1, count=blocks)  # top-k ladders
    return est.report_latency()


SWEEPS = {
    "movement.lookup_per_entry": [1.7875, 3.575, 7.15, 14.3],
    "movement.dma_l4_l1": [5568.0, 11136.0, 22272.0, 44544.0],
    "movement.cpy_subgrp": [20.5, 41.0, 82.0, 164.0],
    "compute.mul_f16": [38.5, 77.0, 154.0],
    "clock_hz": [250e6, 500e6, 1e9, 2e9],
    "dram_bandwidth": [23.8e9, 100e9, 400e9],
}


def main():
    for name, workload in (("binary matmul (all opts)", matmul_workload),
                           ("RAG distance sweep", rag_distance_workload)):
        explorer = DesignSpaceExplorer(workload, DEFAULT_PARAMS)
        print(f"workload: {name}")
        print(f"  baseline latency: {workload(DEFAULT_PARAMS):.1f} us")
        report = explorer.sensitivity_report(SWEEPS)
        ranked = sorted(report.items(), key=lambda kv: -kv[1].sensitivity())
        for parameter, sweep in ranked:
            print(f"  {parameter:28s} sensitivity {sweep.sensitivity():6.3f}  "
                  f"best {sweep.best.latency_us:9.1f} us at "
                  f"{sweep.best.value:g}")
        print()

    print("interpretation: parameters with sensitivity near 1 bound the")
    print("workload; near 0 they are off the critical path.  The clock")
    print("dominates both workloads because on-chip movement and compute")
    print("scale with it, matching the paper's observation that the")
    print("optimized kernels are no longer off-chip-bandwidth bound.")


if __name__ == "__main__":
    main()
