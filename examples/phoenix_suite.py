"""The Phoenix benchmark suite on the APU (Section 5.2).

Validates each application's functional kernel against its reference,
then prints Tables 6 and 7 and the Fig. 13 speedup comparison.

Run:  python examples/phoenix_suite.py
"""

import numpy as np

from repro.phoenix import PhoenixSuite


def main():
    suite = PhoenixSuite()

    # --- Functional validation at reduced scale -----------------------
    print("functional validation:")
    for name, app in suite.apps.items():
        result = app.run_functional()
        reference = app.reference()
        if isinstance(reference, np.ndarray):
            ok = np.array_equal(np.asarray(result.value), reference)
        elif isinstance(reference, tuple):
            ok = all(np.allclose(a, b) for a, b in zip(result.value, reference))
        else:
            ok = result.value == reference
        status = "ok" if ok else "MISMATCH"
        print(f"  {name:18s} {status:8s} ({result.latency_us:9.1f} us simulated)")

    # --- Table 6 --------------------------------------------------------
    print("\nTable 6: workload statistics")
    for row in suite.table6_stats():
        cpu = (f"{row['cpu_instructions'] / 1e9:5.1f}B"
               if row["cpu_instructions"] else "   --")
        print(f"  {row['app']:18s} input {row['input_size']:>14s}  "
              f"CPU {cpu}  APU uCode "
              f"{row['apu_ucode_instructions'] / 1e6:8.2f}M")

    # --- Table 7 --------------------------------------------------------
    print("\nTable 7: framework validation (measured vs predicted)")
    for row in suite.table7_validation():
        print(f"  {row.app:18s} {row.measured_ms:9.2f} ms vs "
              f"{row.predicted_ms:9.2f} ms  ({row.error * 100:+.2f}%)")
    print(f"  mean accuracy: {suite.mean_accuracy() * 100:.2f}% (paper 97.3%)")

    # --- Fig. 13 ---------------------------------------------------------
    print("\nFig. 13: APU speedups over the Xeon baseline")
    for row in suite.fig13_comparison():
        print(f"  {row.app:18s} vs 1T {row.speedup_1t():7.2f}x   "
              f"vs 16T {row.speedup_16t():6.2f}x")
    agg = suite.aggregate_speedups()
    print(f"  aggregate vs 1T : mean {agg['mean_vs_1t']:.1f}x, "
          f"peak {agg['peak_vs_1t']:.1f}x (paper 41.8x / 128.3x)")
    print(f"  aggregate vs 16T: mean {agg['mean_vs_16t']:.1f}x, "
          f"peak {agg['peak_vs_16t']:.1f}x (paper 12.5x / 68.1x)")


if __name__ == "__main__":
    main()
