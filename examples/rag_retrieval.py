"""Retrieval-augmented generation on compute-in-SRAM (Section 5.3).

1. Runs exact top-5 retrieval functionally on the simulator and checks
   it against the FAISS-like CPU reference.
2. Reproduces the Table 8 latency breakdown at the paper's corpus
   scales (10/50/200 GB) with the simulated HBM2e.
3. Prints the Fig. 14 end-to-end comparison and the Fig. 15 energy gap.

Run:  python examples/rag_retrieval.py
"""

from repro.rag import (
    APURetriever,
    CPURetriever,
    GPURetriever,
    MiniCorpus,
    PAPER_CORPORA,
    RAGPipeline,
    fig14_comparison,
    fig15_energy_comparison,
)


def main():
    # --- 1. Functional retrieval --------------------------------------
    corpus = MiniCorpus(n_chunks=400, dim=64, seed=7)
    query = corpus.sample_query()
    apu_top5 = APURetriever().retrieve(corpus, query, k=5)
    cpu_top5 = CPURetriever().retrieve(corpus, query, k=5)
    gpu_top5 = GPURetriever().retrieve(corpus, query, k=5)
    print(f"top-5 chunks (APU simulator): {apu_top5}")
    assert set(apu_top5) == set(cpu_top5) == set(gpu_top5)
    print("APU, CPU (FAISS-like) and GPU retrieval agree exactly\n")

    # --- 2. Table 8 at paper scale ------------------------------------
    print("Table 8: retrieval latency breakdown (ms)")
    for label, spec in PAPER_CORPORA.items():
        noopt = APURetriever(optimized=False).latency_breakdown(spec)
        opt = APURetriever(optimized=True).latency_breakdown(spec)
        print(f"  {label}: no-opt {noopt.total * 1e3:6.1f} ms "
              f"-> all-opts {opt.total * 1e3:5.1f} ms "
              f"({noopt.total / opt.total:.1f}x)")
        for stage, value in opt.as_ms().items():
            if stage != "total":
                print(f"      {stage:18s} {value:8.3f} ms")

    # --- 3. Fig. 14 / Fig. 15 ------------------------------------------
    print("\nFig. 14: time to first token (ms)")
    entries = {e.platform: e for e in fig14_comparison()}
    for platform, entry in entries.items():
        cells = "  ".join(f"{label}: {entry.ttft_ms[label]:7.1f}"
                          for label in PAPER_CORPORA)
        print(f"  {platform:14s} {cells}")
    pipeline = RAGPipeline(CPURetriever())
    for label, spec in PAPER_CORPORA.items():
        print(f"  CPU retrieval fraction at {label}: "
              f"{pipeline.retrieval_fraction(spec) * 100:.1f}%")

    print("\nFig. 15: retrieval energy (paper band: 54.4x - 117.9x)")
    for label, point in fig15_energy_comparison().items():
        print(f"  {label}: APU {point.apu_energy.total_j:6.3f} J vs "
              f"GPU {point.gpu_energy_j:6.1f} J "
              f"-> {point.efficiency_ratio:5.1f}x less energy")


if __name__ == "__main__":
    main()
