"""Programming the bit processors directly (Table 2 / Fig. 4).

GVML is built from microcode on the bit-processor state; this example
drops below GVML and builds 16-bit arithmetic out of RL reads, masked
writes, neighbor reads and global-line broadcasts -- the layer Golden
et al. used to host a RISC-V vector ISA on the same device.

Run:  python examples/bit_serial_microcode.py
"""

import numpy as np

from repro.apu import microcode as mc
from repro.apu.bitproc import BitProcessorArray


def main():
    rng = np.random.default_rng(42)
    bank = BitProcessorArray(columns=2048)  # one physical bank
    a = rng.integers(0, 65536, 2048).astype(np.uint16)
    b = rng.integers(0, 65536, 2048).astype(np.uint16)
    bank.load_u16(0, a)
    bank.load_u16(1, b)

    # Bit-parallel boolean ops: one read + one write, all slices at once.
    before = bank.micro_ops
    mc.op_xor(bank, 2, 0, 1)
    print(f"xor of 2048 elements: {bank.micro_ops - before} micro-ops")
    assert (bank.read_u16(2) == (a ^ b)).all()

    # Bit-serial add: the carry ripples through bit-slices via
    # south-neighbor RL reads.
    before = bank.micro_ops
    mc.add_u16(bank, 3, 0, 1, carry=22, scratch=23)
    print(f"ripple-carry add:     {bank.micro_ops - before} micro-ops")
    assert (bank.read_u16(3) == a + b).all()

    # Equality through the global vertical latch: GVL ANDs all 16
    # slices of ~(a ^ b) into one bit per column.
    before = bank.micro_ops
    mc.eq_16(bank, 4, 0, 1, scratch=20)
    print(f"eq via GVL:           {bank.micro_ops - before} micro-ops")
    assert (bank.read_u16(4) == (a == b)).all()

    # Unsigned comparison: the subtract ladder's carry-out, walked down
    # to slice 0 with north-neighbor reads.
    before = bank.micro_ops
    mc.gt_u16(bank, 5, 0, 1, carry=22, scratch=23, notb=21, eq_scratch=19)
    print(f"gt via carry chain:   {bank.micro_ops - before} micro-ops")
    assert (bank.read_u16(5) == (a > b)).all()

    print("\nbit-serial arithmetic over the Table 2 micro-ops is exact;")
    print("Table 5's 12-cycle add reflects the hardware running these")
    print("micro-op sequences across all bit-slices in parallel.")


if __name__ == "__main__":
    main()
