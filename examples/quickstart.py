"""Quickstart: vector addition on the APU, the paper's Fig. 5 example.

Runs the canonical host/device program on the functional simulator,
then models the same kernel with the analytical framework (Fig. 6
style) and compares the two.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apu import APUDevice
from repro.core import LatencyEstimator
from repro.core import api


def vec_add_task(device, h_vec1, h_vec2, h_out):
    """The device program of Fig. 5(b)."""
    core = device.core
    core.dma.l4_to_l1_32k(0, h_vec1)          # direct_dma_l4_to_l1_32k
    core.dma.l4_to_l1_32k(1, h_vec2)
    core.gvml.load_16(0, 0)                   # gvml_load
    core.gvml.load_16(1, 1)
    core.gvml.add_u16(2, 0, 1)                # gvml_add_u16
    core.gvml.store_16(3, 2)                  # gvml_store
    core.dma.l1_to_l4_32k(h_out, 3)           # direct_dma_l1_to_l4_32k


def main():
    length = 32768
    vec1 = np.arange(length, dtype=np.uint16)
    vec2 = np.full(length, 41, dtype=np.uint16)

    # --- Host program (Fig. 5a): allocate, copy, invoke, copy back ---
    device = APUDevice()
    h_vec1 = device.mem_alloc_aligned(2 * length)
    h_vec2 = device.mem_alloc_aligned(2 * length)
    h_out = device.mem_alloc_aligned(2 * length)
    device.mem_cpy_to_dev(h_vec1, vec1)
    device.mem_cpy_to_dev(h_vec2, vec2)

    result = device.run_task(vec_add_task, h_vec1, h_vec2, h_out)
    out = device.mem_cpy_from_dev(h_out, 2 * length)

    assert (out == vec1 + vec2).all()
    print(f"vector addition of {length} elements: correct")
    print(f"simulated kernel latency: {result.latency_us:.1f} us")

    # --- The same kernel through the analytical framework (Fig. 6) ---
    framework = LatencyEstimator()
    with framework.ctx():
        api.direct_dma_l4_to_l1_32k(count=2)
        api.gvml_load_16(count=2)
        api.gvml_add_u16()
        api.gvml_store_16()
        api.direct_dma_l1_to_l4_32k()
    predicted = framework.report_latency()
    print(f"analytical framework prediction: {predicted:.1f} us")
    error = (predicted - result.latency_us) / result.latency_us
    print(f"prediction error: {error * 100:+.2f}% "
          f"(the simulator adds VCU-issue and DRAM-refresh effects)")


if __name__ == "__main__":
    main()
