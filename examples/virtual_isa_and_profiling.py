"""Hosting a different vector abstraction + profiling a new device.

Two extension paths the paper sketches, demonstrated together:

1. Section 2.2.2: "An APU programmer can implement a different vector
   abstraction with microcode instructions" (citing the RISC-V vector
   port of Golden et al.).  We run a small RVV program -- a masked
   saxpy with a reduction -- on the hosted :class:`RVVMachine`.
2. Section 3.1: the framework extends to other devices "by deriving
   the necessary parameters through profiling".  We profile the
   simulator as if it were an unknown device and recover the Table 4/5
   constants by regression.

Run:  python examples/virtual_isa_and_profiling.py
"""

import numpy as np

from repro.apu.profiler import DeviceProfiler
from repro.apu.rvv import RVVMachine
from repro.core.params import DEFAULT_PARAMS


def rvv_demo():
    rvv = RVVMachine()
    rng = np.random.default_rng(0)
    n = 20000
    x = rng.integers(0, 200, n).astype(np.uint16)
    y = rng.integers(0, 200, n).astype(np.uint16)

    rvv.vsetvl(n)
    rvv.vle16(1, x)                 # v1 = x
    rvv.vle16(2, y)                 # v2 = y
    rvv.vmv_v_x(3, 3)               # v3 = splat(3)
    rvv.vmul_vv(4, 1, 3)            # v4 = 3 * x
    rvv.vadd_vv(5, 4, 2)            # v5 = 3x + y
    rvv.vmsgtu_vv(5, 2)             # mask: 3x + y > y  (i.e. x > 0)
    rvv.vmerge_vvm(6, 2, 5)         # v6 = mask ? 3x+y : y
    total = rvv.vredsum_vs(6)       # sum mod 2^16

    expected = np.where(3 * x + y > y, 3 * x + y, y)
    assert (rvv.read(6) == expected).all()
    assert total == int(expected.astype(np.int64).sum()) % 65536
    print(f"RVV saxpy+merge+reduction over {n} elements: correct")
    print(f"hosted program consumed {rvv.cycles:.0f} APU cycles "
          f"({DEFAULT_PARAMS.cycles_to_us(rvv.cycles):.2f} us)\n")


def profiling_demo():
    profiler = DeviceProfiler()
    movement = profiler.profile_movement()
    print("profiled data-movement constants (vs Table 4):")
    rows = [
        ("dma_l4_l2 cycles/byte", movement.dma_l4_l2_per_byte, 0.63),
        ("dma_l4_l3 cycles/byte", movement.dma_l4_l3_per_byte, 0.19),
        ("pio_st cycles/element", movement.pio_st_per_elem, 61.0),
        ("lookup cycles/entry", movement.lookup_per_entry, 7.15),
        ("cpy_subgrp cycles", movement.cpy_subgrp, 82.0),
        ("shift_e cycles/element", movement.shift_e_per_elem, 373.0),
    ]
    for label, got, paper in rows:
        print(f"  {label:24s} {got:9.3f}  (paper {paper:g}, "
              f"{(got - paper) / paper * 100:+.1f}%)")
    compute = profiler.profile_compute()
    print("\nprofiled compute constants (vs Table 5):")
    for op in ("add_u16", "mul_s16", "div_u16", "exp_f16"):
        print(f"  {op:12s} {compute.cost(op):8.1f}  "
              f"(paper {DEFAULT_PARAMS.compute.cost(op):g})")
    print("\nprofiling recovers the published tables from microbenchmarks")
    print("alone -- the procedure a new compute-in-SRAM device needs.")


def main():
    rvv_demo()
    profiling_demo()


if __name__ == "__main__":
    main()
